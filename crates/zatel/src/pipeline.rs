//! The end-to-end Zatel pipeline (paper Fig. 3): heatmap → quantize →
//! downscale → divide → select → simulate per group → combine.
//!
//! [`Zatel::run`] is a thin composition over the stage graph of
//! [`crate::stages`]: each phase executes through an [`ArtifactCache`], so
//! callers that share a cache across runs (the [`crate::sweep`] driver)
//! reuse heatmap/quantize/divide artifacts instead of recomputing them.

use std::sync::Arc;
use std::time::{Duration, Instant};

use gpusim::{GpuConfig, Metric, SimStats, SimTelemetry, Simulator, TraceHooks};
use minijson::{FromJson, JsonError, Map, ToJson, Value};
use obs::span::SpanSheet;
use obs::{ObsHooks, ObserveOptions, SpanRecord};
use rtcore::fingerprint::Fnv64;
use rtcore::scene::Scene;
use rtcore::tracer::TraceConfig;
use rtworkload::RtWorkload;

use crate::error::ZatelError;
use crate::extrapolate::regression_to_full;
use crate::heatmap::Heatmap;
use crate::metrics::abs_error;
use crate::partition::{divide, DivisionMethod, Group};
use crate::quantize::QuantizedHeatmap;
use crate::select::{select_pixels, Selection, SelectionOptions};
use crate::sim_executor::{available_jobs, SimExecutor};
use crate::stages::{
    ArtifactCache, DivideStage, ExtrapolateStage, Fingerprint, GroupSimStage, HeatmapStage,
    QuantizeStage, SelectInput, SelectStage, SimInput, Stage, StageCacheRecord,
};

/// How the target GPU is downscaled before group simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DownscaleMode {
    /// Use `K = gcd(#SMs, #memory partitions)` — the paper's choice.
    Natural,
    /// Use an explicit factor (the Fig. 17–19 sweeps).
    Factor(u32),
    /// Do not downscale: one group on the full GPU. Isolates the
    /// representative-pixel optimization (the Figs. 13–16 sweeps).
    NoDownscale,
}

/// All tunable parameters of the pipeline.
///
/// The struct is `#[non_exhaustive]`: downstream crates construct it via
/// [`ZatelOptions::builder`] (validated) or start from
/// [`ZatelOptions::default`] and assign fields, so adding a pipeline knob
/// is never a breaking change.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct ZatelOptions {
    /// Image-plane division method (fine-grained 32×2 by default).
    pub division: DivisionMethod,
    /// Representative-pixel selection parameters.
    pub selection: SelectionOptions,
    /// Number of K-means colours for heatmap quantization.
    pub quant_colors: usize,
    /// GPU downscaling mode.
    pub downscale: DownscaleMode,
    /// Run group simulations on parallel host threads (the paper's
    /// "simulate each group simultaneously on different CPU cores").
    pub parallel: bool,
    /// Worker-thread cap for group simulation; `None` sizes the pool to
    /// the host's available parallelism. Ignored when [`parallel`] is
    /// false.
    ///
    /// [`parallel`]: ZatelOptions::parallel
    pub jobs: Option<usize>,
    /// OS threads the engine may use *inside* each individual group
    /// simulation (sets [`gpusim::GpuConfig::sim_threads`] on the
    /// downscaled and reference configs). `None` defers to the
    /// `ZATEL_SIM_THREADS` environment variable, falling back to the
    /// serial engine. Purely an execution knob: predictions, traces and
    /// stage fingerprints are bit-identical for every value, so it is
    /// excluded from cache keys. Composes multiplicatively with
    /// [`jobs`] — `jobs` workers each run `sim_threads` threads.
    ///
    /// [`jobs`]: ZatelOptions::jobs
    pub sim_threads: Option<usize>,
    /// OS threads the engine may use for memory-partition timing *inside*
    /// each individual simulation (sets
    /// [`gpusim::GpuConfig::timing_threads`]). `None` defers to the
    /// `ZATEL_TIMING_THREADS` environment variable, falling back to inline
    /// timing. Purely an execution knob, excluded from cache keys like
    /// [`sim_threads`]; composes with it — a run may shard decode and
    /// timing at once.
    ///
    /// [`sim_threads`]: ZatelOptions::sim_threads
    pub timing_threads: Option<usize>,
    /// When set, each group simulation runs with a
    /// [`TraceHooks`] observer sampling one CPI-stack slice every this
    /// many cycles, and the trace is attached to the group's
    /// [`GroupOutcome::trace`]. Tracing never changes the simulated
    /// statistics — hooks observe only.
    pub trace_slice_cycles: Option<u64>,
    /// When set, each group simulation additionally runs with an
    /// [`ObsHooks`] observer (histograms, counters and optionally a
    /// Perfetto timeline), attached to the group's
    /// [`GroupOutcome::obs`]. Like tracing, observing never changes the
    /// simulated statistics.
    pub observe: Option<ObserveOptions>,
}

impl ZatelOptions {
    /// Starts a validated builder from the defaults.
    pub fn builder() -> ZatelOptionsBuilder {
        ZatelOptionsBuilder::default()
    }

    /// Checks option invariants that would otherwise panic (or silently
    /// misbehave) deep inside the engine: a zero
    /// [`trace_slice_cycles`], an empty worker pool, a degenerate
    /// quantization or selection parameters outside their documented
    /// domains.
    ///
    /// [`trace_slice_cycles`]: ZatelOptions::trace_slice_cycles
    ///
    /// # Errors
    ///
    /// Returns [`ZatelError::InvalidOptions`] describing the offending
    /// option.
    pub fn validate(&self) -> Result<(), ZatelError> {
        let invalid = |msg: String| Err(ZatelError::InvalidOptions(msg));
        if self.trace_slice_cycles == Some(0) {
            return invalid(
                "trace_slice_cycles must be positive (use None to disable tracing)".into(),
            );
        }
        if self.jobs == Some(0) {
            return invalid("jobs must be positive (use None to size to the host)".into());
        }
        if self.sim_threads == Some(0) {
            return invalid(
                "sim_threads must be positive (use None to defer to ZATEL_SIM_THREADS)".into(),
            );
        }
        if let Some(n) = self.sim_threads {
            if u32::try_from(n).is_err() {
                return invalid(format!("sim_threads must fit in a u32, got {n}"));
            }
        }
        if self.timing_threads == Some(0) {
            return invalid(
                "timing_threads must be positive (use None to defer to ZATEL_TIMING_THREADS)"
                    .into(),
            );
        }
        if let Some(n) = self.timing_threads {
            if u32::try_from(n).is_err() {
                return invalid(format!("timing_threads must fit in a u32, got {n}"));
            }
        }
        if self.quant_colors == 0 {
            return invalid("quant_colors must be at least 1".into());
        }
        let sel = &self.selection;
        if sel.block_width == 0 || sel.block_height == 0 {
            return invalid(format!(
                "selection blocks must be non-empty, got {}x{}",
                sel.block_width, sel.block_height
            ));
        }
        for (name, percent) in [
            ("percent_override", sel.percent_override),
            ("percent_cap", sel.percent_cap),
        ] {
            if let Some(p) = percent {
                if !(p > 0.0 && p <= 1.0) {
                    return invalid(format!("selection {name} must be in (0, 1], got {p}"));
                }
            }
        }
        let (lo, hi) = sel.clamp;
        if !(0.0..=1.0).contains(&lo) || !(0.0..=1.0).contains(&hi) || lo > hi {
            return invalid(format!(
                "selection clamp bounds must satisfy 0 <= lo <= hi <= 1, got ({lo}, {hi})"
            ));
        }
        Ok(())
    }

    /// The engine thread count each simulation actually runs with:
    /// [`sim_threads`] when set, else the `ZATEL_SIM_THREADS` environment
    /// variable (ignored unless it parses as a positive integer), else `1`
    /// (the serial engine).
    ///
    /// [`sim_threads`]: ZatelOptions::sim_threads
    pub fn effective_sim_threads(&self) -> u32 {
        if let Some(n) = self.sim_threads {
            return u32::try_from(n).unwrap_or(1).max(1);
        }
        std::env::var("ZATEL_SIM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1)
    }

    /// The timing thread count each simulation actually runs with:
    /// [`timing_threads`] when set, else the `ZATEL_TIMING_THREADS`
    /// environment variable (ignored unless it parses as a positive
    /// integer), else `1` (inline timing).
    ///
    /// [`timing_threads`]: ZatelOptions::timing_threads
    pub fn effective_timing_threads(&self) -> u32 {
        if let Some(n) = self.timing_threads {
            return u32::try_from(n).unwrap_or(1).max(1);
        }
        std::env::var("ZATEL_TIMING_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1)
    }
}

/// A validated, forward-compatible way to assemble [`ZatelOptions`]:
/// start from the defaults, override what the run needs, and have
/// [`build`](ZatelOptionsBuilder::build) run
/// [`ZatelOptions::validate`] before the options reach the pipeline.
///
/// # Examples
///
/// ```
/// use zatel::{DownscaleMode, ZatelOptions};
///
/// let options = ZatelOptions::builder()
///     .downscale(DownscaleMode::Factor(4))
///     .percent_override(0.3)
///     .build()
///     .expect("valid options");
/// assert_eq!(options.selection.percent_override, Some(0.3));
/// assert!(ZatelOptions::builder().percent_override(1.5).build().is_err());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ZatelOptionsBuilder {
    options: ZatelOptions,
}

impl ZatelOptionsBuilder {
    /// Sets the image-plane division method.
    pub fn division(mut self, division: DivisionMethod) -> Self {
        self.options.division = division;
        self
    }

    /// Replaces the whole selection-parameter block.
    pub fn selection(mut self, selection: SelectionOptions) -> Self {
        self.options.selection = selection;
        self
    }

    /// Sets the number of K-means colours for heatmap quantization.
    pub fn quant_colors(mut self, colors: usize) -> Self {
        self.options.quant_colors = colors;
        self
    }

    /// Sets the GPU downscaling mode.
    pub fn downscale(mut self, mode: DownscaleMode) -> Self {
        self.options.downscale = mode;
        self
    }

    /// Enables or disables parallel group simulation.
    pub fn parallel(mut self, parallel: bool) -> Self {
        self.options.parallel = parallel;
        self
    }

    /// Caps the group-simulation worker pool.
    pub fn jobs(mut self, jobs: usize) -> Self {
        self.options.jobs = Some(jobs);
        self
    }

    /// Sets the engine thread count for each individual group simulation
    /// ([`ZatelOptions::sim_threads`]).
    pub fn sim_threads(mut self, threads: usize) -> Self {
        self.options.sim_threads = Some(threads);
        self
    }

    /// Sets the timing thread count for each individual group simulation
    /// ([`ZatelOptions::timing_threads`]).
    pub fn timing_threads(mut self, threads: usize) -> Self {
        self.options.timing_threads = Some(threads);
        self
    }

    /// Enables engine tracing with the given CPI-stack slice width.
    pub fn trace_slice_cycles(mut self, cycles: u64) -> Self {
        self.options.trace_slice_cycles = Some(cycles);
        self
    }

    /// Enables observability recording.
    pub fn observe(mut self, observe: ObserveOptions) -> Self {
        self.options.observe = Some(observe);
        self
    }

    /// Sets the fixed traced percentage
    /// ([`SelectionOptions::percent_override`]).
    pub fn percent_override(mut self, percent: f64) -> Self {
        self.options.selection.percent_override = Some(percent);
        self
    }

    /// Sets the hard traced-percentage cap
    /// ([`SelectionOptions::percent_cap`]).
    pub fn percent_cap(mut self, percent: f64) -> Self {
        self.options.selection.percent_cap = Some(percent);
        self
    }

    /// Sets the Eq. (1) clamp bounds ([`SelectionOptions::clamp`]).
    pub fn clamp(mut self, lo: f64, hi: f64) -> Self {
        self.options.selection.clamp = (lo, hi);
        self
    }

    /// Sets the colour distribution method
    /// ([`SelectionOptions::distribution`]).
    pub fn distribution(mut self, distribution: crate::Distribution) -> Self {
        self.options.selection.distribution = distribution;
        self
    }

    /// Validates and returns the assembled options.
    ///
    /// # Errors
    ///
    /// Returns [`ZatelError::InvalidOptions`] from
    /// [`ZatelOptions::validate`].
    pub fn build(self) -> Result<ZatelOptions, ZatelError> {
        self.options.validate()?;
        Ok(self.options)
    }
}

impl Default for ZatelOptions {
    fn default() -> Self {
        ZatelOptions {
            division: DivisionMethod::default_fine(),
            selection: SelectionOptions::default(),
            quant_colors: 8,
            downscale: DownscaleMode::Natural,
            parallel: true,
            jobs: None,
            sim_threads: None,
            timing_threads: None,
            trace_slice_cycles: None,
            observe: None,
        }
    }
}

/// Per-group simulation outcome.
#[derive(Debug, Clone)]
pub struct GroupOutcome {
    /// Group index in `[0, K)`.
    pub index: u32,
    /// Pixels in the group.
    pub pixels: usize,
    /// Fraction of the group's pixels actually traced.
    pub traced_fraction: f64,
    /// The Eq. (1) target percentage used.
    pub target_percent: f64,
    /// Raw simulator output for the group.
    pub stats: SimStats,
    /// Host wall-clock time of this group's simulation.
    pub wall: Duration,
    /// Engine trace collected when
    /// [`ZatelOptions::trace_slice_cycles`] is set.
    pub trace: Option<TraceHooks>,
    /// Observability recording (histograms, counters, timeline) collected
    /// when [`ZatelOptions::observe`] is set.
    pub obs: Option<ObsHooks>,
    /// Concurrency telemetry of this group's simulation when it ran on
    /// the sharded engine (`sim_threads > 1`); `None` for serial runs.
    /// Host wall-clock, observational only — never part of fingerprints
    /// or deterministic output.
    pub telemetry: Option<SimTelemetry>,
}

/// A full-GPU, full-resolution reference simulation (what Vulkan-Sim alone
/// would produce).
#[derive(Debug, Clone)]
pub struct Reference {
    /// Simulator output.
    pub stats: SimStats,
    /// Host wall-clock time of the simulation.
    pub wall: Duration,
}

/// The final Zatel prediction.
#[derive(Debug, Clone)]
pub struct Prediction {
    values: [f64; 7],
    /// Per-group outcomes, in group order.
    pub groups: Vec<GroupOutcome>,
    /// Downscaling factor used.
    pub k: u32,
    /// Wall-clock time of preprocessing (heatmap profile + quantization).
    pub preprocess_wall: Duration,
    /// Wall-clock time of the group-simulation phase (elapsed, so parallel
    /// groups overlap).
    pub sim_wall: Duration,
    /// Host wall-clock spans of the pipeline phases (heatmap, quantize,
    /// select, simulate-groups with one `group N` span per job, and
    /// extrapolate), sorted by start offset.
    pub spans: Vec<SpanRecord>,
    /// The execution-time heatmap profiled by [`Zatel::run`] /
    /// [`Zatel::run_with_regression`]; `None` when the pipeline reused a
    /// caller-supplied quantized heatmap.
    pub heatmap: Option<Heatmap>,
    /// How each stage execution interacted with the artifact cache, in
    /// pipeline order. A cold [`Zatel::run`] reports all misses; sweep
    /// points sharing a cache report hits for the reused artifacts.
    pub cache: Vec<StageCacheRecord>,
    /// The request ID this prediction was computed for
    /// ([`RunContext::with_request_id`]); `None` for untraced executions.
    pub request_id: Option<String>,
    /// Aggregated engine concurrency telemetry across all group
    /// simulations (sharded runs only). Observational host wall-clock —
    /// excluded from every deterministic artifact.
    pub concurrency: Option<SimTelemetry>,
}

impl Prediction {
    /// Predicted value of `metric`.
    pub fn value(&self, metric: Metric) -> f64 {
        let idx = Metric::ALL
            .iter()
            .position(|m| *m == metric)
            // zatel-lint: allow(panic-hygiene, reason = "Metric::ALL enumerates every variant by construction; a Result here would make an infallible accessor fallible")
            .expect("metric in ALL");
        self.values[idx]
    }

    /// Relative absolute error of every metric against a reference run.
    pub fn errors_vs(&self, reference: &SimStats) -> Vec<(Metric, f64)> {
        Metric::ALL
            .iter()
            .map(|&m| (m, abs_error(self.value(m), m.value(reference))))
            .collect()
    }

    /// Mean absolute error over all seven metrics against a reference run.
    pub fn mae_vs(&self, reference: &SimStats) -> f64 {
        let errors: Vec<f64> = self
            .errors_vs(reference)
            .into_iter()
            .map(|(_, e)| e)
            .collect();
        crate::metrics::mae(&errors)
    }

    /// Simulation-time speedup over a reference run (wall-clock, counting
    /// only the simulation phase, as the paper does).
    pub fn speedup_vs(&self, reference: &Reference) -> f64 {
        let z = self.sim_wall.as_secs_f64().max(1e-9);
        reference.wall.as_secs_f64() / z
    }

    /// Simulation-time speedup assuming one host CPU core per group — the
    /// paper's setup ("simulating each group simultaneously on different
    /// CPU cores"): reference wall-clock divided by the *slowest single
    /// group's* wall-clock. On a machine with at least K cores and
    /// parallel groups enabled this converges to [`Prediction::speedup_vs`];
    /// on smaller hosts it reports what K cores would deliver.
    pub fn speedup_concurrent(&self, reference: &Reference) -> f64 {
        let slowest = self
            .groups
            .iter()
            .map(|g| g.wall.as_secs_f64())
            .fold(0.0f64, f64::max)
            .max(1e-9);
        reference.wall.as_secs_f64() / slowest
    }
}

/// How one [`Zatel::execute`] call should run: which artifact cache to
/// share, whether to use the Section IV-F regression variant, and an
/// optional per-execution observability override.
///
/// # Examples
///
/// ```no_run
/// use gpusim::GpuConfig;
/// use rtcore::scenes::SceneId;
/// use rtcore::tracer::TraceConfig;
/// use zatel::{ArtifactCache, RunContext, Zatel};
///
/// # fn main() -> Result<(), zatel::ZatelError> {
/// let scene = SceneId::Park.build(42);
/// let trace = TraceConfig { samples_per_pixel: 2, max_bounces: 4, seed: 1 };
/// let zatel = Zatel::new(&scene, GpuConfig::mobile_soc(), 128, 128, trace);
/// let cache = ArtifactCache::in_memory();
/// // Identical to zatel.run_cached(&cache):
/// let prediction = zatel.execute(&RunContext::new().with_cache(&cache))?;
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct RunContext<'a> {
    pub(crate) cache: Option<&'a ArtifactCache>,
    pub(crate) regression: Option<[f64; 3]>,
    pub(crate) observe: Option<ObserveOptions>,
    pub(crate) request_id: Option<String>,
}

impl<'a> RunContext<'a> {
    /// An empty context: private in-memory cache, linear extrapolation,
    /// options' own observability setting.
    pub fn new() -> Self {
        RunContext::default()
    }

    /// Shares `cache` across executions (see [`Zatel::execute`]).
    pub fn with_cache(mut self, cache: &'a ArtifactCache) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Switches to the Section IV-F exponential-regression variant at the
    /// given traced fractions (the stage cache is not consulted on this
    /// path; see [`Zatel::execute`]).
    pub fn with_regression(mut self, fractions: [f64; 3]) -> Self {
        self.regression = Some(fractions);
        self
    }

    /// Overrides [`ZatelOptions::observe`] for this execution only.
    pub fn with_observe(mut self, observe: ObserveOptions) -> Self {
        self.observe = Some(observe);
        self
    }

    /// Tags this execution with a request ID: the resulting
    /// [`Prediction::request_id`] carries it and a zero-width
    /// `request <id>` marker span is prepended to the span sheet, so every
    /// persisted artifact of the execution (run report, span sheet, serve
    /// debug ring) is correlatable back to the originating request. Purely
    /// observational — the prediction's values, fingerprints and cache
    /// interactions are unaffected.
    pub fn with_request_id(mut self, id: impl Into<String>) -> Self {
        self.request_id = Some(id.into());
        self
    }
}

/// The Zatel predictor: configure once, then [`Zatel::run`].
///
/// # Examples
///
/// ```no_run
/// use gpusim::{GpuConfig, Metric};
/// use rtcore::scenes::SceneId;
/// use rtcore::tracer::TraceConfig;
/// use zatel::Zatel;
///
/// # fn main() -> Result<(), zatel::ZatelError> {
/// let scene = SceneId::Park.build(42);
/// let trace = TraceConfig { samples_per_pixel: 2, max_bounces: 4, seed: 1 };
/// let zatel = Zatel::new(&scene, GpuConfig::mobile_soc(), 128, 128, trace);
/// let prediction = zatel.run()?;
/// println!("predicted cycles: {}", prediction.value(Metric::SimCycles));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Zatel<'s> {
    pub(crate) scene: &'s Scene,
    pub(crate) target: GpuConfig,
    pub(crate) width: u32,
    pub(crate) height: u32,
    pub(crate) trace: TraceConfig,
    pub(crate) options: ZatelOptions,
}

impl<'s> Zatel<'s> {
    /// Creates a predictor with default options (fine-grained 32×2
    /// division, uniform distribution, Eq. (1) pixel budget, natural
    /// downscale factor, parallel group simulation).
    ///
    /// # Panics
    ///
    /// Panics if the image is empty or the target configuration is invalid.
    pub fn new(
        scene: &'s Scene,
        target: GpuConfig,
        width: u32,
        height: u32,
        trace: TraceConfig,
    ) -> Self {
        assert!(width > 0 && height > 0, "image must be non-empty");
        // zatel-lint: allow(panic-hygiene, reason = "documented `# Panics` constructor contract; fallible construction goes through ZatelOptions validation instead")
        target.validate().expect("invalid target GPU configuration");
        Zatel {
            scene,
            target,
            width,
            height,
            trace,
            options: ZatelOptions::default(),
        }
    }

    /// Replaces the pipeline options.
    pub fn with_options(mut self, options: ZatelOptions) -> Self {
        self.options = options;
        self
    }

    /// Mutable access to the pipeline options.
    pub fn options_mut(&mut self) -> &mut ZatelOptions {
        &mut self.options
    }

    /// The options currently in force.
    pub fn options(&self) -> &ZatelOptions {
        &self.options
    }

    /// The target (full-size) GPU configuration.
    pub fn target(&self) -> &GpuConfig {
        &self.target
    }

    /// Resolves the downscale factor for the current options.
    ///
    /// # Errors
    ///
    /// Returns [`ZatelError::Downscale`] for factors that do not divide the
    /// configuration.
    pub fn resolve_factor(&self) -> Result<u32, ZatelError> {
        let k = match self.options.downscale {
            DownscaleMode::Natural => self.target.natural_downscale_factor(),
            DownscaleMode::Factor(f) => f,
            DownscaleMode::NoDownscale => 1,
        };
        // Validate by attempting the downscale.
        self.target.downscaled(k)?;
        Ok(k)
    }

    /// Runs the full prediction pipeline on a private in-memory artifact
    /// cache (every stage computes fresh). Thin wrapper over
    /// [`Zatel::execute`] with an empty [`RunContext`].
    ///
    /// # Errors
    ///
    /// Returns [`ZatelError`] if the configured downscale factor is
    /// invalid.
    pub fn run(&self) -> Result<Prediction, ZatelError> {
        self.execute(&RunContext::new())
    }

    /// Runs the full prediction pipeline through `cache`. Thin wrapper
    /// over [`Zatel::execute`] with [`RunContext::with_cache`].
    ///
    /// # Errors
    ///
    /// Returns [`ZatelError`] if the configured downscale factor is
    /// invalid.
    pub fn run_cached(&self, cache: &ArtifactCache) -> Result<Prediction, ZatelError> {
        self.execute(&RunContext::new().with_cache(cache))
    }

    /// Runs the pipeline as described by `ctx` — the single execution
    /// entry point every `run*` convenience wrapper forwards to.
    ///
    /// * [`RunContext::with_cache`] shares stage artifacts across runs:
    ///   cached stages are served instead of recomputed, their spans carry
    ///   a `" (cached)"` suffix, and statistics stay bit-identical to a
    ///   cold run — the cache only removes redundant work.
    /// * [`RunContext::with_regression`] switches to the Section IV-F
    ///   exponential-regression variant. That path simulates three traced
    ///   fractions directly and never consults the stage cache, so a
    ///   configured cache is ignored (the response's `cache` record list
    ///   is empty, exactly as [`Zatel::run_with_regression`] always
    ///   reported).
    /// * [`RunContext::with_observe`] overrides
    ///   [`ZatelOptions::observe`] for this execution only.
    ///
    /// # Errors
    ///
    /// Returns [`ZatelError`] if the options fail validation, the
    /// configured downscale factor is invalid, or the regression fractions
    /// are not equally spaced ascending values in `(0, 1]`.
    pub fn execute(&self, ctx: &RunContext<'_>) -> Result<Prediction, ZatelError> {
        let observed;
        let zatel = match &ctx.observe {
            Some(observe) => {
                let mut options = self.options.clone();
                options.observe = Some(observe.clone());
                observed = Zatel {
                    scene: self.scene,
                    target: self.target.clone(),
                    width: self.width,
                    height: self.height,
                    trace: self.trace,
                    options,
                };
                &observed
            }
            None => self,
        };
        let mut prediction = match (ctx.regression, ctx.cache) {
            (Some(fractions), _) => zatel.execute_regression(fractions),
            (None, Some(cache)) => zatel.execute_cached(cache),
            (None, None) => zatel.execute_cached(&ArtifactCache::in_memory()),
        }?;
        if let Some(id) = &ctx.request_id {
            prediction.request_id = Some(id.clone());
            prediction.spans.insert(
                0,
                SpanRecord {
                    name: format!("request {id}"),
                    track: 0,
                    start_us: 0,
                    dur_us: 0,
                },
            );
        }
        Ok(prediction)
    }

    /// The cached pipeline: heatmap → quantize → divide → select →
    /// simulate → extrapolate, every stage through `cache`.
    fn execute_cached(&self, cache: &ArtifactCache) -> Result<Prediction, ZatelError> {
        self.options.validate()?;
        let sheet = SpanSheet::new();
        let mut records = Vec::new();
        let pre_start = Instant::now();
        let (heatmap, _) = staged(
            cache,
            &sheet,
            &mut records,
            &self.heatmap_stage(),
            self.scene,
            self.scene.fingerprint(),
        );
        let (quantized, _) = staged(
            cache,
            &sheet,
            &mut records,
            &self.quantize_stage(),
            heatmap.as_ref(),
            heatmap.fingerprint(),
        );
        let preprocess_wall = pre_start.elapsed();
        let mut prediction =
            self.run_from_quantized(&quantized, preprocess_wall, None, cache, &sheet, records)?;
        prediction.heatmap = Some(heatmap.as_ref().clone());
        Ok(prediction)
    }

    /// Runs the pipeline reusing an existing quantized heatmap (lets sweeps
    /// skip re-profiling) and optionally overriding the traced percentage.
    ///
    /// # Errors
    ///
    /// Returns [`ZatelError`] if the configured downscale factor is
    /// invalid.
    pub fn run_with_preprocessed(
        &self,
        quantized: &QuantizedHeatmap,
        preprocess_wall: Duration,
        percent_override: Option<f64>,
    ) -> Result<Prediction, ZatelError> {
        self.options.validate()?;
        let sheet = SpanSheet::new();
        self.run_from_quantized(
            &Arc::new(quantized.clone()),
            preprocess_wall,
            percent_override,
            &ArtifactCache::in_memory(),
            &sheet,
            Vec::new(),
        )
    }

    /// The heatmap stage for this predictor's resolution and trace config.
    pub(crate) fn heatmap_stage(&self) -> HeatmapStage {
        HeatmapStage {
            width: self.width,
            height: self.height,
            trace: self.trace,
        }
    }

    /// The quantize stage for this predictor's colour count and seed.
    pub(crate) fn quantize_stage(&self) -> QuantizeStage {
        QuantizeStage {
            colors: self.options.quant_colors,
            seed: self.trace.seed,
        }
    }

    /// The post-preprocessing pipeline: the divide → select →
    /// simulate-groups → extrapolate stages, composed through `cache` with
    /// phase spans on `sheet`.
    fn run_from_quantized(
        &self,
        quantized: &Arc<QuantizedHeatmap>,
        preprocess_wall: Duration,
        percent_override: Option<f64>,
        cache: &ArtifactCache,
        sheet: &SpanSheet,
        mut records: Vec<StageCacheRecord>,
    ) -> Result<Prediction, ZatelError> {
        let k = self.resolve_factor()?;
        let down = self.target.downscaled(k)?;
        let (groups, groups_fp) = staged(
            cache,
            sheet,
            &mut records,
            &DivideStage {
                width: self.width,
                height: self.height,
                k,
                division: self.options.division,
            },
            &(),
            0,
        );

        let mut sel_opts = self.options.selection;
        if let Some(p) = percent_override {
            sel_opts.percent_override = Some(p);
        }
        let mut input_h = Fnv64::new();
        input_h
            .write_u64(groups_fp)
            .write_u64(quantized.fingerprint());
        let (selections, _) = staged(
            cache,
            sheet,
            &mut records,
            &SelectStage { options: sel_opts },
            &SelectInput {
                groups: Arc::clone(&groups),
                quantized: Arc::clone(quantized),
            },
            input_h.finish(),
        );

        let sim_start = Instant::now();
        let (outcomes, _) = staged(
            cache,
            sheet,
            &mut records,
            &GroupSimStage {
                zatel: self,
                down: &down,
                sheet,
            },
            &SimInput {
                groups: Arc::clone(&groups),
                selections: Arc::clone(&selections),
            },
            0,
        );
        let sim_wall = sim_start.elapsed();
        // Uncacheable outputs are never retained by the cache, so this is
        // the only reference and unwraps without cloning.
        let outcomes = Arc::try_unwrap(outcomes).unwrap_or_else(|a| a.as_ref().clone());

        // Combine: per-metric linear extrapolation then the Section III-H rule.
        let (metric_vector, _) =
            staged(cache, sheet, &mut records, &ExtrapolateStage, &outcomes, 0);

        let concurrency = aggregate_concurrency(&outcomes);
        Ok(Prediction {
            values: metric_vector.0,
            groups: outcomes,
            k,
            preprocess_wall,
            sim_wall,
            spans: sheet.snapshot(),
            heatmap: None,
            cache: records,
            request_id: None,
            concurrency,
        })
    }

    /// Runs every group's simulation (in parallel when configured),
    /// recording one `group N` span per job on `sheet`.
    pub(crate) fn simulate_groups(
        &self,
        down: &GpuConfig,
        groups: &[Group],
        selections: &[Selection],
        sheet: &SpanSheet,
    ) -> Vec<GroupOutcome> {
        // The intra-sim thread knob rides on the config clone each worker
        // simulates; it never reaches fingerprints (GpuConfig::to_json
        // omits it) so cached artifacts stay valid across thread counts.
        let mut down = down.clone();
        down.sim_threads = self.options.effective_sim_threads();
        down.timing_threads = self.options.effective_timing_threads();
        let down = &down;
        let run_one = |group: &Group, selection: &Selection| -> GroupOutcome {
            let workload = RtWorkload::new(
                self.scene,
                self.width,
                self.height,
                self.trace,
                group.pixels.clone(),
            )
            .with_selection(selection.mask.clone());
            let traced_fraction = workload.traced_fraction();
            let simulator = Simulator::new(down.clone());
            let trace_hooks = self.options.trace_slice_cycles.map(TraceHooks::new);
            let obs_hooks = self.options.observe.as_ref().map(|o| {
                ObsHooks::for_gpu(group.index, &format!("group {}", group.index), down, o)
            });
            let (stats, telemetry, trace, obs) = if trace_hooks.is_none() && obs_hooks.is_none() {
                // The uninstrumented path keeps the NullHooks monomorphization.
                let (stats, telemetry) =
                    simulator.run_instrumented(&workload, &mut gpusim::NullHooks);
                (stats, telemetry, None, None)
            } else {
                let mut hooks = (trace_hooks, obs_hooks);
                let (stats, telemetry) = simulator.run_instrumented(&workload, &mut hooks);
                (stats, telemetry, hooks.0, hooks.1)
            };
            GroupOutcome {
                index: group.index,
                pixels: group.pixels.len(),
                traced_fraction,
                target_percent: selection.target_percent,
                stats,
                wall: Duration::ZERO, // filled from the executor's timing
                trace,
                obs,
                telemetry,
            }
        };

        let pairs: Vec<(&Group, &Selection)> = groups.iter().zip(selections).collect();
        let phase_start = sheet.elapsed();
        let (mut outcomes, timings) = self.executor().map_timed(&pairs, |_, (g, s)| run_one(g, s));
        for (outcome, timing) in outcomes.iter_mut().zip(&timings) {
            outcome.wall = timing.wall;
            sheet.record(
                &format!("group {}", outcome.index),
                timing.worker as u32 + 1,
                phase_start + timing.start,
                timing.wall,
            );
        }
        outcomes
    }

    /// The executor group simulation runs on, honouring the `parallel` and
    /// `jobs` options and seeded with the trace's master seed.
    ///
    /// Oversubscribing a single hardware thread only inflates per-group
    /// wall-clock measurements, so parallelism also requires real cores.
    pub fn executor(&self) -> SimExecutor {
        let jobs = match (self.options.parallel, self.options.jobs) {
            (false, _) => 1,
            (true, Some(n)) => n,
            (true, None) => available_jobs(),
        };
        SimExecutor::seeded(jobs, self.trace.seed)
    }

    /// Runs the exponential-regression variant of Section IV-F: simulate at
    /// the three given fractions, fit per metric and predict 100 %. Thin
    /// wrapper over [`Zatel::execute`] with [`RunContext::with_regression`].
    ///
    /// # Errors
    ///
    /// Returns [`ZatelError`] if the downscale factor is invalid or the
    /// fractions are not strictly increasing, equally spaced values in
    /// `(0, 1]`.
    pub fn run_with_regression(&self, fractions: [f64; 3]) -> Result<Prediction, ZatelError> {
        self.execute(&RunContext::new().with_regression(fractions))
    }

    /// The regression pipeline (see [`Zatel::run_with_regression`]).
    fn execute_regression(&self, fractions: [f64; 3]) -> Result<Prediction, ZatelError> {
        self.options.validate()?;
        let [f1, f2, f3] = fractions;
        let spaced = (f2 - f1) > 0.0 && ((f3 - f2) - (f2 - f1)).abs() < 1e-9;
        if !(spaced && f1 > 0.0 && f3 <= 1.0) {
            return Err(ZatelError::InvalidOptions(format!(
                "regression fractions must be equally spaced ascending in (0,1]: {fractions:?}"
            )));
        }
        let sheet = SpanSheet::new();
        let pre_start = Instant::now();
        let heatmap = {
            let _span = sheet.span("heatmap");
            Heatmap::profile(self.scene, self.width, self.height, &self.trace)
        };
        let quantized = {
            let _span = sheet.span("quantize");
            QuantizedHeatmap::quantize(&heatmap, self.options.quant_colors, self.trace.seed)
        };
        let preprocess_wall = pre_start.elapsed();

        let sim_start = Instant::now();
        let mut runs = Vec::with_capacity(3);
        for f in fractions {
            // Raw (non-extrapolated) combined values per fraction feed the
            // regression; regression replaces linear extrapolation.
            let k = self.resolve_factor()?;
            let down = self.target.downscaled(k)?;
            let groups = divide(self.width, self.height, k, self.options.division);
            let mut sel_opts = self.options.selection;
            sel_opts.percent_override = Some(f);
            let selections: Vec<Selection> = groups
                .iter()
                .map(|g| select_pixels(g, &quantized, &sel_opts))
                .collect();
            let _span = sheet.span(&format!("simulate-groups {:.0}%", f * 100.0));
            let outcomes = self.simulate_groups(&down, &groups, &selections, &sheet);
            runs.push((f, outcomes));
        }
        let sim_wall = sim_start.elapsed();

        let _span = sheet.span("extrapolate");
        let mut values = [0.0f64; 7];
        for (i, metric) in Metric::ALL.iter().enumerate() {
            let mut pts = [(0.0, 0.0); 3];
            for (j, (f, outcomes)) in runs.iter().enumerate() {
                let per_group: Vec<f64> = outcomes.iter().map(|o| metric.value(&o.stats)).collect();
                pts[j] = (*f, metric.combine(&per_group));
            }
            values[i] = regression_to_full(&pts);
        }
        drop(_span);

        let (_, groups) = runs.pop().ok_or_else(|| {
            ZatelError::InvalidOptions("regression needs at least one traced fraction".into())
        })?;
        let k = self.resolve_factor()?;
        let concurrency = aggregate_concurrency(&groups);
        Ok(Prediction {
            values,
            groups,
            k,
            preprocess_wall,
            sim_wall,
            spans: sheet.snapshot(),
            heatmap: Some(heatmap),
            // The regression variant simulates three traced fractions
            // directly; none of its work flows through the stage cache.
            cache: Vec::new(),
            request_id: None,
            concurrency,
        })
    }

    /// Simulates the full workload on the full-size GPU — the ground truth
    /// every prediction is evaluated against (and the denominator of the
    /// speedup).
    pub fn run_reference(&self) -> Reference {
        let start = Instant::now();
        let workload = RtWorkload::full_frame(self.scene, self.width, self.height, self.trace);
        let mut target = self.target.clone();
        target.sim_threads = self.options.effective_sim_threads();
        target.timing_threads = self.options.effective_timing_threads();
        let stats = Simulator::new(target).run(&workload);
        Reference {
            stats,
            wall: start.elapsed(),
        }
    }
}

/// Folds every group's concurrency telemetry into one record: counters
/// add and equal shard ranks merge pairwise. `None` when no group ran on
/// the sharded engine.
fn aggregate_concurrency(groups: &[GroupOutcome]) -> Option<SimTelemetry> {
    let mut total = SimTelemetry::default();
    let mut any = false;
    for group in groups {
        if let Some(telemetry) = &group.telemetry {
            total.merge(telemetry);
            any = true;
        }
    }
    any.then_some(total)
}

/// Executes `stage` through `cache`, recording a span named
/// [`Stage::NAME`] (with a `" (cached)"` suffix when the artifact was
/// reused) and appending a [`StageCacheRecord`].
fn staged<S: Stage>(
    cache: &ArtifactCache,
    sheet: &SpanSheet,
    records: &mut Vec<StageCacheRecord>,
    stage: &S,
    input: &S::Input,
    input_fp: Fingerprint,
) -> (Arc<S::Output>, Fingerprint) {
    let start = sheet.elapsed();
    let (artifact, fingerprint, outcome) = cache.get_or_run(stage, input, input_fp);
    let dur = sheet.elapsed().saturating_sub(start);
    let name = if outcome.is_hit() {
        format!("{} (cached)", S::NAME)
    } else {
        S::NAME.to_owned()
    };
    sheet.record(&name, 0, start, dur);
    records.push(StageCacheRecord {
        stage: S::NAME,
        fingerprint,
        outcome,
    });
    (artifact, fingerprint)
}

impl ToJson for DownscaleMode {
    fn to_json(&self) -> Value {
        match self {
            DownscaleMode::Natural => Value::from("natural"),
            DownscaleMode::NoDownscale => Value::from("none"),
            DownscaleMode::Factor(k) => Value::from(*k),
        }
    }
}

impl FromJson for DownscaleMode {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        if let Some(k) = value.as_u64() {
            let k = u32::try_from(k)
                .map_err(|_| JsonError::conversion("downscale factor out of range"))?;
            return Ok(if k <= 1 {
                DownscaleMode::NoDownscale
            } else {
                DownscaleMode::Factor(k)
            });
        }
        match value.as_str() {
            Some("natural") => Ok(DownscaleMode::Natural),
            Some("none") => Ok(DownscaleMode::NoDownscale),
            _ => Err(JsonError::conversion(
                "downscale mode must be \"natural\", \"none\" or a factor",
            )),
        }
    }
}

impl ToJson for ZatelOptions {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("division".into(), self.division.to_json());
        m.insert("selection".into(), self.selection.to_json());
        m.insert("quant_colors".into(), Value::from(self.quant_colors));
        m.insert("downscale".into(), self.downscale.to_json());
        m.insert("parallel".into(), Value::from(self.parallel));
        m.insert("jobs".into(), self.jobs.map_or(Value::Null, Value::from));
        m.insert(
            "sim_threads".into(),
            self.sim_threads.map_or(Value::Null, Value::from),
        );
        m.insert(
            "timing_threads".into(),
            self.timing_threads.map_or(Value::Null, Value::from),
        );
        m.insert(
            "trace_slice_cycles".into(),
            self.trace_slice_cycles.map_or(Value::Null, Value::from),
        );
        m.insert(
            "observe".into(),
            self.observe.as_ref().map_or(Value::Null, ToJson::to_json),
        );
        Value::Object(m)
    }
}

impl FromJson for ZatelOptions {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        const TY: &str = "ZatelOptions";
        let field = |name: &str| {
            value
                .get(name)
                .ok_or_else(|| JsonError::missing_field(TY, name))
        };
        let optional = |name: &str| match value.get(name) {
            None | Some(Value::Null) => None,
            Some(v) => Some(v),
        };
        Ok(ZatelOptions {
            division: DivisionMethod::from_json(field("division")?)?,
            selection: SelectionOptions::from_json(field("selection")?)?,
            quant_colors: field("quant_colors")?
                .as_u64()
                .ok_or_else(|| JsonError::missing_field(TY, "quant_colors"))?
                as usize,
            downscale: DownscaleMode::from_json(field("downscale")?)?,
            parallel: field("parallel")?
                .as_bool()
                .ok_or_else(|| JsonError::missing_field(TY, "parallel"))?,
            jobs: optional("jobs")
                .map(|v| {
                    v.as_u64()
                        .map(|n| n as usize)
                        .ok_or_else(|| JsonError::missing_field(TY, "jobs"))
                })
                .transpose()?,
            sim_threads: optional("sim_threads")
                .map(|v| {
                    v.as_u64()
                        .map(|n| n as usize)
                        .ok_or_else(|| JsonError::missing_field(TY, "sim_threads"))
                })
                .transpose()?,
            timing_threads: optional("timing_threads")
                .map(|v| {
                    v.as_u64()
                        .map(|n| n as usize)
                        .ok_or_else(|| JsonError::missing_field(TY, "timing_threads"))
                })
                .transpose()?,
            trace_slice_cycles: optional("trace_slice_cycles")
                .map(|v| {
                    v.as_u64()
                        .ok_or_else(|| JsonError::missing_field(TY, "trace_slice_cycles"))
                })
                .transpose()?,
            observe: optional("observe")
                .map(ObserveOptions::from_json)
                .transpose()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcore::scenes::SceneId;

    fn trace() -> TraceConfig {
        TraceConfig {
            samples_per_pixel: 1,
            max_bounces: 2,
            seed: 9,
        }
    }

    fn quick_zatel(scene: &Scene) -> Zatel<'_> {
        Zatel::new(scene, GpuConfig::mobile_soc(), 64, 64, trace())
    }

    #[test]
    fn builder_validates_on_build() {
        let options = ZatelOptions::builder()
            .downscale(DownscaleMode::Factor(2))
            .quant_colors(4)
            .percent_override(0.25)
            .clamp(0.1, 0.9)
            .jobs(2)
            .sim_threads(4)
            .timing_threads(2)
            .build()
            .expect("valid options");
        assert_eq!(options.downscale, DownscaleMode::Factor(2));
        assert_eq!(options.quant_colors, 4);
        assert_eq!(options.selection.percent_override, Some(0.25));
        assert_eq!(options.selection.clamp, (0.1, 0.9));
        assert_eq!(options.jobs, Some(2));
        assert_eq!(options.sim_threads, Some(4));
        assert_eq!(options.timing_threads, Some(2));

        for broken in [
            ZatelOptions::builder().trace_slice_cycles(0),
            ZatelOptions::builder().jobs(0),
            ZatelOptions::builder().sim_threads(0),
            ZatelOptions::builder().timing_threads(0),
            ZatelOptions::builder().quant_colors(0),
            ZatelOptions::builder().percent_override(0.0),
            ZatelOptions::builder().percent_override(1.5),
            ZatelOptions::builder().percent_cap(-0.1),
            ZatelOptions::builder().clamp(0.6, 0.3),
            ZatelOptions::builder().clamp(-0.2, 0.5),
        ] {
            let err = broken.build().expect_err("invalid options accepted");
            assert!(matches!(err, ZatelError::InvalidOptions(_)), "{err}");
        }
    }

    #[test]
    fn sim_threads_resolution_prefers_the_option() {
        let mut opts = ZatelOptions {
            sim_threads: Some(3),
            ..ZatelOptions::default()
        };
        assert_eq!(opts.effective_sim_threads(), 3);
        // With the option unset the knob defers to the environment, so the
        // expectation must too (CI runs the suite under ZATEL_SIM_THREADS).
        opts.sim_threads = None;
        let from_env = std::env::var("ZATEL_SIM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1);
        assert_eq!(opts.effective_sim_threads(), from_env);
    }

    #[test]
    fn timing_threads_resolution_prefers_the_option() {
        let mut opts = ZatelOptions {
            timing_threads: Some(3),
            ..ZatelOptions::default()
        };
        assert_eq!(opts.effective_timing_threads(), 3);
        // With the option unset the knob defers to the environment, so the
        // expectation must too (CI runs the suite under
        // ZATEL_TIMING_THREADS).
        opts.timing_threads = None;
        let from_env = std::env::var("ZATEL_TIMING_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(1);
        assert_eq!(opts.effective_timing_threads(), from_env);
    }

    #[test]
    fn execute_matches_run_wrappers() {
        let scene = SceneId::Sprng.build(1);
        let z = quick_zatel(&scene);
        let direct = z.run().expect("run");
        let via_execute = z.execute(&RunContext::new()).expect("execute");
        assert_eq!(
            direct.value(Metric::SimCycles),
            via_execute.value(Metric::SimCycles)
        );
        assert_eq!(direct.k, via_execute.k);

        let cache = ArtifactCache::in_memory();
        let warm = z
            .execute(&RunContext::new().with_cache(&cache))
            .expect("cached execute");
        assert_eq!(
            direct.value(Metric::SimCycles),
            warm.value(Metric::SimCycles)
        );
        let again = z
            .execute(&RunContext::new().with_cache(&cache))
            .expect("warm execute");
        assert!(
            again.cache.iter().any(|r| r.outcome.is_hit()),
            "second execution through a shared cache must hit"
        );
    }

    #[test]
    fn execute_observe_override_is_per_execution() {
        let scene = SceneId::Sprng.build(1);
        let z = quick_zatel(&scene);
        let observed = z
            .execute(&RunContext::new().with_observe(ObserveOptions {
                timeline: false,
                ..ObserveOptions::default()
            }))
            .expect("observed execute");
        assert!(
            observed.groups.iter().all(|g| g.obs.is_some()),
            "observe override must reach every group"
        );
        // The override does not stick to the predictor itself.
        assert!(z.options().observe.is_none());
        let plain = z.run().expect("plain run");
        assert!(plain.groups.iter().all(|g| g.obs.is_none()));
    }

    #[test]
    fn execute_regression_ignores_cache_and_matches_wrapper() {
        let scene = SceneId::Sprng.build(1);
        let z = quick_zatel(&scene);
        let fractions = [0.2, 0.3, 0.4];
        let wrapper = z.run_with_regression(fractions).expect("wrapper");
        let cache = ArtifactCache::in_memory();
        let ctx = RunContext::new()
            .with_cache(&cache)
            .with_regression(fractions);
        let via_execute = z.execute(&ctx).expect("execute");
        assert_eq!(
            wrapper.value(Metric::SimCycles),
            via_execute.value(Metric::SimCycles)
        );
        assert!(
            via_execute.cache.is_empty(),
            "regression path never consults the stage cache"
        );
    }

    #[test]
    fn request_id_tags_prediction_without_changing_values() {
        let scene = SceneId::Sprng.build(1);
        let z = quick_zatel(&scene);
        let tagged = z
            .execute(&RunContext::new().with_request_id("req-test-7"))
            .expect("tagged execute");
        assert_eq!(tagged.request_id.as_deref(), Some("req-test-7"));
        assert_eq!(tagged.spans[0].name, "request req-test-7");
        assert_eq!((tagged.spans[0].track, tagged.spans[0].dur_us), (0, 0));
        let plain = z.run().expect("plain run");
        assert!(plain.request_id.is_none());
        assert!(!plain.spans.iter().any(|s| s.name.starts_with("request ")));
        for m in Metric::ALL {
            assert_eq!(
                tagged.value(m),
                plain.value(m),
                "{m} must ignore request tagging"
            );
        }
    }

    #[test]
    fn sharded_runs_aggregate_concurrency_telemetry() {
        let scene = SceneId::Sprng.build(1);
        let mut z = quick_zatel(&scene);
        z.options_mut().sim_threads = Some(4);
        let sharded = z.run().expect("sharded run");
        assert!(sharded.groups.iter().all(|g| g.telemetry.is_some()));
        let conc = sharded
            .concurrency
            .as_ref()
            .expect("sharded run aggregates telemetry");
        assert_eq!(conc.runs, sharded.groups.len() as u64);
        assert!(conc.decoded_phases() > 0);
        assert!(conc.commit_wall_us > 0);
        assert!(
            (1..=3).contains(&conc.shard_count),
            "sim_threads=4 -> at most 3 decode shards, clamped to the \
             downscaled SM count; got {}",
            conc.shard_count
        );
        assert_eq!(conc.shards.len(), conc.shard_count);

        z.options_mut().sim_threads = Some(1);
        let serial = z.run().expect("serial run");
        assert!(serial.concurrency.is_none());
        assert!(serial.groups.iter().all(|g| g.telemetry.is_none()));
        for m in Metric::ALL {
            assert_eq!(
                sharded.value(m),
                serial.value(m),
                "{m} must not depend on sim_threads"
            );
        }
    }

    #[test]
    fn natural_factor_resolution() {
        let scene = SceneId::Sprng.build(1);
        let z = quick_zatel(&scene);
        assert_eq!(z.resolve_factor().unwrap(), 4);
        let mut z = z;
        z.options_mut().downscale = DownscaleMode::Factor(2);
        assert_eq!(z.resolve_factor().unwrap(), 2);
        z.options_mut().downscale = DownscaleMode::Factor(3);
        assert!(z.resolve_factor().is_err());
        z.options_mut().downscale = DownscaleMode::NoDownscale;
        assert_eq!(z.resolve_factor().unwrap(), 1);
    }

    #[test]
    fn pipeline_produces_finite_prediction() {
        let scene = SceneId::Sprng.build(1);
        let pred = quick_zatel(&scene).run().expect("pipeline must run");
        assert_eq!(pred.k, 4);
        assert_eq!(pred.groups.len(), 4);
        for m in Metric::ALL {
            let v = pred.value(m);
            assert!(v.is_finite() && v >= 0.0, "{m}: {v}");
        }
        assert!(pred.value(Metric::SimCycles) > 0.0);
    }

    #[test]
    fn prediction_error_is_bounded_on_saturating_scene() {
        // BUNNY saturates the GPU; cycle prediction should land within 60%
        // even at this tiny test resolution.
        let scene = SceneId::Bunny.build(2);
        let z = quick_zatel(&scene);
        let pred = z.run().unwrap();
        let reference = z.run_reference();
        let err = crate::metrics::abs_error(
            pred.value(Metric::SimCycles),
            Metric::SimCycles.value(&reference.stats),
        );
        assert!(err < 0.6, "cycles error {err} too large");
    }

    #[test]
    fn higher_percentage_is_more_accurate_on_average() {
        let scene = SceneId::Chsnt.build(3);
        let mut z = quick_zatel(&scene);
        z.options_mut().downscale = DownscaleMode::NoDownscale;
        let reference = z.run_reference();
        let err_at = |p: f64, z: &Zatel<'_>| {
            let mut opts = z.options().clone();
            opts.selection.percent_override = Some(p);
            let z2 =
                Zatel::new(&scene, GpuConfig::mobile_soc(), 64, 64, trace()).with_options(opts);
            let pred = z2.run().unwrap();
            crate::metrics::abs_error(
                pred.value(Metric::SimCycles),
                Metric::SimCycles.value(&reference.stats),
            )
        };
        let low = err_at(0.1, &z);
        let high = err_at(0.9, &z);
        assert!(
            high <= low + 0.02,
            "90% trace (err {high}) should beat 10% trace (err {low})"
        );
    }

    #[test]
    fn no_downscale_single_group() {
        let scene = SceneId::Sprng.build(1);
        let mut z = quick_zatel(&scene);
        z.options_mut().downscale = DownscaleMode::NoDownscale;
        let pred = z.run().unwrap();
        assert_eq!(pred.k, 1);
        assert_eq!(pred.groups.len(), 1);
    }

    #[test]
    fn parallel_and_serial_agree() {
        let scene = SceneId::Wknd.build(4);
        let mut z = quick_zatel(&scene);
        z.options_mut().parallel = true;
        let par = z.run().unwrap();
        z.options_mut().parallel = false;
        let ser = z.run().unwrap();
        for m in Metric::ALL {
            assert_eq!(
                par.value(m),
                ser.value(m),
                "{m} must not depend on host threading"
            );
        }
    }

    #[test]
    fn full_selection_with_no_downscale_matches_reference_exactly() {
        // 100% of pixels, no downscaling, single group → identical stats.
        let scene = SceneId::Sprng.build(1);
        let mut z = quick_zatel(&scene);
        z.options_mut().downscale = DownscaleMode::NoDownscale;
        z.options_mut().selection.percent_override = Some(1.0);
        let pred = z.run().unwrap();
        let reference = z.run_reference();
        for m in Metric::ALL {
            let (p, r) = (pred.value(m), m.value(&reference.stats));
            assert!(
                crate::metrics::abs_error(p, r) < 0.05,
                "{m}: predicted {p} vs reference {r}"
            );
        }
    }

    #[test]
    fn tracing_does_not_change_prediction() {
        let scene = SceneId::Sprng.build(1);
        let mut z = quick_zatel(&scene);
        let plain = z.run().unwrap();
        assert!(plain.groups.iter().all(|g| g.trace.is_none()));
        z.options_mut().trace_slice_cycles = Some(10_000);
        z.options_mut().jobs = Some(2);
        let traced = z.run().unwrap();
        for m in Metric::ALL {
            assert_eq!(plain.value(m), traced.value(m), "{m} must ignore tracing");
        }
        for g in &traced.groups {
            let trace = g.trace.as_ref().expect("trace attached");
            assert_eq!(trace.counters().phases(), g.stats.warp_issues);
        }
    }

    #[test]
    fn zero_slice_width_is_an_error_not_a_panic() {
        let scene = SceneId::Sprng.build(1);
        let mut z = quick_zatel(&scene);
        z.options_mut().trace_slice_cycles = Some(0);
        for result in [
            z.run(),
            z.run_with_regression([0.2, 0.3, 0.4]),
            z.run_with_preprocessed(
                &QuantizedHeatmap::quantize(&Heatmap::profile(&scene, 64, 64, &trace()), 8, 9),
                Duration::ZERO,
                None,
            ),
        ] {
            match result {
                Err(ZatelError::InvalidOptions(msg)) => {
                    assert!(msg.contains("trace_slice_cycles"), "message: {msg}")
                }
                other => panic!("expected InvalidOptions, got {other:?}"),
            }
        }
    }

    #[test]
    fn pipeline_records_phase_and_group_spans() {
        let scene = SceneId::Sprng.build(1);
        let pred = quick_zatel(&scene).run().unwrap();
        let names: Vec<&str> = pred.spans.iter().map(|s| s.name.as_str()).collect();
        for phase in [
            "heatmap",
            "quantize",
            "select",
            "simulate-groups",
            "extrapolate",
        ] {
            assert!(
                names.contains(&phase),
                "missing span '{phase}' in {names:?}"
            );
        }
        let group_spans = pred
            .spans
            .iter()
            .filter(|s| s.name.starts_with("group "))
            .count();
        assert_eq!(group_spans, pred.groups.len(), "one span per group job");
        assert!(
            pred.spans
                .iter()
                .all(|s| s.name.starts_with("group ") || s.track == 0),
            "phase spans live on track 0"
        );
        assert!(pred.heatmap.is_some(), "run() keeps the profiled heatmap");
        // Spans arrive sorted; group spans start inside simulate-groups.
        let sim = pred
            .spans
            .iter()
            .find(|s| s.name == "simulate-groups")
            .unwrap();
        for g in pred.spans.iter().filter(|s| s.name.starts_with("group ")) {
            assert!(g.start_us >= sim.start_us);
            assert!(g.start_us + g.dur_us <= sim.start_us + sim.dur_us + 1000);
        }
    }

    #[test]
    fn observing_does_not_change_prediction() {
        let scene = SceneId::Sprng.build(1);
        let mut z = quick_zatel(&scene);
        let plain = z.run().unwrap();
        assert!(plain.groups.iter().all(|g| g.obs.is_none()));
        z.options_mut().observe = Some(obs::ObserveOptions::default());
        z.options_mut().jobs = Some(2);
        let observed = z.run().unwrap();
        for m in Metric::ALL {
            assert_eq!(
                plain.value(m),
                observed.value(m),
                "{m} must ignore observation"
            );
        }
        for g in &observed.groups {
            let mut recorder = g.obs.clone().expect("obs attached");
            assert!(recorder.mem_read_latency().count() > 0);
            assert!(recorder.take_timeline().is_some(), "timeline on by default");
        }
    }

    #[test]
    fn regression_variant_runs() {
        let scene = SceneId::Sprng.build(1);
        let mut z = quick_zatel(&scene);
        z.options_mut().downscale = DownscaleMode::NoDownscale;
        let pred = z.run_with_regression([0.2, 0.3, 0.4]).unwrap();
        assert!(pred.value(Metric::SimCycles).is_finite());
        assert!(z.run_with_regression([0.4, 0.3, 0.2]).is_err());
        assert!(z.run_with_regression([0.2, 0.35, 0.4]).is_err());
    }

    #[test]
    fn speedup_and_errors_api() {
        let scene = SceneId::Sprng.build(1);
        let z = quick_zatel(&scene);
        let pred = z.run().unwrap();
        let reference = z.run_reference();
        let errs = pred.errors_vs(&reference.stats);
        assert_eq!(errs.len(), 7);
        let mae = pred.mae_vs(&reference.stats);
        assert!(mae.is_finite() || mae.is_infinite()); // defined either way
        assert!(pred.speedup_vs(&reference) > 0.0);
    }
}
