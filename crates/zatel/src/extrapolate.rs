//! Extrapolation of group predictions to the full workload
//! (paper Sections III-G and IV-F): linear scaling by the traced fraction,
//! or an exponential regression over three measured percentages.

use gpusim::Metric;

/// Error from fitting an extrapolation model.
#[derive(Debug, Clone, PartialEq)]
pub struct FitError {
    reason: String,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "regression fit failed: {}", self.reason)
    }
}

impl std::error::Error for FitError {}

/// Linearly extrapolates a measured metric value to the full pixel count:
/// absolute metrics divide by the traced fraction, ratio metrics pass
/// through (the paper's baseline extrapolation).
///
/// # Panics
///
/// Panics if `fraction` is not in `(0, 1]`.
pub fn linear(metric: Metric, value: f64, fraction: f64) -> f64 {
    metric.extrapolate(value, fraction)
}

/// The exponential regression model of Section IV-F:
/// `y(f) = a + b·exp(c·f)`, fitted to three samples at equally spaced
/// traced fractions (the paper uses 20 %, 30 % and 40 %), then evaluated
/// at `f = 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExpRegression {
    /// Offset term.
    pub a: f64,
    /// Amplitude term.
    pub b: f64,
    /// Exponent rate.
    pub c: f64,
}

impl ExpRegression {
    /// Fits the model exactly through three points with equally spaced
    /// abscissae.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] if the abscissae are not strictly increasing
    /// and equally spaced, or if the data does not admit an exponential
    /// solution (ratio of successive differences non-positive); callers
    /// should fall back to [`linear_fit`] in that case, as the paper's
    /// implementation effectively degrades to its baseline.
    pub fn fit(points: &[(f64, f64); 3]) -> Result<ExpRegression, FitError> {
        let [(f1, y1), (f2, y2), (f3, y3)] = *points;
        let h1 = f2 - f1;
        let h2 = f3 - f2;
        if h1 <= 0.0 || h2 <= 0.0 || (h1 - h2).abs() > 1e-9 {
            return Err(FitError {
                reason: format!("abscissae must be equally spaced ascending: {f1}, {f2}, {f3}"),
            });
        }
        let d1 = y2 - y1;
        let d2 = y3 - y2;
        if d1.abs() < 1e-12 && d2.abs() < 1e-12 {
            // Perfectly flat: a constant model.
            return Ok(ExpRegression {
                a: y1,
                b: 0.0,
                c: 0.0,
            });
        }
        let r = d2 / d1;
        if !(r.is_finite() && r > 0.0) || (r - 1.0).abs() < 1e-9 {
            return Err(FitError {
                reason: format!("difference ratio {r} not exponential"),
            });
        }
        let c = r.ln() / h1;
        let b = d1 / ((c * f2).exp() - (c * f1).exp());
        let a = y1 - b * (c * f1).exp();
        Ok(ExpRegression { a, b, c })
    }

    /// Evaluates the fitted model at traced fraction `f`.
    pub fn predict(&self, f: f64) -> f64 {
        self.a + self.b * (self.c * f).exp()
    }
}

/// Least-squares straight line through `points`, evaluated at `f`.
/// The degenerate-fit fallback for [`ExpRegression`].
pub fn linear_fit(points: &[(f64, f64)], f: f64) -> f64 {
    assert!(!points.is_empty(), "need at least one point");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return sy / n;
    }
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;
    intercept + slope * f
}

/// Extrapolates a metric to 100 % from three `(fraction, value)` samples
/// using exponential regression, falling back to a least-squares line when
/// the data is not exponential.
pub fn regression_to_full(points: &[(f64, f64); 3]) -> f64 {
    match ExpRegression::fit(points) {
        Ok(model) => model.predict(1.0),
        Err(_) => linear_fit(points, 1.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_matches_paper_example() {
        assert_eq!(linear(Metric::SimCycles, 100_000.0, 0.1), 1_000_000.0);
        assert_eq!(linear(Metric::L1MissRate, 0.7, 0.1), 0.7);
    }

    #[test]
    fn exp_fit_recovers_known_model() {
        let truth = ExpRegression {
            a: 5.0,
            b: 2.0,
            c: -3.0,
        };
        let pts = [
            (0.2, truth.predict(0.2)),
            (0.3, truth.predict(0.3)),
            (0.4, truth.predict(0.4)),
        ];
        let fit = ExpRegression::fit(&pts).expect("fit must succeed");
        assert!((fit.a - truth.a).abs() < 1e-6);
        assert!((fit.b - truth.b).abs() < 1e-6);
        assert!((fit.c - truth.c).abs() < 1e-6);
        assert!((fit.predict(1.0) - truth.predict(1.0)).abs() < 1e-6);
    }

    #[test]
    fn flat_data_yields_constant() {
        let fit = ExpRegression::fit(&[(0.2, 7.0), (0.3, 7.0), (0.4, 7.0)]).unwrap();
        assert_eq!(fit.predict(1.0), 7.0);
    }

    #[test]
    fn non_exponential_data_is_rejected() {
        // Alternating signs of differences: no exponential solution.
        assert!(ExpRegression::fit(&[(0.2, 1.0), (0.3, 2.0), (0.4, 1.5)]).is_err());
        // Uneven spacing.
        assert!(ExpRegression::fit(&[(0.2, 1.0), (0.35, 2.0), (0.4, 3.0)]).is_err());
    }

    #[test]
    fn regression_to_full_falls_back_to_line() {
        // Perfectly linear data has ratio exactly 1 → exponential fit
        // rejected → straight line continues it.
        let v = regression_to_full(&[(0.2, 2.0), (0.3, 3.0), (0.4, 4.0)]);
        assert!((v - 10.0).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_handles_vertical_degeneracy() {
        let v = linear_fit(&[(0.5, 2.0), (0.5, 4.0)], 1.0);
        assert_eq!(v, 3.0, "same-x points average");
    }

    #[test]
    fn error_display_is_informative() {
        let err = ExpRegression::fit(&[(0.4, 1.0), (0.3, 2.0), (0.2, 3.0)]).unwrap_err();
        assert!(err.to_string().contains("regression fit failed"));
    }
}
