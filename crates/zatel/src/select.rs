//! Representative-pixel selection (paper step 5, Section III-E):
//! Eq. (1) decides *how many* pixels to trace; section blocks plus a colour
//! distribution decide *which*.

use std::collections::BTreeMap;

use minijson::{FromJson, JsonError, Map, ToJson, Value};
use rtcore::math::Pcg;

use crate::partition::Group;
use crate::quantize::QuantizedHeatmap;

/// How quantized colours are distributed among the selected pixels
/// (Section III-E).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Distribution {
    /// Match the group's own colour distribution.
    Uniform,
    /// Weight colours linearly by warmth `c'_j` — Eq. (2).
    LinTmp,
    /// Weight colours by warmth to the fifth power `c'_j⁵` — Eq. (3).
    ExpTmp,
}

/// Parameters of the selection step.
///
/// The struct is `#[non_exhaustive]`: downstream crates start from
/// [`SelectionOptions::default`] (or
/// [`ZatelOptions::builder`](crate::ZatelOptions::builder)) and assign the
/// fields they need, so adding a selection knob is never a breaking
/// change.
#[derive(Debug, Clone, Copy, PartialEq)]
#[non_exhaustive]
pub struct SelectionOptions {
    /// Section-block width; 32 (the warp size) in the paper.
    pub block_width: u32,
    /// Section-block height; 2 in the paper.
    pub block_height: u32,
    /// Colour distribution method.
    pub distribution: Distribution,
    /// Clamp bounds of Eq. (1); `(0.3, 0.6)` in the paper.
    pub clamp: (f64, f64),
    /// Fixed traced percentage, bypassing Eq. (1) (used by the sweeps of
    /// Figs. 13–16 and Table III).
    pub percent_override: Option<f64>,
    /// Hard upper bound applied after Eq. (1) (the paper's 10 % cap on the
    /// PARK speed run).
    pub percent_cap: Option<f64>,
    /// Seed for the random block choices.
    pub seed: u64,
}

impl Default for SelectionOptions {
    fn default() -> Self {
        SelectionOptions {
            block_width: 32,
            block_height: 2,
            distribution: Distribution::Uniform,
            clamp: (0.3, 0.6),
            percent_override: None,
            percent_cap: None,
            seed: 0x5EEC7,
        }
    }
}

impl ToJson for Distribution {
    fn to_json(&self) -> Value {
        Value::from(match self {
            Distribution::Uniform => "uniform",
            Distribution::LinTmp => "lintmp",
            Distribution::ExpTmp => "exptmp",
        })
    }
}

impl FromJson for Distribution {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        match value.as_str() {
            Some("uniform") => Ok(Distribution::Uniform),
            Some("lintmp") => Ok(Distribution::LinTmp),
            Some("exptmp") => Ok(Distribution::ExpTmp),
            _ => Err(JsonError::conversion(
                "distribution must be \"uniform\", \"lintmp\" or \"exptmp\"",
            )),
        }
    }
}

impl ToJson for SelectionOptions {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("block_width".into(), Value::from(self.block_width));
        m.insert("block_height".into(), Value::from(self.block_height));
        m.insert("distribution".into(), self.distribution.to_json());
        m.insert("clamp_lo".into(), Value::from(self.clamp.0));
        m.insert("clamp_hi".into(), Value::from(self.clamp.1));
        m.insert(
            "percent_override".into(),
            self.percent_override.map_or(Value::Null, Value::from),
        );
        m.insert(
            "percent_cap".into(),
            self.percent_cap.map_or(Value::Null, Value::from),
        );
        m.insert("seed".into(), Value::from(self.seed));
        Value::Object(m)
    }
}

impl FromJson for SelectionOptions {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        const TY: &str = "SelectionOptions";
        let dim = |name: &str| -> Result<u32, JsonError> {
            value
                .get(name)
                .and_then(Value::as_u64)
                .and_then(|n| u32::try_from(n).ok())
                .ok_or_else(|| JsonError::missing_field(TY, name))
        };
        let num = |name: &str| -> Result<f64, JsonError> {
            value
                .get(name)
                .and_then(Value::as_f64)
                .ok_or_else(|| JsonError::missing_field(TY, name))
        };
        let optional = |name: &str| -> Result<Option<f64>, JsonError> {
            match value.get(name) {
                None | Some(Value::Null) => Ok(None),
                Some(v) => v
                    .as_f64()
                    .map(Some)
                    .ok_or_else(|| JsonError::missing_field(TY, name)),
            }
        };
        Ok(SelectionOptions {
            block_width: dim("block_width")?,
            block_height: dim("block_height")?,
            distribution: Distribution::from_json(
                value
                    .get("distribution")
                    .ok_or_else(|| JsonError::missing_field(TY, "distribution"))?,
            )?,
            clamp: (num("clamp_lo")?, num("clamp_hi")?),
            percent_override: optional("percent_override")?,
            percent_cap: optional("percent_cap")?,
            seed: value
                .get("seed")
                .and_then(Value::as_u64)
                .ok_or_else(|| JsonError::missing_field(TY, "seed"))?,
        })
    }
}

/// Result of selecting a group's representative pixels.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// One flag per group pixel (in group order): `true` = trace it.
    pub mask: Vec<bool>,
    /// The Eq. (1) target percentage (after clamping/capping).
    pub target_percent: f64,
    /// The fraction actually selected (block granularity makes it differ
    /// slightly from the target).
    pub fraction: f64,
}

/// Eq. (1) before clamping: the mean coolness of the group's pixels,
/// `P = (1/M) Σ c_i`.
pub fn mean_coolness(group: &Group, quantized: &QuantizedHeatmap) -> f64 {
    assert!(!group.pixels.is_empty(), "group must not be empty");
    let sum: f64 = group
        .pixels
        .iter()
        .map(|p| quantized.coolness(p.x, p.y) as f64)
        .sum();
    sum / group.pixels.len() as f64
}

/// Selects the representative pixels of `group` according to `options`.
///
/// # Panics
///
/// Panics if the group is empty, block dimensions are zero, or percentages
/// are outside `(0, 1]`.
pub fn select_pixels(
    group: &Group,
    quantized: &QuantizedHeatmap,
    options: &SelectionOptions,
) -> Selection {
    assert!(!group.pixels.is_empty(), "group must not be empty");
    assert!(
        options.block_width > 0 && options.block_height > 0,
        "section-block dimensions must be positive"
    );
    let m = group.pixels.len();

    // --- Step 0: how many pixels (Eq. 1) ------------------------------
    let mut percent = match options.percent_override {
        Some(p) => {
            assert!(
                p > 0.0 && p <= 1.0,
                "percent override must be in (0,1], got {p}"
            );
            p
        }
        None => mean_coolness(group, quantized).clamp(options.clamp.0, options.clamp.1),
    };
    if let Some(cap) = options.percent_cap {
        assert!(
            cap > 0.0 && cap <= 1.0,
            "percent cap must be in (0,1], got {cap}"
        );
        percent = percent.min(cap);
    }
    let target = ((percent * m as f64).round() as usize).clamp(1, m);

    // --- Step 1: divide the group into section blocks ------------------
    // Blocks are keyed by image-space tile so the fine-grained chunks map
    // 1:1 onto blocks when the sizes coincide. The tile map is a BTreeMap
    // and blocks are drained in raster (row, column) order, so block
    // indices — and with them the RNG's shuffle candidates — are canonical
    // regardless of the order the group lists its pixels in.
    let mut tiles: BTreeMap<(u32, u32), Vec<usize>> = BTreeMap::new();
    for (i, p) in group.pixels.iter().enumerate() {
        let tile = (p.y / options.block_height, p.x / options.block_width);
        tiles.entry(tile).or_default().push(i);
    }
    let blocks: Vec<Vec<usize>> = tiles.into_values().collect();

    // Dominant quantized colour per block.
    let block_color: Vec<u16> = blocks
        .iter()
        .map(|ixs| {
            let mut counts: BTreeMap<u16, u32> = BTreeMap::new();
            for &i in ixs {
                let p = group.pixels[i];
                *counts.entry(quantized.cluster(p.x, p.y)).or_insert(0) += 1;
            }
            counts
                .into_iter()
                .max_by_key(|&(id, n)| (n, std::cmp::Reverse(id)))
                .map(|(id, _)| id)
                // zatel-lint: allow(panic-hygiene, reason = "every tile entry is created with at least one pixel index")
                .expect("blocks are non-empty")
        })
        .collect();

    // --- Step 2: per-colour quotas (uniform / Eq. 2 / Eq. 3) -----------
    // Sorted keys keep the f64 weight summation order canonical; with a
    // hash map the non-associative sum could change across processes.
    let mut color_pixels: BTreeMap<u16, f64> = BTreeMap::new();
    for p in &group.pixels {
        *color_pixels
            .entry(quantized.cluster(p.x, p.y))
            .or_insert(0.0) += 1.0;
    }
    let weight = |id: u16, count: f64| -> f64 {
        let warmth = 1.0 - quantized.cluster_coolness(id) as f64;
        match options.distribution {
            Distribution::Uniform => count,
            Distribution::LinTmp => count * warmth,
            Distribution::ExpTmp => count * warmth.powi(5),
        }
    };
    let total_weight: f64 = color_pixels.iter().map(|(&id, &n)| weight(id, n)).sum();
    let mut quotas: Vec<(u16, usize)> = color_pixels
        .iter()
        .map(|(&id, &n)| {
            let share = if total_weight > 0.0 {
                weight(id, n) / total_weight
            } else {
                0.0
            };
            (id, (share * target as f64).round() as usize)
        })
        .collect();
    // Deterministic order: largest quota first, colour id as tiebreak.
    quotas.sort_by_key(|&(id, q)| (std::cmp::Reverse(q), id));

    // --- Step 3: pick blocks per colour, then random fill ---------------
    let mut rng = Pcg::new(options.seed ^ (group.index as u64).wrapping_mul(0x9E37_79B9));
    let mut selected_block = vec![false; blocks.len()];
    let mut selected_pixels = 0usize;

    for &(color, quota) in &quotas {
        if quota == 0 {
            continue;
        }
        let mut candidates: Vec<usize> = (0..blocks.len())
            .filter(|&b| block_color[b] == color && !selected_block[b])
            .collect();
        rng.shuffle(&mut candidates);
        let mut got = 0usize;
        for b in candidates {
            if got >= quota || selected_pixels >= target {
                break;
            }
            selected_block[b] = true;
            got += blocks[b].len();
            selected_pixels += blocks[b].len();
        }
    }

    // Not enough pixels with the desired colours: random other blocks.
    if selected_pixels < target {
        let mut rest: Vec<usize> = (0..blocks.len()).filter(|&b| !selected_block[b]).collect();
        rng.shuffle(&mut rest);
        for b in rest {
            if selected_pixels >= target {
                break;
            }
            selected_block[b] = true;
            selected_pixels += blocks[b].len();
        }
    }

    let mut mask = vec![false; m];
    for (b, ixs) in blocks.iter().enumerate() {
        if selected_block[b] {
            for &i in ixs {
                mask[i] = true;
            }
        }
    }
    let fraction = selected_pixels as f64 / m as f64;
    Selection {
        mask,
        target_percent: percent,
        fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heatmap::Heatmap;
    use crate::partition::{divide, DivisionMethod};
    use rtcore::tracer::CostMap;

    /// Synthetic quantized map: left half cold, right half hot.
    fn split_map(width: u32, height: u32) -> QuantizedHeatmap {
        let mut costs = CostMap::new(width, height);
        for y in 0..height {
            for x in 0..width {
                costs.set(x, y, if x < width / 2 { 5 } else { 95 });
            }
        }
        QuantizedHeatmap::quantize(&Heatmap::from_costs(&costs), 4, 3)
    }

    fn one_group(width: u32, height: u32) -> Group {
        divide(width, height, 1, DivisionMethod::default_fine())
            .into_iter()
            .next()
            .unwrap()
    }

    #[test]
    fn override_percent_is_respected() {
        let q = split_map(64, 32);
        let g = one_group(64, 32);
        let sel = select_pixels(
            &g,
            &q,
            &SelectionOptions {
                percent_override: Some(0.25),
                ..Default::default()
            },
        );
        assert!(
            (sel.fraction - 0.25).abs() < 0.08,
            "fraction {}",
            sel.fraction
        );
        assert_eq!(sel.target_percent, 0.25);
        assert_eq!(sel.mask.len(), g.pixels.len());
        let count = sel.mask.iter().filter(|&&b| b).count();
        assert!((count as f64 / g.pixels.len() as f64 - sel.fraction).abs() < 1e-12);
    }

    #[test]
    fn eq1_clamps_into_bounds() {
        let q = split_map(64, 32);
        let g = one_group(64, 32);
        let sel = select_pixels(&g, &q, &SelectionOptions::default());
        assert!(sel.target_percent >= 0.3 && sel.target_percent <= 0.6);
    }

    #[test]
    fn cap_limits_percentage() {
        let q = split_map(64, 32);
        let g = one_group(64, 32);
        let sel = select_pixels(
            &g,
            &q,
            &SelectionOptions {
                percent_cap: Some(0.1),
                ..Default::default()
            },
        );
        assert!(sel.target_percent <= 0.1 + 1e-12);
        assert!(
            sel.fraction <= 0.15,
            "block rounding should stay near the cap"
        );
    }

    #[test]
    fn mean_coolness_between_extremes() {
        let q = split_map(64, 32);
        let g = one_group(64, 32);
        let p = mean_coolness(&g, &q);
        assert!(
            p > 0.1 && p < 0.9,
            "half cold half hot → mid coolness, got {p}"
        );
    }

    #[test]
    fn exptmp_prefers_hot_pixels() {
        let q = split_map(64, 32);
        let g = one_group(64, 32);
        let frac_hot = |d: Distribution| {
            let sel = select_pixels(
                &g,
                &q,
                &SelectionOptions {
                    distribution: d,
                    percent_override: Some(0.25),
                    ..Default::default()
                },
            );
            let hot: usize = g
                .pixels
                .iter()
                .zip(&sel.mask)
                .filter(|(p, &m)| m && p.x >= 32)
                .count();
            let total = sel.mask.iter().filter(|&&m| m).count();
            hot as f64 / total as f64
        };
        let uni = frac_hot(Distribution::Uniform);
        let exp = frac_hot(Distribution::ExpTmp);
        assert!(
            exp > uni + 0.2,
            "exptmp ({exp:.2}) must concentrate on the hot half vs uniform ({uni:.2})"
        );
        assert!(
            exp > 0.9,
            "nearly all exptmp picks should be hot, got {exp}"
        );
    }

    #[test]
    fn uniform_matches_group_distribution() {
        let q = split_map(64, 32);
        let g = one_group(64, 32);
        let sel = select_pixels(
            &g,
            &q,
            &SelectionOptions {
                percent_override: Some(0.4),
                ..Default::default()
            },
        );
        let hot: usize = g
            .pixels
            .iter()
            .zip(&sel.mask)
            .filter(|(p, &m)| m && p.x >= 32)
            .count();
        let total = sel.mask.iter().filter(|&&m| m).count();
        let share = hot as f64 / total as f64;
        assert!(
            (share - 0.5).abs() < 0.2,
            "uniform should pick ~half hot, got {share}"
        );
    }

    #[test]
    fn selection_is_block_granular() {
        let q = split_map(64, 32);
        let g = one_group(64, 32);
        let opts = SelectionOptions {
            percent_override: Some(0.3),
            ..Default::default()
        };
        let sel = select_pixels(&g, &q, &opts);
        // Every selected pixel's 32×2 block must be fully selected.
        let mut block_state: BTreeMap<(u32, u32), bool> = BTreeMap::new();
        for (p, &m) in g.pixels.iter().zip(&sel.mask) {
            let key = (p.x / 32, p.y / 2);
            match block_state.entry(key) {
                std::collections::btree_map::Entry::Occupied(e) => {
                    assert_eq!(*e.get(), m, "block {key:?} partially selected");
                }
                std::collections::btree_map::Entry::Vacant(e) => {
                    e.insert(m);
                }
            }
        }
    }

    #[test]
    fn selection_is_deterministic_per_seed() {
        let q = split_map(64, 32);
        let g = one_group(64, 32);
        let opts = SelectionOptions {
            percent_override: Some(0.3),
            ..Default::default()
        };
        assert_eq!(select_pixels(&g, &q, &opts), select_pixels(&g, &q, &opts));
        let other = SelectionOptions { seed: 999, ..opts };
        // Different seed → (almost surely) different blocks.
        assert_ne!(
            select_pixels(&g, &q, &opts).mask,
            select_pixels(&g, &q, &other).mask
        );
    }

    #[test]
    fn always_selects_at_least_one_pixel() {
        let q = split_map(32, 2);
        let g = one_group(32, 2);
        let sel = select_pixels(
            &g,
            &q,
            &SelectionOptions {
                percent_override: Some(0.001),
                ..Default::default()
            },
        );
        assert!(sel.mask.iter().any(|&b| b));
    }

    #[test]
    #[should_panic(expected = "percent override")]
    fn bad_override_panics() {
        let q = split_map(32, 2);
        let g = one_group(32, 2);
        select_pixels(
            &g,
            &q,
            &SelectionOptions {
                percent_override: Some(1.5),
                ..Default::default()
            },
        );
    }
}
