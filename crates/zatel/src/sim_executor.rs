//! Shared parallel-execution layer for simulation jobs.
//!
//! Every place the workspace fans simulation work out across host threads
//! — per-group simulation in the pipeline, the Fig. 13–20 bench sweeps,
//! the CLI's `predict` — goes through [`SimExecutor`] instead of ad-hoc
//! `std::thread` plumbing. The executor is:
//!
//! * **deterministic** — results come back in input order and each job is
//!   a pure function of `(index, item)`, so the output is bit-identical
//!   regardless of worker count or scheduling;
//! * **seeded** — a master seed deterministically derives a per-job seed
//!   ([`SimExecutor::job_seed`]) for jobs that need private randomness;
//! * **scoped** — workers are scoped threads, so jobs may borrow from the
//!   caller's stack (scenes, configs, heatmaps) without `Arc`.
//!
//! ```
//! use zatel::sim_executor::SimExecutor;
//!
//! let exec = SimExecutor::new(4);
//! let squares = exec.map(&[1u64, 2, 3, 4, 5], |_, &x| x * x);
//! assert_eq!(squares, vec![1, 4, 9, 16, 25]);
//! ```

use std::num::NonZeroUsize;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// When and where one [`SimExecutor::map_timed`] job ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JobTiming {
    /// Input index of the job.
    pub index: usize,
    /// Worker thread the job ran on (0 on the serial path).
    pub worker: usize,
    /// Offset of the job's start from the `map_timed` call.
    pub start: Duration,
    /// Wall-clock time the job took.
    pub wall: Duration,
}

/// A deterministic, seeded, scoped-thread job pool.
///
/// `jobs` is the maximum number of worker threads; the executor never
/// spawns more workers than there are items, and a single-job executor
/// runs everything inline on the calling thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimExecutor {
    jobs: usize,
    seed: u64,
}

impl SimExecutor {
    /// Creates an executor with `jobs` workers and seed 0. A `jobs` of
    /// zero is clamped to one (serial).
    pub fn new(jobs: usize) -> Self {
        SimExecutor {
            jobs: jobs.max(1),
            seed: 0,
        }
    }

    /// Creates an executor with `jobs` workers deriving per-job seeds from
    /// `seed`.
    pub fn seeded(jobs: usize, seed: u64) -> Self {
        SimExecutor {
            jobs: jobs.max(1),
            seed,
        }
    }

    /// A serial executor: everything runs inline on the caller's thread.
    pub fn serial() -> Self {
        SimExecutor::new(1)
    }

    /// An executor sized to the host's available parallelism.
    pub fn host() -> Self {
        SimExecutor::new(available_jobs())
    }

    /// The configured worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// The master seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The deterministic seed for job `index`: a splitmix64 step of the
    /// master seed offset by the index, so neighbouring jobs get
    /// well-separated streams.
    pub fn job_seed(&self, index: usize) -> u64 {
        splitmix64(
            self.seed
                .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(index as u64 + 1)),
        )
    }

    /// Applies `f` to every item, in parallel across up to
    /// [`SimExecutor::jobs`] scoped worker threads, and returns the results
    /// **in input order**.
    ///
    /// `f` receives `(index, &item)`. Work is distributed dynamically (an
    /// atomic cursor), so uneven job lengths load-balance; determinism is
    /// preserved because each result lands in its input slot.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job.
    pub fn map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        let workers = self.jobs.min(items.len());
        if workers <= 1 {
            return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
        }
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<R>> = Vec::new();
        slots.resize_with(items.len(), || None);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for _ in 0..workers {
                handles.push(scope.spawn(|| {
                    let mut done: Vec<(usize, R)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        done.push((i, f(i, &items[i])));
                    }
                    done
                }));
            }
            for handle in handles {
                // zatel-lint: allow(panic-hygiene, reason = "re-raises a worker panic on the caller; swallowing it would hand back partial results")
                for (i, r) in handle.join().expect("simulation job panicked") {
                    slots[i] = Some(r);
                }
            }
        });
        slots
            .into_iter()
            // zatel-lint: allow(panic-hygiene, reason = "the strided job loop assigns every index exactly once before join returns")
            .map(|r| r.expect("every job index was executed"))
            .collect()
    }

    /// Like [`SimExecutor::map`], additionally measuring when and on which
    /// worker each job ran. Timings are returned in input order with
    /// offsets relative to the `map_timed` call, ready to be recorded as
    /// per-job spans.
    ///
    /// The result vector is identical to what [`SimExecutor::map`] returns
    /// — timing is observation only.
    ///
    /// # Panics
    ///
    /// Propagates a panic from any job.
    pub fn map_timed<T, R, F>(&self, items: &[T], f: F) -> (Vec<R>, Vec<JobTiming>)
    where
        T: Sync,
        R: Send,
        F: Fn(usize, &T) -> R + Sync,
    {
        // zatel-lint: allow(wall-clock, reason = "observation-only job spans: the result vector is bit-identical with or without timing; offsets feed span sheets and never flow into predictions, pinned by the map/map_timed identity test")
        let epoch = Instant::now();
        let workers = self.jobs.min(items.len());
        if workers <= 1 {
            let mut results = Vec::with_capacity(items.len());
            let mut timings = Vec::with_capacity(items.len());
            for (i, item) in items.iter().enumerate() {
                let start = epoch.elapsed();
                results.push(f(i, item));
                timings.push(JobTiming {
                    index: i,
                    worker: 0,
                    start,
                    wall: epoch.elapsed().saturating_sub(start),
                });
            }
            return (results, timings);
        }
        let cursor = AtomicUsize::new(0);
        let mut slots: Vec<Option<(R, JobTiming)>> = Vec::new();
        slots.resize_with(items.len(), || None);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for worker in 0..workers {
                let cursor = &cursor;
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut done: Vec<(usize, R, JobTiming)> = Vec::new();
                    loop {
                        let i = cursor.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        let start = epoch.elapsed();
                        let r = f(i, &items[i]);
                        let timing = JobTiming {
                            index: i,
                            worker,
                            start,
                            wall: epoch.elapsed().saturating_sub(start),
                        };
                        done.push((i, r, timing));
                    }
                    done
                }));
            }
            for handle in handles {
                // zatel-lint: allow(panic-hygiene, reason = "re-raises a worker panic on the caller; swallowing it would hand back partial results")
                for (i, r, t) in handle.join().expect("simulation job panicked") {
                    slots[i] = Some((r, t));
                }
            }
        });
        slots
            .into_iter()
            // zatel-lint: allow(panic-hygiene, reason = "the strided job loop assigns every index exactly once before join returns")
            .map(|s| s.expect("every job index was executed"))
            .unzip()
    }
}

impl Default for SimExecutor {
    fn default() -> Self {
        SimExecutor::host()
    }
}

/// The host's available parallelism (1 if it cannot be determined).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
}

/// The splitmix64 mixing function: a single step of Vigna's generator,
/// used to turn correlated seed inputs into well-distributed outputs.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_jobs_clamps_to_serial() {
        assert_eq!(SimExecutor::new(0).jobs(), 1);
    }

    #[test]
    fn map_preserves_input_order() {
        let exec = SimExecutor::new(8);
        let items: Vec<u64> = (0..100).collect();
        let out = exec.map(&items, |i, &x| {
            // Uneven job lengths: later items finish first.
            std::thread::sleep(std::time::Duration::from_micros(100 - x));
            (i as u64) * 10 + x % 10
        });
        let expect: Vec<u64> = (0..100u64).map(|i| i * 10 + i % 10).collect();
        assert_eq!(out, expect);
    }

    #[test]
    fn serial_and_parallel_agree() {
        let items: Vec<u64> = (0..50).collect();
        let f = |i: usize, x: &u64| (i as u64).wrapping_mul(31).wrapping_add(*x);
        let serial = SimExecutor::serial().map(&items, f);
        let parallel = SimExecutor::new(7).map(&items, f);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn jobs_may_borrow_from_the_stack() {
        let shared = [10u64, 20, 30];
        let exec = SimExecutor::new(2);
        let out = exec.map(&[0usize, 1, 2], |_, &i| shared[i] + 1);
        assert_eq!(out, vec![11, 21, 31]);
    }

    #[test]
    fn job_seeds_are_deterministic_and_distinct() {
        let a = SimExecutor::seeded(4, 42);
        let b = SimExecutor::seeded(8, 42);
        assert_eq!(
            a.job_seed(3),
            b.job_seed(3),
            "seed depends on index, not worker count"
        );
        let seeds: Vec<u64> = (0..32).map(|i| a.job_seed(i)).collect();
        let mut unique = seeds.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), seeds.len(), "no collisions in a small window");
        assert_ne!(a.job_seed(0), SimExecutor::seeded(4, 43).job_seed(0));
    }

    #[test]
    fn map_timed_returns_results_and_orderly_timings() {
        let items: Vec<u64> = (0..20).collect();
        let f = |i: usize, x: &u64| (i as u64) + x;
        for jobs in [1usize, 4] {
            let exec = SimExecutor::new(jobs);
            let (results, timings) = exec.map_timed(&items, f);
            assert_eq!(results, exec.map(&items, f), "same results as map");
            assert_eq!(timings.len(), items.len());
            for (i, t) in timings.iter().enumerate() {
                assert_eq!(t.index, i, "timings come back in input order");
                assert!(t.worker < jobs.max(1));
            }
        }
    }

    #[test]
    fn map_timed_serial_jobs_do_not_overlap() {
        let exec = SimExecutor::serial();
        let (_, timings) = exec.map_timed(&[1u64, 2, 3], |_, _| {
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        for pair in timings.windows(2) {
            assert!(
                pair[1].start >= pair[0].start + pair[0].wall,
                "serial jobs run back to back: {timings:?}"
            );
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out: Vec<u64> = SimExecutor::new(4).map(&[] as &[u64], |_, &x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn panics_propagate() {
        let result = std::panic::catch_unwind(|| {
            SimExecutor::new(2).map(&[1, 2, 3], |_, &x| {
                if x == 2 {
                    panic!("boom");
                }
                x
            })
        });
        assert!(result.is_err());
    }
}
