//! Colour quantization of the heatmap with K-means clustering
//! (paper step 2, Fig. 4): merges similar colours into distinct groups to
//! eliminate noise.

use rtcore::image::Image;
use rtcore::math::{Pcg, Vec3};

use crate::heatmap::{coolness_of, heat_color, Heatmap};

/// Maximum K-means refinement iterations.
const MAX_ITERS: usize = 32;

/// A heatmap whose colours have been merged into `k` quantized clusters.
///
/// Each pixel carries a cluster id; each cluster has a centroid colour and
/// a *coolness* value `c_i ∈ [0, 1]` derived from the centroid's shifted
/// hue (0 = hot, 1 = cold), exactly the quantity Eqs. (1)–(3) consume.
///
/// # Examples
///
/// ```
/// use rtcore::scenes::SceneId;
/// use rtcore::tracer::TraceConfig;
/// use zatel::heatmap::Heatmap;
/// use zatel::quantize::QuantizedHeatmap;
///
/// let scene = SceneId::Sprng.build(1);
/// let cfg = TraceConfig { samples_per_pixel: 1, max_bounces: 2, seed: 1 };
/// let hm = Heatmap::profile(&scene, 16, 16, &cfg);
/// let q = QuantizedHeatmap::quantize(&hm, 4, 7);
/// assert!(q.cluster_count() <= 4);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedHeatmap {
    width: u32,
    height: u32,
    /// Per-pixel cluster index, row-major.
    clusters: Vec<u16>,
    /// Centroid colour per cluster.
    centroids: Vec<Vec3>,
    /// Coolness `c_i` per cluster.
    coolness: Vec<f32>,
}

impl QuantizedHeatmap {
    /// Quantizes `heatmap` into at most `k` colours with seeded K-means.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn quantize(heatmap: &Heatmap, k: usize, seed: u64) -> Self {
        assert!(k > 0, "need at least one cluster");
        let colors: Vec<Vec3> = heatmap.values().iter().map(|&t| heat_color(t)).collect();
        let (clusters, centroids) = kmeans(&colors, k, seed);
        let coolness = centroids.iter().map(|&c| coolness_of(c)).collect();
        QuantizedHeatmap {
            width: heatmap.width(),
            height: heatmap.height(),
            clusters,
            centroids,
            coolness,
        }
    }

    /// Reassembles a quantized heatmap from raw parts (the on-disk
    /// artifact cache). Callers must have validated the invariants
    /// (cluster ids in range, one coolness per centroid).
    pub(crate) fn from_raw(
        width: u32,
        height: u32,
        clusters: Vec<u16>,
        centroids: Vec<Vec3>,
        coolness: Vec<f32>,
    ) -> Self {
        assert_eq!(clusters.len(), (width as u64 * height as u64) as usize);
        assert_eq!(centroids.len(), coolness.len());
        QuantizedHeatmap {
            width,
            height,
            clusters,
            centroids,
            coolness,
        }
    }

    /// Per-pixel cluster ids, row-major (the on-disk artifact cache).
    pub(crate) fn raw_clusters(&self) -> &[u16] {
        &self.clusters
    }

    /// Centroid colours by cluster id (the on-disk artifact cache).
    pub(crate) fn raw_centroids(&self) -> &[Vec3] {
        &self.centroids
    }

    /// Coolness values by cluster id (the on-disk artifact cache).
    pub(crate) fn raw_coolness(&self) -> &[f32] {
        &self.coolness
    }

    /// Content fingerprint over dimensions, assignments, centroid and
    /// coolness bit patterns; keys derived artifacts in the stage cache.
    pub fn fingerprint(&self) -> u64 {
        let mut h = rtcore::fingerprint::Fnv64::new();
        h.write_str("zatel-quantized-v1");
        h.write_u32(self.width).write_u32(self.height);
        for &c in &self.clusters {
            h.write_u32(c as u32);
        }
        for c in &self.centroids {
            h.write_f32(c.x).write_f32(c.y).write_f32(c.z);
        }
        for &c in &self.coolness {
            h.write_f32(c);
        }
        h.finish()
    }

    /// Width in pixels.
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Height in pixels.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Number of distinct clusters actually produced.
    pub fn cluster_count(&self) -> usize {
        self.centroids.len()
    }

    /// Cluster id of pixel `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn cluster(&self, x: u32, y: u32) -> u16 {
        assert!(x < self.width && y < self.height, "pixel out of bounds");
        self.clusters[(y * self.width + x) as usize]
    }

    /// Quantized colour of pixel `(x, y)`.
    pub fn color(&self, x: u32, y: u32) -> Vec3 {
        self.centroids[self.cluster(x, y) as usize]
    }

    /// Coolness `c_i` of pixel `(x, y)` (its cluster's coolness).
    pub fn coolness(&self, x: u32, y: u32) -> f32 {
        self.coolness[self.cluster(x, y) as usize]
    }

    /// Coolness of cluster `id`.
    pub fn cluster_coolness(&self, id: u16) -> f32 {
        self.coolness[id as usize]
    }

    /// Centroid colour of cluster `id`.
    pub fn cluster_color(&self, id: u16) -> Vec3 {
        self.centroids[id as usize]
    }

    /// Renders the quantized map to an image (the paper's Fig. 4 right).
    pub fn to_image(&self) -> Image {
        let mut img = Image::new(self.width, self.height);
        for y in 0..self.height {
            for x in 0..self.width {
                let c = self.color(x, y);
                img.set(x, y, c.hadamard(c));
            }
        }
        img
    }
}

/// Plain K-means over RGB colours with deterministic spread-out
/// initialization (greedy farthest-point, a deterministic k-means++).
/// Returns per-point cluster assignments and the surviving centroids.
pub fn kmeans(points: &[Vec3], k: usize, seed: u64) -> (Vec<u16>, Vec<Vec3>) {
    assert!(k > 0, "need at least one cluster");
    if points.is_empty() {
        return (Vec::new(), vec![Vec3::ZERO]);
    }
    let k = k.min(points.len());
    let mut rng = Pcg::new(seed);

    // Farthest-point initialization from a random start.
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.next_below(points.len())]);
    while centroids.len() < k {
        let (best, _) = points
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let d = centroids
                    .iter()
                    .map(|c| (*p - *c).length_squared())
                    .fold(f32::INFINITY, f32::min);
                (i, d)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            // zatel-lint: allow(panic-hygiene, reason = "one point per heatmap pixel and the heatmap is non-empty by construction")
            .expect("non-empty points");
        centroids.push(points[best]);
    }

    let mut assignment = vec![0u16; points.len()];
    for _ in 0..MAX_ITERS {
        let mut changed = false;
        for (i, p) in points.iter().enumerate() {
            let (best, _) = centroids
                .iter()
                .enumerate()
                .map(|(j, c)| (j, (*p - *c).length_squared()))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                // zatel-lint: allow(panic-hygiene, reason = "kmeans asserts k > 0 on entry, so centroids is never empty")
                .expect("k >= 1");
            if assignment[i] != best as u16 {
                assignment[i] = best as u16;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        let mut sums = vec![Vec3::ZERO; centroids.len()];
        let mut counts = vec![0u32; centroids.len()];
        for (i, p) in points.iter().enumerate() {
            sums[assignment[i] as usize] += *p;
            counts[assignment[i] as usize] += 1;
        }
        for (j, c) in centroids.iter_mut().enumerate() {
            if counts[j] > 0 {
                *c = sums[j] / counts[j] as f32;
            }
        }
    }

    // Drop empty clusters and compact ids.
    let mut used: Vec<bool> = vec![false; centroids.len()];
    for &a in &assignment {
        used[a as usize] = true;
    }
    let mut remap = vec![0u16; centroids.len()];
    let mut kept = Vec::new();
    for (j, &u) in used.iter().enumerate() {
        if u {
            remap[j] = kept.len() as u16;
            kept.push(centroids[j]);
        }
    }
    for a in &mut assignment {
        *a = remap[*a as usize];
    }
    (assignment, kept)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtcore::scenes::SceneId;
    use rtcore::tracer::TraceConfig;

    #[test]
    fn kmeans_separates_obvious_clusters() {
        let mut pts = Vec::new();
        for i in 0..50 {
            let j = i as f32 * 0.001;
            pts.push(Vec3::new(0.0 + j, 0.0, 0.0));
            pts.push(Vec3::new(1.0 - j, 1.0, 1.0));
        }
        let (assign, cents) = kmeans(&pts, 2, 1);
        assert_eq!(cents.len(), 2);
        // All even-index points share a cluster, odd-index the other.
        let a0 = assign[0];
        assert!(assign.iter().step_by(2).all(|&a| a == a0));
        assert!(assign.iter().skip(1).step_by(2).all(|&a| a != a0));
    }

    #[test]
    fn kmeans_is_deterministic() {
        let pts: Vec<Vec3> = (0..100).map(|i| heat_color(i as f32 / 99.0)).collect();
        let (a1, c1) = kmeans(&pts, 5, 42);
        let (a2, c2) = kmeans(&pts, 5, 42);
        assert_eq!(a1, a2);
        assert_eq!(c1, c2);
    }

    #[test]
    fn kmeans_caps_k_at_point_count() {
        let pts = vec![Vec3::ZERO, Vec3::ONE];
        let (assign, cents) = kmeans(&pts, 10, 3);
        assert!(cents.len() <= 2);
        assert_eq!(assign.len(), 2);
    }

    #[test]
    fn quantized_map_preserves_warm_cold_ordering() {
        // Synthetic heatmap: left half cold (0.05), right half hot (0.95).
        let mut costs = rtcore::tracer::CostMap::new(16, 4);
        for y in 0..4 {
            for x in 0..16 {
                costs.set(x, y, if x < 8 { 5 } else { 95 });
            }
        }
        let hm = Heatmap::from_costs(&costs);
        let q = QuantizedHeatmap::quantize(&hm, 4, 9);
        let cold = q.coolness(0, 0);
        let hot = q.coolness(15, 0);
        assert!(
            cold > hot,
            "cold side must have higher coolness ({cold} vs {hot})"
        );
        assert_ne!(q.cluster(0, 0), q.cluster(15, 0));
    }

    #[test]
    fn quantization_reduces_distinct_colors() {
        let scene = SceneId::Wknd.build(1);
        let cfg = TraceConfig {
            samples_per_pixel: 1,
            max_bounces: 2,
            seed: 1,
        };
        let hm = Heatmap::profile(&scene, 24, 24, &cfg);
        let q = QuantizedHeatmap::quantize(&hm, 6, 5);
        assert!(q.cluster_count() >= 2, "WKND has warm and cold regions");
        assert!(q.cluster_count() <= 6);
        // Every pixel's cluster id is valid.
        for y in 0..24 {
            for x in 0..24 {
                assert!((q.cluster(x, y) as usize) < q.cluster_count());
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn zero_k_panics() {
        kmeans(&[Vec3::ZERO], 0, 1);
    }
}
