//! # zatel-rtworkload — ray tracing as a GPU workload
//!
//! Bridges the functional ray tracer of `zatel-rtcore` and the cycle-level
//! timing model of `zatel-gpusim`: every pixel becomes one GPU thread whose
//! [`gpusim::ThreadProgram`] is a lazy state machine over the *same*
//! [`rtcore::bvh::Traversal`] the functional tracer uses, emitting one
//! abstract op per BVH node fetch, primitive test and shading step.
//!
//! Because both sides consume the identical traversal state machine and the
//! identical per-pixel RNG stream, the timing simulation executes exactly
//! the memory accesses and ALU work the functional render performs — there
//! is no trace file and no replay skew.
//!
//! Pixel filtering (the paper's injected `filter_shader`, Listing 1) is
//! modeled by [`RtWorkload::with_selection`]: deselected threads run a
//! two-instruction exit program, so they are launched but contribute
//! negligible work, matching the paper's observation.

#![warn(missing_docs)]

use std::collections::VecDeque;

use gpusim::{Op, ThreadProgram, Workload};
use rtcore::bvh::{Traversal, TraversalStep};
use rtcore::material::Surface;
use rtcore::math::{cosine_hemisphere, uniform_sphere, Pcg, Ray, Vec3, RAY_EPSILON};
use rtcore::scene::Scene;
use rtcore::tracer::TraceConfig;

/// A pixel coordinate on the image plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pixel {
    /// Column (0 = left).
    pub x: u32,
    /// Row (0 = top).
    pub y: u32,
}

impl Pixel {
    /// Creates a pixel coordinate.
    pub fn new(x: u32, y: u32) -> Self {
        Pixel { x, y }
    }
}

/// Byte-address layout of the simulated GPU's global memory.
///
/// BVH nodes, primitives, materials and the framebuffer live in disjoint
/// regions with realistic strides, so cache behaviour (line reuse, set
/// conflicts, partition interleaving) reflects real data layouts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressMap {
    /// Base address of the flattened BVH node array.
    pub node_base: u64,
    /// Bytes per BVH node.
    pub node_stride: u64,
    /// Base address of the primitive array.
    pub prim_base: u64,
    /// Bytes per primitive.
    pub prim_stride: u64,
    /// Base address of the material table.
    pub material_base: u64,
    /// Bytes per material record.
    pub material_stride: u64,
    /// Base address of the framebuffer.
    pub framebuffer_base: u64,
    /// Bytes per pixel in the framebuffer.
    pub pixel_stride: u64,
}

impl Default for AddressMap {
    fn default() -> Self {
        AddressMap {
            node_base: 0x1000_0000,
            node_stride: 32,
            prim_base: 0x4000_0000,
            prim_stride: 64,
            material_base: 0x7000_0000,
            material_stride: 32,
            framebuffer_base: 0x8000_0000,
            pixel_stride: 16,
        }
    }
}

impl AddressMap {
    /// Address of BVH node `index`.
    pub fn node_addr(&self, index: u32) -> u64 {
        self.node_base + index as u64 * self.node_stride
    }

    /// Address of primitive `index`.
    pub fn prim_addr(&self, index: u32) -> u64 {
        self.prim_base + index as u64 * self.prim_stride
    }

    /// Address of material `index`.
    pub fn material_addr(&self, index: u32) -> u64 {
        self.material_base + index as u64 * self.material_stride
    }

    /// Framebuffer address of pixel `(x, y)` in a `width`-wide image.
    pub fn pixel_addr(&self, x: u32, y: u32, width: u32) -> u64 {
        self.framebuffer_base + (y as u64 * width as u64 + x as u64) * self.pixel_stride
    }
}

/// A ray-tracing workload: a list of pixels to launch (in thread/warp
/// order) over a scene, with an optional traced-pixel selection.
///
/// Threads `[32k, 32k+32)` of the pixel list form warp `k`, so the caller
/// controls warp composition by ordering the list — which is exactly the
/// lever Zatel's fine/coarse division and 32-wide section blocks pull.
///
/// # Examples
///
/// ```
/// use gpusim::{GpuConfig, Simulator};
/// use rtcore::scenes::SceneId;
/// use rtcore::tracer::TraceConfig;
/// use rtworkload::RtWorkload;
///
/// let scene = SceneId::Sprng.build(1);
/// let cfg = TraceConfig { samples_per_pixel: 1, max_bounces: 2, seed: 1 };
/// let workload = RtWorkload::full_frame(&scene, 32, 32, cfg);
/// let stats = Simulator::new(GpuConfig::mobile_soc()).run(&workload);
/// assert!(stats.rt_warp_phases > 0);
/// ```
pub struct RtWorkload<'s> {
    scene: &'s Scene,
    width: u32,
    height: u32,
    trace: TraceConfig,
    pixels: Vec<Pixel>,
    /// `selected[i] == false` → thread `i` runs the filter-exit program.
    selected: Option<Vec<bool>>,
    map: AddressMap,
}

impl std::fmt::Debug for RtWorkload<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RtWorkload")
            .field("scene", &self.scene.name())
            .field("width", &self.width)
            .field("height", &self.height)
            .field("pixels", &self.pixels.len())
            .field(
                "selected",
                &self
                    .selected
                    .as_ref()
                    .map(|s| s.iter().filter(|&&b| b).count()),
            )
            .finish()
    }
}

impl<'s> RtWorkload<'s> {
    /// Workload over an explicit pixel list (a Zatel group).
    ///
    /// `width`/`height` are the *full* image dimensions; pixel coordinates
    /// are absolute so per-pixel RNG streams match the full-frame render.
    ///
    /// # Panics
    ///
    /// Panics if `pixels` is empty or any coordinate is out of bounds.
    pub fn new(
        scene: &'s Scene,
        width: u32,
        height: u32,
        trace: TraceConfig,
        pixels: Vec<Pixel>,
    ) -> Self {
        assert!(!pixels.is_empty(), "workload needs at least one pixel");
        assert!(
            pixels.iter().all(|p| p.x < width && p.y < height),
            "pixel out of image bounds"
        );
        RtWorkload {
            scene,
            width,
            height,
            trace,
            pixels,
            selected: None,
            map: AddressMap::default(),
        }
    }

    /// Workload tracing the whole `width × height` frame in 32×2-pixel
    /// tiles (row-major tile order, row-major within a tile).
    ///
    /// Ray-generation shaders dispatch rays in small 2D tiles, not in
    /// scanlines, so consecutive warps cover vertically adjacent pixel
    /// runs; this is also exactly the chunk shape Zatel's fine-grained
    /// division uses, keeping per-SM locality comparable between full-frame
    /// and per-group simulations.
    pub fn full_frame(scene: &'s Scene, width: u32, height: u32, trace: TraceConfig) -> Self {
        const TILE_W: u32 = 32;
        const TILE_H: u32 = 2;
        let mut pixels = Vec::with_capacity((width * height) as usize);
        for ty in 0..height.div_ceil(TILE_H) {
            for tx in 0..width.div_ceil(TILE_W) {
                for y in ty * TILE_H..((ty + 1) * TILE_H).min(height) {
                    for x in tx * TILE_W..((tx + 1) * TILE_W).min(width) {
                        pixels.push(Pixel::new(x, y));
                    }
                }
            }
        }
        Self::new(scene, width, height, trace, pixels)
    }

    /// Restricts tracing to the pixels where `selected` is `true`. The
    /// deselected threads still launch and immediately exit (the paper's
    /// `filter_shader`).
    ///
    /// # Panics
    ///
    /// Panics if `selected.len()` differs from the pixel count.
    pub fn with_selection(mut self, selected: Vec<bool>) -> Self {
        assert_eq!(
            selected.len(),
            self.pixels.len(),
            "selection mask length mismatch"
        );
        self.selected = Some(selected);
        self
    }

    /// The pixels of this workload in thread order.
    pub fn pixels(&self) -> &[Pixel] {
        &self.pixels
    }

    /// Number of pixels that will actually be traced.
    pub fn traced_count(&self) -> usize {
        match &self.selected {
            Some(sel) => sel.iter().filter(|&&b| b).count(),
            None => self.pixels.len(),
        }
    }

    /// The fraction of this workload's pixels that will be traced.
    pub fn traced_fraction(&self) -> f64 {
        self.traced_count() as f64 / self.pixels.len() as f64
    }
}

impl Workload for RtWorkload<'_> {
    fn thread_count(&self) -> u64 {
        self.pixels.len() as u64
    }

    fn create_thread(&self, index: u64) -> Box<dyn ThreadProgram + '_> {
        let pixel = self.pixels[index as usize];
        if let Some(sel) = &self.selected {
            if !sel[index as usize] {
                return Box::new(FilterExit::new());
            }
        }
        Box::new(PixelProgram::new(
            self.scene,
            pixel,
            self.width,
            self.height,
            self.trace,
            self.map,
        ))
    }
}

/// The two-instruction early-exit program run by filtered-out pixels
/// (mirrors the injected PTX of the paper's Listing 1).
#[derive(Debug)]
struct FilterExit {
    emitted: bool,
}

impl FilterExit {
    fn new() -> Self {
        FilterExit { emitted: false }
    }
}

impl ThreadProgram for FilterExit {
    fn next_op(&mut self) -> Option<Op> {
        if self.emitted {
            None
        } else {
            self.emitted = true;
            // filter_shader + exit.
            Some(Op::Compute {
                cycles: 2,
                insts: 2,
            })
        }
    }
}

/// Continuation data for a diffuse bounce paused on its shadow ray.
#[derive(Debug, Clone, Copy)]
struct DiffuseResume {
    point: Vec3,
    normal: Vec3,
    bounce: u32,
}

enum State<'s> {
    StartSample,
    Path {
        tr: Traversal<'s>,
        bounce: u32,
    },
    Shadow {
        tr: Traversal<'s>,
        resume: DiffuseResume,
    },
    Finished,
}

/// Lazy per-pixel thread program: replays the exact path-tracing control
/// flow of [`rtcore::tracer`] while emitting one [`Op`] per unit of work.
struct PixelProgram<'s> {
    scene: &'s Scene,
    map: AddressMap,
    pixel: Pixel,
    width: u32,
    height: u32,
    spp: u32,
    max_bounces: u32,
    rng: Pcg,
    sample: u32,
    throughput: Vec3,
    queue: VecDeque<Op>,
    state: State<'s>,
}

impl<'s> PixelProgram<'s> {
    fn new(
        scene: &'s Scene,
        pixel: Pixel,
        width: u32,
        height: u32,
        trace: TraceConfig,
        map: AddressMap,
    ) -> Self {
        let rng = Pcg::for_index(trace.seed, pixel.y as u64 * width as u64 + pixel.x as u64);
        PixelProgram {
            scene,
            map,
            pixel,
            width,
            height,
            spp: trace.samples_per_pixel.max(1),
            max_bounces: trace.max_bounces,
            rng,
            sample: 0,
            throughput: Vec3::ONE,
            queue: VecDeque::new(),
            state: State::StartSample,
        }
    }

    fn op_of(&self, step: TraversalStep) -> Op {
        match step {
            TraversalStep::InteriorNode { node } | TraversalStep::LeafNode { node, .. } => {
                Op::RtNode {
                    addr: self.map.node_addr(node),
                }
            }
            TraversalStep::PrimitiveTest { prim, .. } => Op::RtPrim {
                addr: self.map.prim_addr(prim.0),
            },
        }
    }

    /// Ends the current path; moves on to the next sample.
    fn end_path(&mut self) {
        self.throughput = Vec3::ONE;
        self.state = State::StartSample;
    }

    /// Resolves a finished primary/bounce traversal, mirroring
    /// `rtcore::tracer` decision for decision (and RNG draw for RNG draw).
    fn resolve_path_hit(&mut self, tr: Traversal<'s>, bounce: u32) {
        let Some(hit) = tr.hit() else {
            // Sky: small shade cost, path ends.
            self.queue.push_back(Op::Compute {
                cycles: 4,
                insts: 4,
            });
            self.end_path();
            return;
        };

        let material = *self.scene.material(hit.material);
        // Material fetch + shading ALU work.
        self.queue.push_back(Op::Load {
            addr: self.map.material_addr(hit.material.0),
            bytes: 32,
        });
        let cost = material.shading_cost();
        self.queue.push_back(Op::Compute {
            cycles: cost,
            insts: cost,
        });

        match material.surface {
            Surface::Emissive => {
                self.end_path();
            }
            Surface::Diffuse => {
                let mut shadow: Option<Traversal<'s>> = None;
                if !self.scene.lights().is_empty() {
                    let light = self.scene.lights()[self.rng.next_below(self.scene.lights().len())];
                    let to_light = light.position - hit.point;
                    let dist = to_light.length();
                    if dist > RAY_EPSILON {
                        let dir = to_light / dist;
                        let cos = hit.normal.dot(dir);
                        if cos > 0.0 {
                            let ray = Ray::segment(
                                hit.point + hit.normal * RAY_EPSILON,
                                dir,
                                dist - 2.0 * RAY_EPSILON,
                            );
                            // Shadow-ray setup cost.
                            self.queue.push_back(Op::Compute {
                                cycles: 6,
                                insts: 6,
                            });
                            shadow =
                                Some(self.scene.bvh().traverse_any(ray, self.scene.primitives()));
                        }
                    }
                }
                let resume = DiffuseResume {
                    point: hit.point,
                    normal: hit.normal,
                    bounce,
                };
                self.throughput = self.throughput.hadamard(material.color);
                match shadow {
                    Some(tr) => self.state = State::Shadow { tr, resume },
                    None => self.continue_after_diffuse(resume),
                }
            }
            Surface::Mirror { fuzz } => {
                self.throughput = self.throughput.hadamard(material.color);
                let incoming = tr.ray().dir;
                let mut dir = incoming.reflect(hit.normal);
                if fuzz > 0.0 {
                    dir = (dir + uniform_sphere(&mut self.rng) * fuzz)
                        .try_normalized()
                        .unwrap_or(dir);
                }
                if dir.dot(hit.normal) <= 0.0 {
                    self.end_path();
                    return;
                }
                let ray = Ray::new(hit.point + hit.normal * RAY_EPSILON, dir);
                self.continue_bounce(ray, bounce);
            }
            Surface::Glass { ior } => {
                let incoming = tr.ray().dir;
                let eta = 1.0 / ior;
                let cos_i = (-incoming).dot(hit.normal).clamp(0.0, 1.0);
                let reflect_prob = schlick(cos_i, ior);
                let dir = if self.rng.next_f32() < reflect_prob {
                    incoming.reflect(hit.normal)
                } else {
                    match incoming.refract(hit.normal, eta) {
                        Some(t) => t,
                        None => incoming.reflect(hit.normal),
                    }
                };
                let offset = if dir.dot(hit.normal) < 0.0 {
                    -hit.normal
                } else {
                    hit.normal
                };
                let ray = Ray::new(hit.point + offset * RAY_EPSILON, dir.normalized());
                self.continue_bounce(ray, bounce);
            }
        }
    }

    /// After a shadow query, finish the diffuse bounce: hemisphere sample
    /// and the next path segment (matching the tracer's RNG order).
    fn continue_after_diffuse(&mut self, resume: DiffuseResume) {
        let dir = cosine_hemisphere(resume.normal, &mut self.rng);
        let ray = Ray::new(resume.point + resume.normal * RAY_EPSILON, dir);
        self.continue_bounce(ray, resume.bounce);
    }

    /// Advances to the next path segment, honouring the bounce limit and
    /// the throughput termination rule of the functional tracer.
    fn continue_bounce(&mut self, ray: Ray, bounce: u32) {
        if self.throughput.max_component() < 1e-4 || bounce >= self.max_bounces {
            self.end_path();
            return;
        }
        let tr = self.scene.bvh().traverse(ray, self.scene.primitives());
        self.state = State::Path {
            tr,
            bounce: bounce + 1,
        };
    }
}

/// Schlick's Fresnel approximation (identical to the functional tracer's).
fn schlick(cos: f32, ior: f32) -> f32 {
    let r0 = ((1.0 - ior) / (1.0 + ior)).powi(2);
    r0 + (1.0 - r0) * (1.0 - cos).powi(5)
}

impl ThreadProgram for PixelProgram<'_> {
    fn next_op(&mut self) -> Option<Op> {
        loop {
            if let Some(op) = self.queue.pop_front() {
                return Some(op);
            }
            // Temporarily swap the state out so traversals can be moved.
            match std::mem::replace(&mut self.state, State::Finished) {
                State::StartSample => {
                    if self.sample >= self.spp {
                        // Frame done for this pixel: write the framebuffer.
                        self.queue.push_back(Op::Store {
                            addr: self.map.pixel_addr(self.pixel.x, self.pixel.y, self.width),
                            bytes: self.map.pixel_stride as u32,
                        });
                        // State stays Finished; the store drains, then None.
                        continue;
                    }
                    self.sample += 1;
                    let ray = self.scene.camera().primary_ray(
                        self.pixel.x,
                        self.pixel.y,
                        self.width,
                        self.height,
                        &mut self.rng,
                    );
                    self.queue.push_back(Op::Compute {
                        cycles: 16,
                        insts: 16,
                    });
                    let tr = self.scene.bvh().traverse(ray, self.scene.primitives());
                    self.state = State::Path { tr, bounce: 0 };
                }
                State::Path { mut tr, bounce } => match tr.step() {
                    Some(step) => {
                        let op = self.op_of(step);
                        self.state = State::Path { tr, bounce };
                        return Some(op);
                    }
                    None => {
                        self.resolve_path_hit(tr, bounce);
                    }
                },
                State::Shadow { mut tr, resume } => match tr.step() {
                    Some(step) => {
                        let op = self.op_of(step);
                        if tr.hit_found() {
                            // Early-out: occlusion proven; finish the bounce.
                            self.continue_after_diffuse(resume);
                        } else {
                            self.state = State::Shadow { tr, resume };
                        }
                        return Some(op);
                    }
                    None => {
                        self.continue_after_diffuse(resume);
                    }
                },
                State::Finished => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpusim::{GpuConfig, Simulator};
    use rtcore::scenes::SceneId;
    use rtcore::tracer::{trace_pixel, TraceConfig};

    fn cfg() -> TraceConfig {
        TraceConfig {
            samples_per_pixel: 2,
            max_bounces: 3,
            seed: 11,
        }
    }

    #[test]
    fn address_map_regions_are_disjoint() {
        let m = AddressMap::default();
        assert!(m.node_addr(1_000_000) < m.prim_base);
        assert!(m.prim_addr(1_000_000) < m.material_base);
        assert!(m.material_addr(100_000) < m.framebuffer_base);
        assert_eq!(m.pixel_addr(1, 0, 64) - m.pixel_addr(0, 0, 64), 16);
        assert_eq!(m.pixel_addr(0, 1, 64) - m.pixel_addr(0, 0, 64), 64 * 16);
    }

    #[test]
    fn op_counts_match_functional_tracer() {
        // The core correctness property of this crate: for the same pixels
        // and seed, the op stream's RtNode/RtPrim counts equal the
        // functional tracer's nodes_visited/prim_tests exactly.
        let scene = SceneId::Wknd.build(3);
        let (w, h) = (16u32, 16u32);
        let trace = cfg();
        let mut func_nodes = 0u64;
        let mut func_prims = 0u64;
        for y in 0..h {
            for x in 0..w {
                let px = trace_pixel(&scene, x, y, w, h, &trace);
                func_nodes += px.stats.nodes_visited;
                func_prims += px.stats.prim_tests;
            }
        }
        let workload = RtWorkload::full_frame(&scene, w, h, trace);
        let mut sim_nodes = 0u64;
        let mut sim_prims = 0u64;
        for i in 0..workload.thread_count() {
            let mut t = workload.create_thread(i);
            while let Some(op) = t.next_op() {
                match op {
                    Op::RtNode { .. } => sim_nodes += 1,
                    Op::RtPrim { .. } => sim_prims += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(
            sim_nodes, func_nodes,
            "node fetches must match functional traversal"
        );
        assert_eq!(
            sim_prims, func_prims,
            "primitive tests must match functional traversal"
        );
    }

    #[test]
    fn threads_are_reproducible() {
        let scene = SceneId::Sprng.build(1);
        let workload = RtWorkload::full_frame(&scene, 8, 8, cfg());
        let collect = |i| {
            let mut t = workload.create_thread(i);
            let mut ops = Vec::new();
            while let Some(op) = t.next_op() {
                ops.push(op);
            }
            ops
        };
        assert_eq!(collect(5), collect(5));
    }

    #[test]
    fn every_thread_terminates_with_store() {
        let scene = SceneId::Bath.build(2);
        let workload = RtWorkload::full_frame(&scene, 8, 8, cfg());
        for i in 0..workload.thread_count() {
            let mut t = workload.create_thread(i);
            let mut last = None;
            let mut n = 0u64;
            while let Some(op) = t.next_op() {
                last = Some(op);
                n += 1;
                assert!(n < 2_000_000, "thread {i} does not terminate");
            }
            assert!(
                matches!(last, Some(Op::Store { .. })),
                "thread {i} must write the framebuffer"
            );
        }
    }

    #[test]
    fn filtered_threads_run_two_instructions() {
        let scene = SceneId::Sprng.build(1);
        let n = 64usize;
        let mut sel = vec![false; n];
        sel[0] = true;
        let workload = RtWorkload::full_frame(&scene, 8, 8, cfg()).with_selection(sel);
        assert_eq!(workload.traced_count(), 1);
        assert!((workload.traced_fraction() - 1.0 / 64.0).abs() < 1e-12);
        let mut t = workload.create_thread(1);
        assert_eq!(
            t.next_op(),
            Some(Op::Compute {
                cycles: 2,
                insts: 2
            })
        );
        assert_eq!(t.next_op(), None);
    }

    #[test]
    fn selection_reduces_simulated_cycles() {
        let scene = SceneId::Chsnt.build(4);
        let (w, h) = (32u32, 32u32);
        let trace = TraceConfig {
            samples_per_pixel: 1,
            max_bounces: 2,
            seed: 5,
        };
        let full = RtWorkload::full_frame(&scene, w, h, trace);
        let sim = Simulator::new(GpuConfig::mobile_soc());
        let full_stats = sim.run(&full);
        let sel: Vec<bool> = (0..(w * h) as usize).map(|i| i % 4 == 0).collect();
        let quarter = RtWorkload::full_frame(&scene, w, h, trace).with_selection(sel);
        let q_stats = sim.run(&quarter);
        assert!(
            q_stats.cycles < full_stats.cycles,
            "quarter trace {} should beat full {}",
            q_stats.cycles,
            full_stats.cycles
        );
    }

    #[test]
    fn subset_pixels_trace_identically_to_full_frame() {
        // Per-pixel RNG depends only on (seed, x, y): a group containing a
        // pixel produces the identical op stream as the full frame.
        let scene = SceneId::Wknd.build(3);
        let trace = cfg();
        let full = RtWorkload::full_frame(&scene, 16, 16, trace);
        let group = RtWorkload::new(
            &scene,
            16,
            16,
            trace,
            vec![Pixel::new(3, 7), Pixel::new(12, 2)],
        );
        let drain = |w: &RtWorkload<'_>, i: u64| {
            let mut t = w.create_thread(i);
            let mut ops = Vec::new();
            while let Some(op) = t.next_op() {
                ops.push(op);
            }
            ops
        };
        // Pixel (3,7) is thread 7*16+3 = 115 of the full frame.
        assert_eq!(drain(&group, 0), drain(&full, 115));
        // Pixel (12,2) is thread 2*16+12 = 44.
        assert_eq!(drain(&group, 1), drain(&full, 44));
    }

    #[test]
    #[should_panic(expected = "at least one pixel")]
    fn empty_pixel_list_panics() {
        let scene = SceneId::Sprng.build(1);
        let _ = RtWorkload::new(&scene, 8, 8, cfg(), vec![]);
    }

    #[test]
    #[should_panic(expected = "out of image bounds")]
    fn out_of_bounds_pixel_panics() {
        let scene = SceneId::Sprng.build(1);
        let _ = RtWorkload::new(&scene, 8, 8, cfg(), vec![Pixel::new(8, 0)]);
    }
}
