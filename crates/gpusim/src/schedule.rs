//! Deterministic cooperative scheduler for interleaving-exploration
//! tests (`--cfg zatel_schedule_test` builds only).
//!
//! The engine's sync facade ([`crate::engine::sync`]) calls into this
//! module at every *schedule point* — immediately before a seam mutex
//! acquisition, and around every seam condvar park. A test installs a
//! seeded [`Scheduler`] on the driving thread; the epoch driver announces
//! its shard threads, which adopt pre-assigned slots at spawn. From then
//! on exactly one participating thread runs at a time, and whenever the
//! running thread reaches a schedule point the scheduler *elects* the
//! next runner with a seeded PRNG — but only once every participant is
//! quiescent (at a point, parked, finished or detached), so the election
//! sequence is a pure function of the seed, never of OS timing. Each
//! elected slot is folded into a trace hash; distinct hashes across seeds
//! certify that the runs really explored distinct interleavings.
//!
//! Two invariants make this sound:
//!
//! * **Points come before acquisitions, never inside critical sections.**
//!   A thread that is not `Running` holds no seam mutex (a facade condvar
//!   wait releases the real guard before parking), so the elected thread
//!   never contends a real lock and real mutexes add no hidden ordering.
//! * **Elections wait for full quiescence.** Announced-but-unattached
//!   slots and running threads both block elections, so the candidate set
//!   at every choice is deterministic regardless of spawn timing.
//!
//! Threads without an installed scheduler (every other test in the same
//! process, serve's workers, …) pass through the facade to the real
//! primitives untouched.

use std::cell::RefCell;
use std::sync::{Arc, Condvar, Mutex};

/// Where one slot currently stands, from the scheduler's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Status {
    /// Announced but not yet attached: blocks elections (the thread will
    /// attach; electing without it would make choices spawn-timing
    /// dependent).
    Expected,
    /// Holds the token and is executing.
    Running,
    /// At a schedule point, eligible for election.
    AtPoint,
    /// Parked on the facade condvar identified by the payload.
    Parked(usize),
    /// Returned; never scheduled again.
    Finished,
    /// Temporarily outside the scheduled region (the driving thread
    /// while it blocks in `scope` join); neither blocks elections nor is
    /// eligible.
    Detached,
}

#[derive(Debug)]
struct State {
    rng: u64,
    status: Vec<Status>,
    /// The slot currently holding the run token, if any.
    current: Option<usize>,
    /// Elections held so far.
    steps: u64,
    /// FNV-1a fold of the elected slot sequence.
    trace_hash: u64,
    deadlocked: bool,
}

/// The seeded cooperative scheduler. See the module docs for the
/// protocol.
#[derive(Debug)]
pub struct Scheduler {
    state: Mutex<State>,
    cv: Condvar,
}

/// What one scheduled run explored: the election count and the trace
/// hash identifying the interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScheduleTrace {
    /// Elections held during the run.
    pub steps: u64,
    /// FNV-1a hash of the elected slot sequence — two runs with equal
    /// hashes replayed the same interleaving.
    pub hash: u64,
}

thread_local! {
    static CURRENT: RefCell<Option<(Arc<Scheduler>, usize)>> = const { RefCell::new(None) };
}

/// SplitMix64 step — the same generator the workload synthesizers use.
fn next_rng(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

impl Scheduler {
    fn new(seed: u64) -> Scheduler {
        Scheduler {
            state: Mutex::new(State {
                rng: seed,
                // Slot 0 is the installing thread, already running.
                status: vec![Status::Running],
                current: Some(0),
                steps: 0,
                trace_hash: FNV_OFFSET,
                deadlocked: false,
            }),
            cv: Condvar::new(),
        }
    }

    fn locked(&self) -> std::sync::MutexGuard<'_, State> {
        // zatel-lint: allow(panic-hygiene, reason = "test-harness-only scheduler: a poisoned state mutex means a participant already panicked mid-protocol and the run is lost either way")
        self.state.lock().expect("scheduler state poisoned")
    }

    /// Holds an election if the world is quiescent. Caller holds the
    /// state lock.
    fn maybe_elect(&self, st: &mut State) {
        if st.current.is_some() || st.deadlocked {
            return;
        }
        if st
            .status
            .iter()
            .any(|s| matches!(s, Status::Running | Status::Expected))
        {
            return; // someone will reach a point and re-trigger
        }
        let candidates: Vec<usize> = st
            .status
            .iter()
            .enumerate()
            .filter(|(_, s)| **s == Status::AtPoint)
            .map(|(i, _)| i)
            .collect();
        if candidates.is_empty() {
            if st.status.iter().any(|s| matches!(s, Status::Parked(_))) {
                // Every live participant is parked and nobody can ever
                // notify: the protocol deadlocked.
                st.deadlocked = true;
                self.cv.notify_all();
            }
            return; // all finished/detached — nothing to do
        }
        st.rng = next_rng(st.rng);
        let pick = candidates[(st.rng >> 33) as usize % candidates.len()];
        st.current = Some(pick);
        st.steps += 1;
        st.trace_hash = (st.trace_hash ^ pick as u64).wrapping_mul(FNV_PRIME);
        self.cv.notify_all();
    }

    /// Blocks until `slot` is elected, participating in elections while
    /// it waits. Caller has already published its new status.
    fn wait_for_token(&self, mut st: std::sync::MutexGuard<'_, State>, slot: usize) {
        loop {
            self.maybe_elect(&mut st);
            if st.deadlocked {
                let statuses = format!("{:?}", st.status);
                drop(st);
                // zatel-lint: allow(panic-hygiene, reason = "test-harness-only scheduler: a detected interleaving deadlock must fail the schedule-exploration test loudly")
                panic!("schedule deadlock: every participant is parked ({statuses})");
            }
            if st.current == Some(slot) {
                st.status[slot] = Status::Running;
                return;
            }
            // zatel-lint: allow(panic-hygiene, reason = "test-harness-only scheduler: see the state-mutex waiver above")
            st = self.cv.wait(st).expect("scheduler state poisoned");
        }
    }

    /// Announces `n` future participants; returns the first of their
    /// slot indices. Elections stall until every announced slot attaches.
    pub(crate) fn announce(&self, n: usize) -> usize {
        let mut st = self.locked();
        let base = st.status.len();
        st.status.extend(std::iter::repeat_n(Status::Expected, n));
        base
    }

    fn attach(&self, slot: usize) {
        let mut st = self.locked();
        st.status[slot] = Status::AtPoint;
        self.wait_for_token(st, slot);
    }

    fn reach_point(&self, slot: usize) {
        let mut st = self.locked();
        st.status[slot] = Status::AtPoint;
        if st.current == Some(slot) {
            st.current = None;
        }
        self.wait_for_token(st, slot);
    }

    fn park(&self, slot: usize, cv_id: usize) {
        let mut st = self.locked();
        st.status[slot] = Status::Parked(cv_id);
        if st.current == Some(slot) {
            st.current = None;
        }
        // Only a notify can flip us back to AtPoint, and only an
        // election can hand us the token — one combined wait covers both.
        self.wait_for_token(st, slot);
    }

    fn notify(&self, cv_id: usize) {
        let mut st = self.locked();
        for s in st.status.iter_mut() {
            if *s == Status::Parked(cv_id) {
                *s = Status::AtPoint;
            }
        }
        // The notifier keeps running; the woken slots become electable
        // at its next schedule point.
    }

    fn release(&self, slot: usize, to: Status) {
        let mut st = self.locked();
        st.status[slot] = to;
        if st.current == Some(slot) {
            st.current = None;
        }
        self.maybe_elect(&mut st);
    }

    fn trace(&self) -> ScheduleTrace {
        let st = self.locked();
        ScheduleTrace {
            steps: st.steps,
            hash: st.trace_hash,
        }
    }
}

/// Installs a fresh scheduler seeded with `seed` on the calling thread
/// (slot 0, running). The thread drives the run and finally collects the
/// trace with [`uninstall`].
pub fn install(seed: u64) {
    CURRENT.with(|c| {
        *c.borrow_mut() = Some((Arc::new(Scheduler::new(seed)), 0));
    });
}

/// Removes the calling thread's scheduler and returns the explored
/// trace, or `None` when no scheduler was installed.
pub fn uninstall() -> Option<ScheduleTrace> {
    CURRENT
        .with(|c| c.borrow_mut().take())
        .map(|(sched, slot)| {
            sched.release(slot, Status::Finished);
            sched.trace()
        })
}

/// The calling thread's scheduler handle, if one is installed.
pub(crate) fn handle() -> Option<(Arc<Scheduler>, usize)> {
    CURRENT.with(|c| c.borrow().clone())
}

/// A schedule point: yields the token and blocks until re-elected.
/// No-op for threads without a scheduler.
pub(crate) fn point() {
    if let Some((sched, slot)) = handle() {
        sched.reach_point(slot);
    }
}

/// Parks the calling thread on facade condvar `cv_id` until notified,
/// then blocks until re-elected. No-op without a scheduler.
pub(crate) fn park(cv_id: usize) {
    if let Some((sched, slot)) = handle() {
        sched.park(slot, cv_id);
    }
}

/// Marks every participant parked on `cv_id` electable again. The caller
/// keeps running. No-op without a scheduler.
pub(crate) fn notify(cv_id: usize) {
    if let Some((sched, slot)) = handle() {
        let _ = slot;
        sched.notify(cv_id);
    }
}

/// Detaches the calling thread from scheduling (it is about to block
/// outside the protocol, e.g. in a scope join); elections proceed
/// without it. No-op without a scheduler.
pub fn detach_current() {
    if let Some((sched, slot)) = handle() {
        sched.release(slot, Status::Detached);
    }
}

/// Re-enters the scheduled region after [`detach_current`]: waits to be
/// elected before returning. No-op without a scheduler.
pub fn reattach_current() {
    if let Some((sched, slot)) = handle() {
        sched.attach(slot);
    }
}

/// RAII participation of a spawned worker thread: adopts `slot` on the
/// given scheduler for the current thread (blocking until first elected)
/// and marks the slot finished when dropped — unwinding included, so a
/// panicking shard cannot stall elections forever.
pub(crate) struct Participant;

impl Participant {
    pub(crate) fn adopt(sched: Arc<Scheduler>, slot: usize) -> Participant {
        CURRENT.with(|c| {
            *c.borrow_mut() = Some((Arc::clone(&sched), slot));
        });
        sched.attach(slot);
        Participant
    }
}

impl Drop for Participant {
    fn drop(&mut self) {
        if let Some((sched, slot)) = CURRENT.with(|c| c.borrow_mut().take()) {
            sched.release(slot, Status::Finished);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elections_are_seed_deterministic() {
        // Two identical three-participant dances with the same seed give
        // the same trace; a different seed diverges.
        fn dance(seed: u64) -> ScheduleTrace {
            install(seed);
            let (sched, _) = handle().expect("installed");
            let base = sched.announce(2);
            let workers: Vec<_> = (0..2)
                .map(|i| {
                    let sched = Arc::clone(&sched);
                    std::thread::spawn(move || {
                        let _p = Participant::adopt(sched, base + i);
                        for _ in 0..4 {
                            point();
                        }
                    })
                })
                .collect();
            for _ in 0..4 {
                point();
            }
            detach_current();
            for w in workers {
                w.join().expect("worker");
            }
            reattach_current();
            uninstall().expect("trace")
        }
        let a = dance(7);
        let b = dance(7);
        let c = dance(8);
        assert_eq!(a, b, "same seed, same interleaving");
        assert!(a.steps > 0);
        assert_ne!(a.hash, c.hash, "different seed explores differently");
    }

    #[test]
    fn park_and_notify_round_trip() {
        install(42);
        let (sched, _) = handle().expect("installed");
        let base = sched.announce(1);
        let worker = {
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || {
                let _p = Participant::adopt(sched, base);
                park(99);
            })
        };
        // Let the worker reach its park, then wake it.
        point();
        notify(99);
        point();
        detach_current();
        worker.join().expect("worker");
        reattach_current();
        let trace = uninstall().expect("trace");
        assert!(trace.steps >= 2);
    }

    #[test]
    fn deadlock_is_detected_not_hung() {
        install(1);
        let (sched, _) = handle().expect("installed");
        let base = sched.announce(1);
        let worker = {
            let sched = Arc::clone(&sched);
            std::thread::spawn(move || {
                let _p = Participant::adopt(sched, base);
                park(7); // nobody will ever notify cv 7
            })
        };
        detach_current();
        let joined = worker.join();
        assert!(joined.is_err(), "the parked worker must panic, not hang");
        // Re-attaching into a deadlocked run would rightly panic too;
        // just tear down.
        uninstall();
    }

    #[test]
    fn threads_without_a_scheduler_pass_through() {
        // No install: every hook is a no-op.
        point();
        notify(3);
        detach_current();
        reattach_current();
        assert!(uninstall().is_none());
    }
}
