//! SM-side execution structures: warps and RT units.

pub(crate) mod rtunit;
pub(crate) mod warp;
