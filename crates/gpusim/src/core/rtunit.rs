//! RT accelerator unit: bounded-occupancy traversal engine.

/// One ray-tracing accelerator (per SM).
///
/// Models the two resource limits of Table II: a bounded number of warps
/// resident in the unit (`rt_max_warps`) and a fixed ray-test throughput
/// (`lanes_per_cycle`). Node/primitive data fetches go through the regular
/// memory hierarchy; this unit only arbitrates occupancy and counts the
/// efficiency statistic (average active rays per warp phase).
#[derive(Debug, Clone)]
pub(crate) struct RtUnit {
    /// Completion time of the phase occupying each warp slot.
    slots: Vec<u64>,
    lanes_per_cycle: u32,
    phases: u64,
    active_rays: u64,
}

impl RtUnit {
    /// Creates an idle unit with `max_warps` warp slots.
    ///
    /// # Panics
    ///
    /// Panics if either parameter is zero.
    pub fn new(max_warps: u32, lanes_per_cycle: u32) -> Self {
        assert!(
            max_warps > 0 && lanes_per_cycle > 0,
            "RT unit limits must be positive"
        );
        RtUnit {
            slots: vec![0; max_warps as usize],
            lanes_per_cycle,
            phases: 0,
            active_rays: 0,
        }
    }

    /// Requests a warp slot at time `now`; returns `(slot, start)` where
    /// `start >= now` is when the warp may begin its RT phase.
    pub fn acquire(&mut self, now: u64) -> (usize, u64) {
        let (slot, &free_at) = self
            .slots
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            // zatel-lint: allow(panic-hygiene, reason = "GpuConfig::validate rejects zero RT tester slots before a unit is built")
            .expect("unit has at least one slot");
        (slot, now.max(free_at))
    }

    /// Marks `slot` busy until `done` and records `active_rays` for the
    /// efficiency statistic.
    pub fn complete(&mut self, slot: usize, done: u64, active_rays: u32) {
        self.slots[slot] = self.slots[slot].max(done);
        self.phases += 1;
        self.active_rays += active_rays as u64;
    }

    /// Cycles the test pipeline needs for `rays` concurrent rays.
    pub fn occupancy_cycles(&self, rays: u32) -> u64 {
        (rays as u64).div_ceil(self.lanes_per_cycle as u64).max(1)
    }

    /// Total RT warp phases issued.
    pub fn phases(&self) -> u64 {
        self.phases
    }

    /// Sum of active rays over all phases.
    pub fn active_rays(&self) -> u64 {
        self.active_rays
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn acquire_prefers_free_slot() {
        let mut rt = RtUnit::new(2, 4);
        let (s0, t0) = rt.acquire(10);
        assert_eq!(t0, 10);
        rt.complete(s0, 100, 32);
        let (s1, t1) = rt.acquire(10);
        assert_ne!(s0, s1, "second slot is free");
        assert_eq!(t1, 10);
        rt.complete(s1, 200, 16);
        // Both busy: next acquire waits for the earliest completion.
        let (_, t2) = rt.acquire(10);
        assert_eq!(t2, 100);
    }

    #[test]
    fn occupancy_scales_with_rays() {
        let rt = RtUnit::new(4, 4);
        assert_eq!(rt.occupancy_cycles(1), 1);
        assert_eq!(rt.occupancy_cycles(4), 1);
        assert_eq!(rt.occupancy_cycles(5), 2);
        assert_eq!(rt.occupancy_cycles(32), 8);
        assert_eq!(rt.occupancy_cycles(0), 1, "floor of one cycle");
    }

    #[test]
    fn efficiency_counters_accumulate() {
        let mut rt = RtUnit::new(2, 4);
        let (s, _) = rt.acquire(0);
        rt.complete(s, 10, 32);
        let (s, _) = rt.acquire(0);
        rt.complete(s, 10, 8);
        assert_eq!(rt.phases(), 2);
        assert_eq!(rt.active_rays(), 40);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_slots_panics() {
        RtUnit::new(0, 4);
    }
}
