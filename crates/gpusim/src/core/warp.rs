//! Warp state: a bundle of up to `warp_size` thread programs advancing in
//! SIMT phases.

use crate::workload::{Op, ThreadProgram, Workload};

/// A resident warp.
pub(crate) struct Warp<'w> {
    /// Global warp id (launch order; used for greedy-then-oldest arbitration).
    pub id: u64,
    /// The SM this warp is resident on.
    pub sm: usize,
    lanes: Vec<Option<Box<dyn ThreadProgram + 'w>>>,
}

impl<'w> Warp<'w> {
    /// Instantiates the warp covering threads
    /// `[first_thread, first_thread + lane_count)`.
    pub fn new(
        workload: &'w (dyn Workload + 'w),
        id: u64,
        sm: usize,
        first_thread: u64,
        lane_count: u32,
    ) -> Self {
        let lanes = (0..lane_count as u64)
            .map(|l| Some(workload.create_thread(first_thread + l)))
            .collect();
        Warp { id, sm, lanes }
    }

    /// Advances every live lane by one operation and returns the gathered
    /// ops. An empty result means every lane has exited: the warp retires.
    pub fn gather_phase(&mut self) -> Vec<Op> {
        let mut ops = Vec::with_capacity(self.lanes.len());
        for lane in &mut self.lanes {
            if let Some(program) = lane {
                match program.next_op() {
                    Some(op) => ops.push(op),
                    None => *lane = None,
                }
            }
        }
        ops
    }

    /// Number of lanes still running.
    pub fn live_lanes(&self) -> usize {
        self.lanes.iter().filter(|l| l.is_some()).count()
    }
}

impl std::fmt::Debug for Warp<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Warp")
            .field("id", &self.id)
            .field("sm", &self.sm)
            .field("live_lanes", &self.live_lanes())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ScriptedWorkload;

    #[test]
    fn gather_advances_all_lanes() {
        let w = ScriptedWorkload::per_thread(4, |i| {
            (0..=i)
                .map(|_| Op::Compute {
                    cycles: 1,
                    insts: 1,
                })
                .collect()
        });
        let mut warp = Warp::new(&w, 0, 0, 0, 4);
        assert_eq!(warp.live_lanes(), 4);
        // Phase 1: all four lanes have an op.
        assert_eq!(warp.gather_phase().len(), 4);
        // Phase 2: lane 0 (1 op) has exited.
        assert_eq!(warp.gather_phase().len(), 3);
        assert_eq!(warp.live_lanes(), 3);
        assert_eq!(warp.gather_phase().len(), 2);
        assert_eq!(warp.gather_phase().len(), 1);
        assert!(warp.gather_phase().is_empty(), "all lanes done → retire");
    }

    #[test]
    fn partial_warp_at_grid_edge() {
        let w = ScriptedWorkload::uniform(
            100,
            vec![Op::Compute {
                cycles: 1,
                insts: 1,
            }],
        );
        let warp = Warp::new(&w, 3, 1, 96, 4); // last warp: 4 threads of 100
        assert_eq!(warp.live_lanes(), 4);
    }
}
