//! # zatel-gpusim — cycle-level GPU timing simulator
//!
//! A from-scratch Rust substitute for Vulkan-Sim (Saed et al., MICRO 2022),
//! the cycle-accurate GPU ray-tracing simulator the Zatel paper builds on.
//! It models the architecture of the paper's Fig. 2:
//!
//! * **SMs** with bounded warp slots, a greedy-then-oldest flavoured issue
//!   arbiter and per-SM L1D caches;
//! * **RT units** per SM with bounded warp occupancy and ray-test
//!   throughput;
//! * **memory partitions**, each an L2 slice plus a bandwidth-limited DRAM
//!   channel, reached over a fixed-latency interconnect with line-granular
//!   address interleaving;
//! * **SIMT warps** of 32 threads executing abstract op streams with
//!   warp-level memory coalescing.
//!
//! Timing is event-driven at warp-phase granularity with cycle-resolution
//! resource accounting (issue ports, RT slots, L2 pipelines, DRAM buses), a
//! standard fast-simulation compromise: latency, bandwidth and occupancy
//! effects — the mechanisms every Zatel result depends on — are modeled
//! explicitly, while instruction fetch/decode detail is abstracted into op
//! costs.
//!
//! The simulated configuration is fully parametric ([`GpuConfig`]), with
//! the paper's Table II presets ([`GpuConfig::mobile_soc`],
//! [`GpuConfig::rtx_2060`]) and the proportional downscaling Zatel needs
//! ([`GpuConfig::downscaled`]).
//!
//! ## Quick start
//!
//! ```
//! use gpusim::{GpuConfig, Simulator};
//! use gpusim::workload::{Op, ScriptedWorkload};
//!
//! // 4096 threads each load one value and do some math.
//! let workload = ScriptedWorkload::per_thread(4096, |i| vec![
//!     Op::Load { addr: i * 16, bytes: 16 },
//!     Op::Compute { cycles: 12, insts: 12 },
//! ]);
//! let stats = Simulator::new(GpuConfig::mobile_soc()).run(&workload);
//! println!("IPC = {:.2}, L1 miss rate = {:.2}", stats.ipc(), stats.l1_miss_rate());
//! ```

#![warn(missing_docs)]

pub mod config;
mod core;
mod engine;
mod gpu;
pub mod hooks;
pub mod mem;
#[cfg(zatel_schedule_test)]
pub mod schedule;
pub mod stats;
pub mod telemetry;
pub mod workload;

pub use config::{gcd, CacheConfig, DownscaleError, GpuConfig};
pub use gpu::Simulator;
pub use hooks::{
    CacheLevel, NullHooks, PhaseClass, SimHooks, TraceCounters, TraceHooks, TraceSlice,
};
pub use stats::{CombineRule, Metric, SimStats};
pub use telemetry::{DepthHistogram, ShardTelemetry, SimTelemetry};
pub use workload::{MemSpace, Op, ThreadProgram, Workload};
