//! Workload abstraction: what the simulated GPU executes.
//!
//! A [`Workload`] is a grid of threads (one per pixel for ray tracing); each
//! thread is a lazy [`ThreadProgram`] yielding abstract operations ([`Op`]).
//! The simulator groups threads into warps, executes ops in SIMT phases and
//! charges their latency/bandwidth to the modeled hardware.

/// Memory space an access belongs to; determines which units handle it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemSpace {
    /// Regular global-memory traffic through the LSU.
    Global,
    /// BVH node / primitive fetches issued by the RT unit.
    RtData,
}

/// One abstract operation of a thread program.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Op {
    /// ALU work taking `cycles` pipelined cycles and representing `insts`
    /// scalar instructions.
    Compute {
        /// Pipelined execution cycles.
        cycles: u32,
        /// Scalar instruction count for IPC accounting.
        insts: u32,
    },
    /// Global-memory load of `bytes` at `addr`.
    Load {
        /// Byte address.
        addr: u64,
        /// Access size in bytes.
        bytes: u32,
    },
    /// Global-memory store (fire-and-forget, consumes bandwidth only).
    Store {
        /// Byte address.
        addr: u64,
        /// Access size in bytes.
        bytes: u32,
    },
    /// RT-unit BVH node fetch plus child box tests.
    RtNode {
        /// Node address.
        addr: u64,
    },
    /// RT-unit primitive fetch plus intersection test.
    RtPrim {
        /// Primitive address.
        addr: u64,
    },
}

impl Op {
    /// Scalar instructions this op contributes to the IPC metric.
    pub fn instructions(&self) -> u64 {
        match self {
            Op::Compute { insts, .. } => *insts as u64,
            Op::Load { .. } | Op::Store { .. } => 1,
            // Node fetch + two box tests ≈ 3 accelerator micro-ops.
            Op::RtNode { .. } => 3,
            // Primitive fetch + intersection test.
            Op::RtPrim { .. } => 2,
        }
    }

    /// Returns `true` for operations the RT accelerator executes.
    pub fn is_rt(&self) -> bool {
        matches!(self, Op::RtNode { .. } | Op::RtPrim { .. })
    }

    /// Returns the memory access `(space, addr, bytes)` if the op touches
    /// memory.
    pub fn memory_access(&self) -> Option<(MemSpace, u64, u32)> {
        match *self {
            Op::Load { addr, bytes } | Op::Store { addr, bytes } => {
                Some((MemSpace::Global, addr, bytes))
            }
            Op::RtNode { addr } => Some((MemSpace::RtData, addr, 32)),
            Op::RtPrim { addr } => Some((MemSpace::RtData, addr, 64)),
            Op::Compute { .. } => None,
        }
    }
}

/// A lazily evaluated per-thread instruction stream.
pub trait ThreadProgram {
    /// Advances the thread and returns its next operation, or `None` once
    /// the thread has exited.
    fn next_op(&mut self) -> Option<Op>;
}

/// A workload the simulator can launch: a fixed-size grid of threads.
///
/// Thread index order defines warp packing: threads `[i*warp_size,
/// (i+1)*warp_size)` form warp `i`.
///
/// The `Sync` bound exists for the sharded engine
/// ([`GpuConfig::sim_threads`](crate::GpuConfig) > 1), whose decode shards
/// instantiate thread programs from multiple OS threads concurrently.
pub trait Workload: Sync {
    /// Total number of threads in the grid.
    fn thread_count(&self) -> u64;

    /// Instantiates the program for thread `index`.
    ///
    /// Must be a pure function of `index`: the sharded engine decodes ahead
    /// of the timing model, so a thread's program may be instantiated well
    /// before its warp becomes resident (and programs for many warps may
    /// exist simultaneously). The serial engine still creates each program
    /// exactly once, when its warp launches.
    fn create_thread(&self, index: u64) -> Box<dyn ThreadProgram + '_>;
}

/// A scripted thread whose ops come from a pre-built list. The workhorse of
/// unit tests and micro-benchmarks.
#[derive(Debug, Clone)]
pub struct ScriptedThread {
    ops: std::vec::IntoIter<Op>,
}

impl ScriptedThread {
    /// Creates a thread that will yield `ops` in order.
    pub fn new(ops: Vec<Op>) -> Self {
        ScriptedThread {
            ops: ops.into_iter(),
        }
    }
}

impl ThreadProgram for ScriptedThread {
    fn next_op(&mut self) -> Option<Op> {
        self.ops.next()
    }
}

/// A test workload where every thread runs a copy of the same script, or a
/// per-thread script chosen by a closure.
pub struct ScriptedWorkload {
    threads: u64,
    script: Box<dyn Fn(u64) -> Vec<Op> + Sync>,
}

impl std::fmt::Debug for ScriptedWorkload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ScriptedWorkload")
            .field("threads", &self.threads)
            .finish()
    }
}

impl ScriptedWorkload {
    /// All threads execute the same `ops`.
    pub fn uniform(threads: u64, ops: Vec<Op>) -> Self {
        ScriptedWorkload {
            threads,
            script: Box::new(move |_| ops.clone()),
        }
    }

    /// Thread `i` executes `f(i)`.
    pub fn per_thread<F: Fn(u64) -> Vec<Op> + Sync + 'static>(threads: u64, f: F) -> Self {
        ScriptedWorkload {
            threads,
            script: Box::new(f),
        }
    }
}

impl Workload for ScriptedWorkload {
    fn thread_count(&self) -> u64 {
        self.threads
    }

    fn create_thread(&self, index: u64) -> Box<dyn ThreadProgram + '_> {
        Box::new(ScriptedThread::new((self.script)(index)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_instruction_counts() {
        assert_eq!(
            Op::Compute {
                cycles: 10,
                insts: 7
            }
            .instructions(),
            7
        );
        assert_eq!(Op::Load { addr: 0, bytes: 4 }.instructions(), 1);
        assert_eq!(Op::RtNode { addr: 0 }.instructions(), 3);
        assert_eq!(Op::RtPrim { addr: 0 }.instructions(), 2);
    }

    #[test]
    fn op_classification() {
        assert!(Op::RtNode { addr: 0 }.is_rt());
        assert!(!Op::Load { addr: 0, bytes: 4 }.is_rt());
        assert_eq!(
            Op::RtNode { addr: 96 }.memory_access(),
            Some((MemSpace::RtData, 96, 32))
        );
        assert_eq!(
            Op::Compute {
                cycles: 1,
                insts: 1
            }
            .memory_access(),
            None
        );
        assert_eq!(
            Op::Store { addr: 4, bytes: 16 }.memory_access(),
            Some((MemSpace::Global, 4, 16))
        );
    }

    #[test]
    fn scripted_thread_yields_in_order() {
        let mut t = ScriptedThread::new(vec![
            Op::Compute {
                cycles: 1,
                insts: 1,
            },
            Op::Load { addr: 8, bytes: 4 },
        ]);
        assert!(matches!(t.next_op(), Some(Op::Compute { .. })));
        assert!(matches!(t.next_op(), Some(Op::Load { .. })));
        assert!(t.next_op().is_none());
        assert!(t.next_op().is_none(), "stays exhausted");
    }

    #[test]
    fn scripted_workload_per_thread() {
        let w = ScriptedWorkload::per_thread(4, |i| {
            vec![Op::Compute {
                cycles: i as u32 + 1,
                insts: 1,
            }]
        });
        assert_eq!(w.thread_count(), 4);
        let mut t3 = w.create_thread(3);
        assert_eq!(
            t3.next_op(),
            Some(Op::Compute {
                cycles: 4,
                insts: 1
            })
        );
    }
}
