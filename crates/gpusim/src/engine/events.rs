//! The engine's event heap: warp wake-ups ordered by time, oldest warp
//! first on ties.

use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// One scheduled warp wake-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Event {
    /// Cycle at which the warp is ready to issue its next phase.
    pub time: u64,
    /// Warp age: ties broken oldest-first (greedy-then-oldest flavour).
    pub warp_id: u64,
    /// Which SM the warp lives on.
    pub sm: usize,
    /// Index into the SM's warp-slot table.
    pub slot: usize,
}

impl Ord for Event {
    /// The engine's documented total order: **(time, sequence, shard-rank,
    /// slot)**, where the sequence is the warp's launch age (`warp_id`) and
    /// the shard-rank is the owning SM's index. This is a total order over
    /// every event the engine can ever schedule — two live events never
    /// compare equal, because a warp occupies one slot at a time — so pop
    /// order can never depend on heap-insertion incidentals, and merging
    /// per-shard traffic sorts identically regardless of which shard
    /// produced an event. Spelled out (rather than derived) because the
    /// field order above is load-bearing for cross-shard determinism.
    fn cmp(&self, other: &Self) -> Ordering {
        (self.time, self.warp_id, self.sm, self.slot).cmp(&(
            other.time,
            other.warp_id,
            other.sm,
            other.slot,
        ))
    }
}

impl PartialOrd for Event {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Min-heap of [`Event`]s. Pop order is the engine's global time order and
/// the sole source of scheduling nondeterminism — which is why [`Event`]'s
/// explicit `Ord` defines the full (time, sequence, shard-rank, slot)
/// total order rather than stopping at `time`.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Schedules a wake-up.
    pub fn push(&mut self, ev: Event) {
        self.heap.push(Reverse(ev));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(ev)| ev)
    }

    /// The earliest event without removing it (the timing-sharded engine
    /// peeks to decide whether popping is order-safe before committing).
    pub fn peek(&self) -> Option<&Event> {
        self.heap.peek().map(|Reverse(ev)| ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, warp_id: u64) -> Event {
        Event {
            time,
            warp_id,
            sm: 0,
            slot: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(ev(30, 0));
        q.push(ev(10, 1));
        q.push(ev(20, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_oldest_warp_first() {
        let mut q = EventQueue::new();
        q.push(ev(5, 7));
        q.push(ev(5, 2));
        q.push(ev(5, 4));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.warp_id).collect();
        assert_eq!(order, vec![2, 4, 7]);
    }

    #[test]
    fn empty_queue_pops_none() {
        assert_eq!(EventQueue::new().pop(), None);
    }

    #[test]
    fn order_is_time_then_sequence_then_shard_rank_then_slot() {
        let e = |time, warp_id, sm, slot| Event {
            time,
            warp_id,
            sm,
            slot,
        };
        // Each successive event differs in exactly one field of the
        // documented (time, sequence, shard-rank, slot) order.
        let ordered = [
            e(1, 9, 9, 9),
            e(2, 0, 9, 9),
            e(2, 1, 0, 9),
            e(2, 1, 1, 0),
            e(2, 1, 1, 1),
        ];
        for pair in ordered.windows(2) {
            assert!(pair[0] < pair[1], "{pair:?} must be strictly increasing");
        }
        // Insertion order must not leak into pop order.
        let mut q = EventQueue::new();
        for ev in ordered.iter().rev() {
            q.push(*ev);
        }
        let popped: Vec<Event> = std::iter::from_fn(|| q.pop()).collect();
        assert_eq!(popped, ordered);
    }
}
