//! The engine's event heap: warp wake-ups ordered by time, oldest warp
//! first on ties.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One scheduled warp wake-up.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub(crate) struct Event {
    /// Cycle at which the warp is ready to issue its next phase.
    pub time: u64,
    /// Warp age: ties broken oldest-first (greedy-then-oldest flavour).
    pub warp_id: u64,
    /// Which SM the warp lives on.
    pub sm: usize,
    /// Index into the SM's resident vector.
    pub slot: usize,
}

/// Min-heap of [`Event`]s. Pop order is the engine's global time order and
/// the sole source of scheduling nondeterminism — which is why the derived
/// `Ord` includes `warp_id`/`sm`/`slot` as deterministic tie-breakers.
#[derive(Debug, Default)]
pub(crate) struct EventQueue {
    heap: BinaryHeap<Reverse<Event>>,
}

impl EventQueue {
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
        }
    }

    /// Schedules a wake-up.
    pub fn push(&mut self, ev: Event) {
        self.heap.push(Reverse(ev));
    }

    /// Removes and returns the earliest event, if any.
    pub fn pop(&mut self) -> Option<Event> {
        self.heap.pop().map(|Reverse(ev)| ev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(time: u64, warp_id: u64) -> Event {
        Event {
            time,
            warp_id,
            sm: 0,
            slot: 0,
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(ev(30, 0));
        q.push(ev(10, 1));
        q.push(ev(20, 2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.time).collect();
        assert_eq!(order, vec![10, 20, 30]);
    }

    #[test]
    fn ties_break_oldest_warp_first() {
        let mut q = EventQueue::new();
        q.push(ev(5, 7));
        q.push(ev(5, 2));
        q.push(ev(5, 4));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop()).map(|e| e.warp_id).collect();
        assert_eq!(order, vec![2, 4, 7]);
    }

    #[test]
    fn empty_queue_pops_none() {
        assert_eq!(EventQueue::new().pop(), None);
    }
}
