//! The interconnect seam between decode shards and the commit loop.
//!
//! A [`ShardRouter`] owns one [seam](SeamState) per shard. Decode shards
//! publish decoded phases into their seam; the commit loop drains them in
//! its own deterministic order. All cross-thread traffic in the engine
//! flows through this one module (together with the thread lifecycle in
//! [`epoch`](super::epoch)) — nothing else in result-affecting code may
//! spawn threads or pass data between them, and `zatel-lint`'s
//! `thread-seam` rule enforces exactly that.
//!
//! # Epoch protocol
//!
//! A shard does not free-run: it may decode ahead of the commit loop only
//! within a bounded window, and blocks at the seam barrier once the window
//! is full. The window advances — an *epoch boundary* — whenever the commit
//! loop consumes from the seam ([`ShardRouter::take_phases`]) or launches
//! one of the shard's warps ([`ShardRouter::note_launched`]): each bumps
//! the seam's epoch counter and wakes the shard, which re-derives what it
//! may decode next. The commit loop symmetrically blocks in `take_phases`
//! until the shard publishes the warp it needs. Determinism does not depend
//! on any of this timing: phases are keyed and ordered per warp, and the
//! commit loop alone decides the global interleaving.

use super::sync::{Condvar, Mutex, MutexGuard};
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};

use super::decode::DecodedPhase;

/// Decode-ahead window per warp: a shard stops decoding a warp once this
/// many phases sit unconsumed in its seam, resuming when the commit loop
/// drains them. Bounds seam memory to `O(warps x MAX_BUFFERED)` phases.
pub(crate) const MAX_BUFFERED: usize = 64;

/// Per-shard seam state, guarded by the shard's mutex.
#[derive(Debug, Default)]
struct SeamState {
    /// Decoded phases per warp id, in decode order, not yet taken by the
    /// commit loop. A warp's final phase is always `Retire`; the entry is
    /// removed when taken.
    queues: BTreeMap<u64, VecDeque<DecodedPhase>>,
    /// Warps launched so far per owned SM (local index), maintained by the
    /// commit loop. The shard's admission watermark: it may decode a warp
    /// whose position in its SM's launch list is below
    /// `launched + lookahead`.
    launched: Vec<u64>,
    /// Epoch counter: bumped on every commit-side consume or launch. The
    /// shard's wait ticket — it re-derives its decodable set whenever the
    /// epoch advances, so a wake-up can never be lost.
    epoch: u64,
    /// Set once the shard has decoded every warp it owns to retirement.
    done: bool,
}

/// One shard's seam: the state plus its two wake-up channels.
#[derive(Debug, Default)]
struct Seam {
    state: Mutex<SeamState>,
    /// Wakes the decode shard (epoch advanced / abort).
    producer_cv: Condvar,
    /// Wakes the commit loop (phases published / shard done / abort).
    commit_cv: Condvar,
}

/// The seam set for one sharded run.
#[derive(Debug)]
pub(crate) struct ShardRouter {
    seams: Vec<Seam>,
    /// Poisoned on panic (either side) so no thread waits forever.
    aborted: AtomicBool,
}

impl ShardRouter {
    /// Creates the seams; `sms_per_shard[s]` is the number of SMs shard `s`
    /// owns.
    pub fn new(sms_per_shard: &[usize]) -> Self {
        ShardRouter {
            seams: sms_per_shard
                .iter()
                .map(|&sms| Seam {
                    state: Mutex::new(SeamState {
                        launched: vec![0; sms],
                        ..SeamState::default()
                    }),
                    ..Seam::default()
                })
                .collect(),
            aborted: AtomicBool::new(false),
        }
    }

    fn lock(&self, shard: usize) -> MutexGuard<'_, SeamState> {
        // zatel-lint: allow(panic-hygiene, reason = "a poisoned seam mutex means a sibling sim thread already panicked; propagating is the only sound option")
        self.seams[shard].state.lock().expect("seam mutex poisoned")
    }

    /// Poisons the run: wakes every waiter on every seam so a panicking
    /// thread cannot strand the others. Idempotent.
    pub fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
        for seam in &self.seams {
            drop(seam.state.lock());
            seam.producer_cv.notify_all();
            seam.commit_cv.notify_all();
        }
    }

    /// Whether the run has been poisoned by a panic on some thread.
    pub fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    // --- Commit side ----------------------------------------------------

    /// Records that the commit loop launched a warp on local SM
    /// `sm_in_shard` of `shard`: advances the admission watermark, which is
    /// an epoch boundary for the shard.
    pub fn note_launched(&self, shard: usize, sm_in_shard: usize) {
        let mut state = self.lock(shard);
        state.launched[sm_in_shard] += 1;
        state.epoch += 1;
        drop(state);
        self.seams[shard].producer_cv.notify_all();
    }

    /// Takes everything the shard has published for `warp_id`, blocking
    /// until at least one phase is available. Consuming is an epoch
    /// boundary: the shard may refill the freed window.
    ///
    /// # Panics
    ///
    /// Panics if the run is aborted (a shard thread panicked) or the shard
    /// claims to be done while the commit loop still expects phases — both
    /// are unrecoverable protocol violations.
    pub fn take_phases(&self, shard: usize, warp_id: u64) -> VecDeque<DecodedPhase> {
        let mut state = self.lock(shard);
        loop {
            if self.is_aborted() {
                // zatel-lint: allow(panic-hygiene, reason = "a sibling sim thread panicked; unwinding the commit loop is the only way to propagate it")
                panic!("sharded simulation aborted: a decode shard panicked");
            }
            match state.queues.remove(&warp_id) {
                Some(q) if !q.is_empty() => {
                    state.epoch += 1;
                    drop(state);
                    self.seams[shard].producer_cv.notify_all();
                    return q;
                }
                _ => {
                    // Protocol invariant: a done shard has queued Retire
                    // for every owned warp, so an empty queue here is a
                    // bug worth crashing on.
                    assert!(
                        !state.done,
                        "shard {shard} done but warp {warp_id} has no phases"
                    );
                    let cv = &self.seams[shard].commit_cv;
                    // zatel-lint: allow(panic-hygiene, reason = "see seam mutex waiver above: poisoning implies a sibling panic")
                    state = cv.wait(state).expect("seam mutex poisoned");
                }
            }
        }
    }

    // --- Shard (producer) side ------------------------------------------

    /// Snapshot of the admission state the shard plans its next decode
    /// round from: watermarks, per-warp buffered counts and the epoch
    /// ticket for [`ShardRouter::wait_for_epoch`].
    pub fn admission(&self, shard: usize) -> Admission {
        let state = self.lock(shard);
        Admission {
            launched: state.launched.clone(),
            buffered: state.queues.iter().map(|(&w, q)| (w, q.len())).collect(),
            epoch: state.epoch,
        }
    }

    /// Publishes decoded `phases` for `warp_id` and wakes the commit loop.
    pub fn publish(&self, shard: usize, warp_id: u64, phases: Vec<DecodedPhase>) {
        let mut state = self.lock(shard);
        state.queues.entry(warp_id).or_default().extend(phases);
        drop(state);
        self.seams[shard].commit_cv.notify_all();
    }

    /// Marks the shard as fully decoded and wakes the commit loop.
    pub fn finish(&self, shard: usize) {
        let mut state = self.lock(shard);
        state.done = true;
        drop(state);
        self.seams[shard].commit_cv.notify_all();
    }

    /// Blocks the shard until the epoch advances past `seen` (or the run
    /// aborts). Returns `false` if the run aborted.
    pub fn wait_for_epoch(&self, shard: usize, seen: u64) -> bool {
        let mut state = self.lock(shard);
        let cv = &self.seams[shard].producer_cv;
        while state.epoch == seen && !self.is_aborted() {
            // zatel-lint: allow(panic-hygiene, reason = "see seam mutex waiver above: poisoning implies a sibling panic")
            state = cv.wait(state).expect("seam mutex poisoned");
        }
        !self.is_aborted()
    }
}

/// Poisons the router if the owning thread unwinds, so the threads on the
/// other side of the seam cannot block forever on a dead peer. Held by
/// every shard worker and by the commit loop.
pub(crate) struct AbortOnPanic<'r>(pub &'r ShardRouter);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.abort();
        }
    }
}

/// A shard's view of what it may decode next (see
/// [`ShardRouter::admission`]).
#[derive(Debug)]
pub(crate) struct Admission {
    /// Commit-side launch count per owned SM (local index).
    pub launched: Vec<u64>,
    /// Unconsumed phase count per warp currently in the seam.
    pub buffered: BTreeMap<u64, usize>,
    /// Epoch ticket: pass to [`ShardRouter::wait_for_epoch`] when no
    /// decode is admissible, guaranteeing a lost-wakeup-free sleep.
    pub epoch: u64,
}

impl Admission {
    /// Phases of `warp_id` sitting unconsumed in the seam.
    pub fn buffered_of(&self, warp_id: u64) -> usize {
        self.buffered.get(&warp_id).copied().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::sm::PhaseMix;

    fn mix(instructions: u64) -> DecodedPhase {
        DecodedPhase::Mix(PhaseMix {
            instructions,
            ..PhaseMix::default()
        })
    }

    #[test]
    fn publish_take_roundtrip_preserves_order() {
        let router = ShardRouter::new(&[1]);
        router.publish(0, 7, vec![mix(1), mix(2)]);
        router.publish(0, 7, vec![DecodedPhase::Retire]);
        let q = router.take_phases(0, 7);
        assert_eq!(
            q.into_iter().collect::<Vec<_>>(),
            vec![mix(1), mix(2), DecodedPhase::Retire]
        );
    }

    #[test]
    fn take_bumps_epoch_and_admission_sees_watermark() {
        let router = ShardRouter::new(&[2]);
        let before = router.admission(0);
        assert_eq!(before.launched, vec![0, 0]);
        router.note_launched(0, 1);
        router.publish(0, 3, vec![mix(1)]);
        let mid = router.admission(0);
        assert_eq!(mid.launched, vec![0, 1]);
        assert_eq!(mid.buffered_of(3), 1);
        assert!(mid.epoch > before.epoch, "launch advanced the epoch");
        router.take_phases(0, 3);
        let after = router.admission(0);
        assert_eq!(after.buffered_of(3), 0);
        assert!(after.epoch > mid.epoch, "consume advanced the epoch");
    }

    #[test]
    fn wait_for_epoch_returns_immediately_when_stale() {
        let router = ShardRouter::new(&[1]);
        let ticket = router.admission(0).epoch;
        router.note_launched(0, 0);
        assert!(router.wait_for_epoch(0, ticket), "epoch already advanced");
    }

    #[test]
    fn abort_unblocks_waiters() {
        let router = ShardRouter::new(&[1]);
        router.abort();
        assert!(!router.wait_for_epoch(0, 0));
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            router.take_phases(0, 0);
        }));
        assert!(caught.is_err(), "take_phases must panic on an aborted run");
    }
}
