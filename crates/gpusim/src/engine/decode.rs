//! The decode seam: where warp instruction streams turn into categorized
//! phases, independent of the timing model.
//!
//! The engine's event loop ([`Engine`](super::Engine)) consumes
//! [`DecodedPhase`]s through the [`PhaseSource`] trait. Decoding a phase —
//! advancing every live lane of a warp one op and categorizing the gather
//! into a [`PhaseMix`] — is a pure function of the workload and the line
//! size; it touches no shared timing state. That purity is what the sharded
//! engine exploits: decode runs ahead on shard threads while the single
//! commit loop replays phases in exact serial order.
//!
//! [`SerialSource`] is the `sim_threads = 1` implementation: it decodes
//! inline, at the moment the commit loop asks, reproducing the historical
//! monolithic engine's call order exactly.

use crate::core::warp::Warp;
use crate::workload::Workload;

use super::sm::PhaseMix;

/// One decoded warp phase as consumed by the commit loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum DecodedPhase {
    /// A non-empty phase: the warp issues this categorized op mix.
    Mix(PhaseMix),
    /// Every lane has exited; the warp retires. Always the final phase of
    /// a warp's stream.
    Retire,
}

/// Supplies decoded phases to the engine's commit loop.
///
/// The engine drives the source with the exact warp schedule it commits:
/// [`PhaseSource::on_launch`] when a warp enters a slot, then one
/// [`PhaseSource::next_phase`] per wake-up event until the source returns
/// [`DecodedPhase::Retire`]. Implementations may decode eagerly (shards) or
/// lazily (serial), but the phases returned for a given warp must be the
/// warp's decode stream in order — that alone guarantees the commit loop's
/// results are independent of *when* decoding happened.
pub(crate) trait PhaseSource {
    /// Warp `warp_id`, covering threads `[first_thread, first_thread +
    /// lanes)`, was launched into `slot` on `sm`.
    fn on_launch(&mut self, sm: usize, slot: usize, warp_id: u64, first_thread: u64, lanes: u32);

    /// Returns the next decoded phase of warp `warp_id`, resident in
    /// `(sm, slot)`. Never called again for a warp after it returned
    /// [`DecodedPhase::Retire`].
    fn next_phase(&mut self, sm: usize, slot: usize, warp_id: u64) -> DecodedPhase;
}

/// The serial decode path: warps are instantiated at launch and decoded
/// inline when the commit loop asks — byte-for-byte the behavior of the
/// pre-shard monolithic engine.
pub(crate) struct SerialSource<'w> {
    workload: &'w dyn Workload,
    line_bytes: u32,
    /// Resident warps, indexed `[sm][slot]`. Slots are dense and stable:
    /// a retired warp's slot is reused by its backfill.
    warps: Vec<Vec<Option<Warp<'w>>>>,
}

impl<'w> SerialSource<'w> {
    pub fn new(workload: &'w dyn Workload, num_sms: usize, line_bytes: u32) -> Self {
        SerialSource {
            workload,
            line_bytes,
            warps: (0..num_sms).map(|_| Vec::new()).collect(),
        }
    }
}

impl PhaseSource for SerialSource<'_> {
    fn on_launch(&mut self, sm: usize, slot: usize, warp_id: u64, first_thread: u64, lanes: u32) {
        let warp = Warp::new(self.workload, warp_id, sm, first_thread, lanes);
        let slots = &mut self.warps[sm];
        if slot == slots.len() {
            slots.push(Some(warp));
        } else {
            slots[slot] = Some(warp);
        }
    }

    fn next_phase(&mut self, sm: usize, slot: usize, _warp_id: u64) -> DecodedPhase {
        let slot_ref = &mut self.warps[sm][slot];
        // zatel-lint: allow(panic-hygiene, reason = "engine invariant: next_phase is only called for slots the engine launched into and never after Retire")
        let warp = slot_ref.as_mut().expect("phase for a vacant warp slot");
        let phase = decode_one(warp, self.line_bytes);
        if phase == DecodedPhase::Retire {
            *slot_ref = None;
        }
        phase
    }
}

/// Decodes one phase of `warp`: gathers ops from every live lane and
/// categorizes them, or signals retirement (the caller drops the warp).
/// Shared by the serial and sharded paths so their decode streams are
/// identical by construction.
pub(crate) fn decode_one(warp: &mut Warp<'_>, line_bytes: u32) -> DecodedPhase {
    let ops = warp.gather_phase();
    if ops.is_empty() {
        DecodedPhase::Retire
    } else {
        DecodedPhase::Mix(PhaseMix::categorize(&ops, line_bytes))
    }
}

/// A warp's launch geometry, shared by the commit loop's `launch_grid` and
/// the decode shards (both must deal warps to SMs identically).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct WarpDesc {
    /// Global warp id (launch order).
    pub id: u64,
    /// First covered thread index.
    pub first_thread: u64,
    /// Live lanes (partial for the grid's last warp).
    pub lanes: u32,
}

/// Deals the grid's warps to SMs with the fixed `warp % num_sms` stride,
/// mirroring how 2D thread-block rasterization deals consecutive image
/// tiles to different SMs: each SM ends up owning a spatially coherent
/// strided sample of the frame, which is what gives real GPUs their per-SM
/// L1 locality. Returns one launch list per SM, in launch order.
pub(crate) fn deal_warps(threads: u64, warp_size: u32, num_sms: usize) -> Vec<Vec<WarpDesc>> {
    let warp_size = warp_size as u64;
    let mut lists: Vec<Vec<WarpDesc>> = (0..num_sms).map(|_| Vec::new()).collect();
    let total_warps = threads.div_ceil(warp_size);
    for w in 0..total_warps {
        let first = w * warp_size;
        lists[(w % num_sms as u64) as usize].push(WarpDesc {
            id: w,
            first_thread: first,
            lanes: (threads - first).min(warp_size) as u32,
        });
    }
    lists
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{Op, ScriptedWorkload};

    #[test]
    fn serial_source_decodes_until_retire() {
        let w = ScriptedWorkload::uniform(
            4,
            vec![
                Op::Compute {
                    cycles: 2,
                    insts: 2,
                },
                Op::Load { addr: 0, bytes: 4 },
            ],
        );
        let mut src = SerialSource::new(&w, 1, 128);
        src.on_launch(0, 0, 0, 0, 4);
        match src.next_phase(0, 0, 0) {
            DecodedPhase::Mix(mix) => {
                assert_eq!(mix.compute_cycles, 2);
                assert_eq!(mix.instructions, 8, "4 lanes x 2 insts");
            }
            other => panic!("expected a compute phase, got {other:?}"),
        }
        match src.next_phase(0, 0, 0) {
            DecodedPhase::Mix(mix) => assert_eq!(mix.load_lines, vec![0]),
            other => panic!("expected a load phase, got {other:?}"),
        }
        assert_eq!(src.next_phase(0, 0, 0), DecodedPhase::Retire);
        // The slot is vacated and immediately reusable by a backfill.
        src.on_launch(0, 0, 1, 0, 4);
        assert!(matches!(src.next_phase(0, 0, 1), DecodedPhase::Mix(_)));
    }

    #[test]
    fn deal_warps_strides_and_splits_the_tail() {
        let lists = deal_warps(100, 32, 3);
        // 4 warps: ids 0..4, dealt round-robin over 3 SMs.
        assert_eq!(lists[0].len(), 2);
        assert_eq!(lists[1].len(), 1);
        assert_eq!(lists[2].len(), 1);
        assert_eq!(lists[0][0].id, 0);
        assert_eq!(lists[1][0].id, 1);
        assert_eq!(lists[2][0].id, 2);
        assert_eq!(lists[0][1].id, 3);
        assert_eq!(lists[0][1].first_thread, 96);
        assert_eq!(lists[0][1].lanes, 4, "100 threads: last warp is partial");
    }
}
