//! The event-driven commit loop: launches the grid, steps warps through
//! their SIMT phases and collects the final statistics.
//!
//! The loop itself is the engine's single serialization point. It pulls
//! decoded phases through a [`PhaseSource`] — inline for the serial engine,
//! from decode shards for the sharded one — and charges them to the shared
//! timing state (issue ports, RT units, memory hierarchy) strictly in
//! [`EventQueue`] pop order. Because every timing decision and every hook
//! call happens here, in that one deterministic order, results are
//! bit-identical regardless of how many threads fed the source.

use crate::config::GpuConfig;
use crate::hooks::{PhaseClass, SimHooks};
use crate::mem::MemoryHierarchy;
use crate::stats::SimStats;
use crate::telemetry::TimingTelemetry;

use super::decode::{deal_warps, DecodedPhase, PhaseSource};
use super::events::{Event, EventQueue};
use super::sm::SmState;
use super::timing;

/// Cycles between a warp slot freeing and the replacement warp's first issue.
pub(super) const WARP_LAUNCH_LATENCY: u64 = 4;

/// One simulation run in flight: the configuration, all mutable machine
/// state and the observer. Generic over the hook type so the cycle path
/// monomorphizes — [`NullHooks`](crate::hooks::NullHooks) compiles to
/// exactly the pre-seam engine. Fields are `pub(super)` so the
/// timing-sharded commit loop ([`super::timing`]) can drive the same state.
pub(crate) struct Engine<'w, H: SimHooks> {
    pub(super) config: &'w GpuConfig,
    pub(super) mem: MemoryHierarchy,
    pub(super) sms: Vec<SmState>,
    pub(super) events: EventQueue,
    pub(super) stats: SimStats,
    pub(super) max_time: u64,
    pub(super) hooks: &'w mut H,
}

impl<'w, H: SimHooks> Engine<'w, H> {
    pub fn new(config: &'w GpuConfig, hooks: &'w mut H) -> Self {
        let mem = MemoryHierarchy::new(config);
        let sms = (0..config.num_sms).map(|_| SmState::new(config)).collect();
        Engine {
            config,
            mem,
            sms,
            events: EventQueue::new(),
            stats: SimStats::default(),
            max_time: 0,
            hooks,
        }
    }

    /// Runs a grid of `threads` threads to completion, pulling decoded
    /// phases from `source`. With `timing_threads > 1` the memory
    /// partitions are dealt to timing workers (see [`super::timing`]) and
    /// the run's [`TimingTelemetry`] is returned alongside the
    /// bit-identical stats.
    pub fn run<S: PhaseSource>(
        mut self,
        threads: u64,
        source: &mut S,
    ) -> (SimStats, Option<TimingTelemetry>) {
        let timing = if timing::worker_count(self.config) > 0 {
            Some(timing::run_sharded(&mut self, threads, source))
        } else {
            self.launch_grid(threads, source);
            while let Some(ev) = self.events.pop() {
                self.step_warp(ev, source);
            }
            None
        };
        // The run ends when the last warp retires AND all write-back
        // traffic has drained from the DRAM channels.
        self.stats.cycles = self.max_time.max(self.mem.drain_time());
        self.stats.rt_warp_phases = self.sms.iter().map(|s| s.rt_unit.phases()).sum();
        self.stats.rt_active_rays = self.sms.iter().map(|s| s.rt_unit.active_rays()).sum();
        self.mem.export_stats(&mut self.stats);
        (self.stats, timing)
    }

    /// Deals warps to SMs (see [`deal_warps`]) and fills the initial warp
    /// slots.
    fn launch_grid<S: PhaseSource>(&mut self, threads: u64, source: &mut S) {
        self.stats.threads_launched = threads;
        let lists = deal_warps(threads, self.config.warp_size, self.sms.len());
        for (sm, list) in lists.into_iter().enumerate() {
            self.sms[sm].pending = list
                .into_iter()
                .map(|w| (w.id, w.first_thread, w.lanes))
                .collect();
        }
        for sm in 0..self.sms.len() {
            for _ in 0..self.config.max_warps_per_sm {
                if !self.try_launch(sm, 0, source) {
                    break;
                }
            }
        }
    }

    /// Launches the oldest warp pending on `sm` into a fresh slot at `t`.
    fn try_launch<S: PhaseSource>(&mut self, sm: usize, t: u64, source: &mut S) -> bool {
        let Some((id, first, lanes)) = self.sms[sm].pending.pop_front() else {
            return false;
        };
        let slot = self.sms[sm].slots_used;
        self.sms[sm].slots_used += 1;
        source.on_launch(sm, slot, id, first, lanes);
        self.hooks.on_warp_launch(sm, id, t);
        self.events.push(Event {
            time: t + WARP_LAUNCH_LATENCY,
            warp_id: id,
            sm,
            slot,
        });
        true
    }

    /// Executes one SIMT phase of a warp (or retires it).
    fn step_warp<S: PhaseSource>(&mut self, ev: Event, source: &mut S) {
        let mix = match source.next_phase(ev.sm, ev.slot, ev.warp_id) {
            DecodedPhase::Mix(mix) => mix,
            DecodedPhase::Retire => {
                // Retired: backfill the slot with this SM's oldest pending
                // warp. Slot indices must stay stable, so the replacement
                // reuses the retired warp's position.
                self.max_time = self.max_time.max(ev.time);
                self.hooks.on_warp_retire(ev.sm, ev.warp_id, ev.time);
                if let Some((id, first, lanes)) = self.sms[ev.sm].pending.pop_front() {
                    source.on_launch(ev.sm, ev.slot, id, first, lanes);
                    self.hooks.on_warp_launch(ev.sm, id, ev.time);
                    self.events.push(Event {
                        time: ev.time + WARP_LAUNCH_LATENCY,
                        warp_id: id,
                        sm: ev.sm,
                        slot: ev.slot,
                    });
                }
                return;
            }
        };
        self.stats.instructions += mix.instructions;
        self.stats.warp_issues += 1;

        // --- Issue arbitration --------------------------------------------
        let start = self.sms[ev.sm].issue_at(ev.time, mix.lsu_slots());

        // --- Timing of each category --------------------------------------
        self.stats.bound_issue_cycles += start - ev.time;
        let mut ready = start + 1;
        let compute_ready = start + mix.compute_cycles;
        ready = ready.max(compute_ready);
        let mut lsu_ready = start;
        for line in &mix.load_lines {
            lsu_ready = lsu_ready.max(self.mem.read_with(ev.sm, *line, start, self.hooks));
        }
        for line in &mix.store_lines {
            lsu_ready = lsu_ready.max(self.mem.write_with(ev.sm, *line, start, self.hooks));
        }
        ready = ready.max(lsu_ready);
        let mut rt_ready = start;
        if mix.rt_rays > 0 {
            let sm_state = &mut self.sms[ev.sm];
            let (slot, rt_start) = sm_state.rt_unit.acquire(start);
            let occupancy = sm_state.rt_unit.occupancy_cycles(mix.rt_rays);
            // The warp occupies a tester slot only while its rays are being
            // box/primitive-tested; node and primitive fetches park in the
            // RT unit's MSHR (Table II: 64 entries) so other warps can use
            // the testers during the memory round trip. The warp itself
            // still waits for its data before the next phase.
            sm_state
                .rt_unit
                .complete(slot, rt_start + occupancy, mix.rt_rays);
            self.hooks.on_rt_phase(
                ev.sm,
                mix.rt_rays,
                mix.rt_lines.len() as u32,
                rt_start,
                occupancy,
            );
            let mut rt_done = rt_start + occupancy;
            for line in &mix.rt_lines {
                rt_done = rt_done.max(self.mem.read_with(ev.sm, *line, rt_start, self.hooks));
            }
            rt_ready = rt_done;
            ready = ready.max(rt_done);
        }

        // CPI-stack attribution: the phase's exposed time goes to whichever
        // component formed the critical path.
        let span = ready - start;
        let class = if rt_ready >= ready {
            self.stats.bound_rt_cycles += span;
            PhaseClass::Rt
        } else if lsu_ready >= ready {
            self.stats.bound_memory_cycles += span;
            PhaseClass::Memory
        } else {
            self.stats.bound_compute_cycles += span;
            PhaseClass::Compute
        };
        self.hooks
            .on_phase_issue(ev.sm, ev.warp_id, class, start, ready);

        self.max_time = self.max_time.max(ready);
        self.events.push(Event {
            time: ready,
            warp_id: ev.warp_id,
            sm: ev.sm,
            slot: ev.slot,
        });
    }
}

#[cfg(test)]
mod tests {
    use crate::config::GpuConfig;
    use crate::gpu::Simulator;
    use crate::hooks::TraceHooks;
    use crate::workload::{Op, ScriptedWorkload};

    fn mobile() -> Simulator {
        Simulator::new(GpuConfig::mobile_soc())
    }

    #[test]
    fn empty_workload_finishes_instantly() {
        let w = ScriptedWorkload::uniform(0, vec![]);
        let stats = mobile().run(&w);
        assert_eq!(stats.cycles, 0);
        assert_eq!(stats.instructions, 0);
    }

    #[test]
    fn single_warp_compute_only() {
        let w = ScriptedWorkload::uniform(
            32,
            vec![Op::Compute {
                cycles: 10,
                insts: 10,
            }],
        );
        let stats = mobile().run(&w);
        assert_eq!(stats.instructions, 320);
        assert!(stats.cycles >= 10);
        assert!(
            stats.cycles < 100,
            "one compute phase should be quick, got {}",
            stats.cycles
        );
        assert_eq!(stats.l1_accesses, 0);
    }

    #[test]
    fn coalesced_loads_generate_one_transaction() {
        // All 32 lanes load the same address: one line, one L1 access.
        let w = ScriptedWorkload::uniform(
            32,
            vec![Op::Load {
                addr: 4096,
                bytes: 4,
            }],
        );
        let stats = mobile().run(&w);
        assert_eq!(stats.l1_accesses, 1);
        assert_eq!(stats.l1_misses, 1);
        assert_eq!(stats.dram_transactions, 1);
    }

    #[test]
    fn divergent_loads_generate_many_transactions() {
        let w = ScriptedWorkload::per_thread(32, |i| {
            vec![Op::Load {
                addr: i * 4096,
                bytes: 4,
            }]
        });
        let stats = mobile().run(&w);
        assert_eq!(stats.l1_accesses, 32, "32 distinct lines");
    }

    #[test]
    fn more_work_takes_more_cycles() {
        let small = ScriptedWorkload::uniform(
            1024,
            vec![
                Op::Load { addr: 0, bytes: 4 },
                Op::Compute {
                    cycles: 4,
                    insts: 4,
                },
            ],
        );
        let big = ScriptedWorkload::per_thread(16384, |i| {
            vec![
                Op::Load {
                    addr: i * 128,
                    bytes: 4,
                },
                Op::Compute {
                    cycles: 4,
                    insts: 4,
                },
                Op::Load {
                    addr: (i + 7919) * 128,
                    bytes: 4,
                },
                Op::Compute {
                    cycles: 4,
                    insts: 4,
                },
            ]
        });
        let sim = mobile();
        let s_small = sim.run(&small);
        let s_big = sim.run(&big);
        assert!(
            s_big.cycles > s_small.cycles * 2,
            "16x threads with 2x ops must take much longer ({} vs {})",
            s_big.cycles,
            s_small.cycles
        );
    }

    #[test]
    fn rt_ops_drive_rt_efficiency() {
        let w = ScriptedWorkload::uniform(
            64,
            vec![
                Op::RtNode { addr: 0 },
                Op::RtNode { addr: 32 },
                Op::RtPrim { addr: 1 << 20 },
            ],
        );
        let stats = mobile().run(&w);
        assert_eq!(stats.rt_warp_phases, 6, "2 warps x 3 phases");
        assert!((stats.rt_efficiency() - 32.0).abs() < 1e-9, "full warps");
    }

    #[test]
    fn divergence_lowers_rt_efficiency() {
        // Lane i performs i+1 RT steps: later phases have fewer live lanes.
        let w = ScriptedWorkload::per_thread(32, |i| {
            (0..=i).map(|k| Op::RtNode { addr: k * 32 }).collect()
        });
        let stats = mobile().run(&w);
        assert!(stats.rt_efficiency() < 32.0);
        assert!(stats.rt_efficiency() > 1.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let w = ScriptedWorkload::per_thread(2048, |i| {
            vec![
                Op::RtNode {
                    addr: (i % 97) * 32,
                },
                Op::Load {
                    addr: i * 64,
                    bytes: 16,
                },
                Op::Compute {
                    cycles: (i % 7) as u32 + 1,
                    insts: 3,
                },
                Op::Store {
                    addr: i * 16,
                    bytes: 16,
                },
            ]
        });
        let sim = mobile();
        let a = sim.run(&w);
        let b = sim.run(&w);
        assert_eq!(a, b);
    }

    #[test]
    fn fewer_sms_take_longer_on_saturating_work() {
        let w = ScriptedWorkload::per_thread(8192, |i| {
            vec![
                Op::Load {
                    addr: i * 128,
                    bytes: 4,
                },
                Op::Compute {
                    cycles: 16,
                    insts: 16,
                },
                Op::Load {
                    addr: (i * 31 + 5) * 128,
                    bytes: 4,
                },
                Op::Compute {
                    cycles: 16,
                    insts: 16,
                },
            ]
        });
        let full = Simulator::new(GpuConfig::mobile_soc()).run(&w);
        let down = Simulator::new(GpuConfig::mobile_soc().downscaled(4).unwrap()).run(&w);
        assert!(
            down.cycles > full.cycles * 2,
            "quarter GPU must be much slower ({} vs {})",
            down.cycles,
            full.cycles
        );
    }

    #[test]
    fn latency_bound_work_does_not_scale_with_sms() {
        // One warp total: SM count is irrelevant.
        let w = ScriptedWorkload::uniform(
            32,
            (0..64)
                .map(|i| Op::Load {
                    addr: i * 128 * 5,
                    bytes: 4,
                })
                .collect(),
        );
        let full = Simulator::new(GpuConfig::mobile_soc()).run(&w);
        let down = Simulator::new(GpuConfig::mobile_soc().downscaled(4).unwrap()).run(&w);
        let ratio = down.cycles as f64 / full.cycles as f64;
        assert!(
            ratio < 1.5,
            "single-warp work should barely change: {ratio}"
        );
    }

    #[test]
    fn stores_count_bandwidth_but_do_not_stall() {
        let w = ScriptedWorkload::uniform(32, vec![Op::Store { addr: 0, bytes: 16 }]);
        let stats = mobile().run(&w);
        assert!(stats.dram_busy_cycles > 0);
        // The warp itself retires immediately (one issue phase); the run's
        // cycle count additionally covers the write-back drain.
        assert_eq!(stats.warp_issues, 1);
        assert!(
            stats.cycles < 150,
            "store + drain should be short, got {}",
            stats.cycles
        );
        assert!(stats.bandwidth_utilization() <= 1.0);
    }

    #[test]
    fn cpi_stack_attributes_compute_vs_rt() {
        let compute_only = ScriptedWorkload::uniform(
            256,
            vec![Op::Compute {
                cycles: 40,
                insts: 40,
            }],
        );
        let s = mobile().run(&compute_only);
        assert!(s.bound_compute_cycles > 0);
        assert_eq!(s.bound_rt_cycles, 0);
        let stack = s.cpi_stack();
        let compute_share = stack.iter().find(|(n, _)| *n == "compute").unwrap().1;
        assert!(
            compute_share > 0.5,
            "pure-ALU workload must be compute bound: {stack:?}"
        );

        let rt_only = ScriptedWorkload::per_thread(256, |i| {
            (0..8)
                .map(|k| Op::RtNode {
                    addr: (i * 8 + k) * 4096,
                })
                .collect()
        });
        let s = mobile().run(&rt_only);
        assert!(s.bound_rt_cycles > 0);
        let stack = s.cpi_stack();
        let rt_share = stack.iter().find(|(n, _)| *n == "rt").unwrap().1;
        assert!(
            rt_share > 0.5,
            "pure-RT workload must be RT bound: {stack:?}"
        );
    }

    #[test]
    fn warp_slots_limit_concurrency() {
        // 64 warps of pure long compute on 1 SM config.
        let mut cfg = GpuConfig::mobile_soc();
        cfg.num_sms = 1;
        cfg.num_mem_partitions = 1;
        cfg.l2.bytes /= 4;
        cfg.max_warps_per_sm = 2;
        let w = ScriptedWorkload::uniform(
            32 * 8,
            vec![Op::Compute {
                cycles: 100,
                insts: 1,
            }],
        );
        let stats = Simulator::new(cfg.clone()).run(&w);
        // 8 warps, 2 at a time → at least 4 serial rounds of ~100 cycles.
        assert!(stats.cycles >= 400, "got {}", stats.cycles);
        cfg.max_warps_per_sm = 8;
        let wide = Simulator::new(cfg).run(&w);
        assert!(wide.cycles < stats.cycles);
    }

    #[test]
    fn trace_hooks_observe_without_perturbing() {
        let w = ScriptedWorkload::per_thread(1024, |i| {
            vec![
                Op::RtNode {
                    addr: (i % 53) * 32,
                },
                Op::Load {
                    addr: i * 64,
                    bytes: 8,
                },
                Op::Compute {
                    cycles: (i % 5) as u32 + 1,
                    insts: 2,
                },
                Op::Store {
                    addr: i * 16,
                    bytes: 4,
                },
            ]
        });
        let sim = mobile();
        let baseline = sim.run(&w);
        let mut trace = TraceHooks::new(500);
        let traced = sim.run_with_hooks(&w, &mut trace);
        assert_eq!(baseline, traced, "hooks must not change timing");
        let c = trace.counters();
        assert_eq!(c.warps_launched, 32, "1024 threads / 32 lanes");
        assert_eq!(c.warps_retired, 32);
        assert_eq!(c.l1_hits + c.l1_misses, traced.l1_accesses);
        assert_eq!(c.l1_misses, traced.l1_misses);
        assert_eq!(c.l2_hits + c.l2_misses, traced.l2_accesses);
        assert_eq!(c.rt_active_rays, traced.rt_active_rays);
        assert_eq!(c.phases(), traced.warp_issues);
        assert!(!trace.slices().is_empty());
        let issued: u64 = trace.slices().iter().map(|s| s.phases).sum();
        assert_eq!(issued, traced.warp_issues);
    }

    #[test]
    fn dram_transfer_hook_counts_reads_and_writes() {
        let w = ScriptedWorkload::uniform(
            32,
            vec![
                Op::Load {
                    addr: 1 << 16,
                    bytes: 4,
                },
                Op::Store {
                    addr: 1 << 18,
                    bytes: 4,
                },
            ],
        );
        let mut trace = TraceHooks::new(100);
        let stats = mobile().run_with_hooks(&w, &mut trace);
        assert_eq!(trace.counters().dram_transfers, stats.dram_transactions);
        assert!(trace.counters().dram_bytes > 0);
    }
}
