//! The timing seam: memory-partition-parallel commit timing
//! (`timing_threads > 1`).
//!
//! PR 6 sharded *decode*; this module shards the other half of the
//! engine — the memory-partition timing arithmetic of the commit loop.
//! `timing_threads = N` detaches the [`MemPartition`]s from the
//! [`MemoryHierarchy`](crate::mem::MemoryHierarchy) and deals them,
//! address-interleaved, to `(N - 1).min(num_mem_partitions)` worker
//! threads. The commit loop keeps its role as the single serialization
//! point: it still pops events in the documented `(time, sequence,
//! shard-rank, slot)` total order and still issues every partition request
//! itself — but instead of computing the partition-side timing inline, it
//! *defers* each request to the owning worker and keeps committing while
//! the workers grind through the arithmetic in parallel.
//!
//! # The deferred-timing protocol
//!
//! Each L1-miss read (or write-through store) becomes a [`TimingRequest`]
//! tagged with a fresh *slot*; the eventual completion time is a
//! [`TimeVal::Deferred`] placeholder. Everything the commit loop would
//! have done with the real time is recorded in a reorder buffer
//! ([`RobEntry`]) in exact serial order. The loop keeps popping events as
//! long as that is provably safe: every deferred phase carries a *floor*
//! (a lower bound on its resolved ready time, anchored by
//! [`MemPartition::min_read_delta`]), and the heap top is popped only if
//! no pending floor key `(floor, sequence, shard-rank, slot)` orders at or
//! before it. When a pending phase could order first — or the heap runs
//! dry, or too many requests are outstanding — the loop performs an *epoch
//! seam exchange*: it flushes the request batches, blocks until every
//! worker has drained its queue, replays the reorder buffer in append
//! order (firing hooks, charging stats, scheduling the resolved events),
//! and rewrites slot-tagged L1 fill times to their resolved cycles.
//!
//! # Determinism
//!
//! Results are bit-identical to `timing_threads = 1` for every worker
//! count and every OS schedule, by construction:
//!
//! * the commit loop issues partition requests in serial event order, so
//!   each partition sees exactly the serial request subsequence — and a
//!   partition's timing is a pure function of its own request stream;
//! * workers only compute; they never choose an order (FIFO queues) and
//!   never touch shared timing state;
//! * hooks replay from the reorder buffer in append order, which *is* the
//!   serial hook order because events were popped in serial order;
//! * stats touched outside replay are order-independent sums and maxes.
//!
//! Together with [`router`](super::router)/[`epoch`](super::epoch) this is
//! the only result-affecting code allowed to spawn threads (`zatel-lint`'s
//! `thread-seam` rule); all cross-thread traffic flows through
//! [`TimingRouter`], which follows the same seam/abort discipline.

use std::collections::BTreeSet;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};

use crate::config::GpuConfig;
use crate::hooks::{CacheLevel, PhaseClass, SimHooks};
use crate::mem::{MemPartition, Probe};
use crate::telemetry::{TimingPartitionTelemetry, TimingTelemetry, TimingWorkerTelemetry};

use super::core::{Engine, WARP_LAUNCH_LATENCY};
use super::decode::{deal_warps, DecodedPhase, PhaseSource};
use super::events::Event;
use super::sync::{Condvar, Mutex, MutexGuard};

/// Requests a worker drains from its queue per lock acquisition.
const CHUNK: usize = 256;

/// Commit-side batch size that triggers an eager flush to the worker, so
/// workers start computing while the commit loop keeps popping.
const FLUSH_THRESHOLD: usize = 64;

/// Outstanding deferred slots that force a seam exchange, bounding the
/// reorder buffer (and the slot tables) to `O(MAX_OUTSTANDING)`.
const MAX_OUTSTANDING: usize = 8192;

/// Bit marking an L1 `valid_from` as a slot-tagged placeholder for an
/// in-flight deferred fill (cleared at the next seam exchange).
const SLOT_TAG: u64 = 1 << 63;

/// Timing workers a run with this `config` uses (`0` = inline timing).
pub(super) fn worker_count(config: &GpuConfig) -> usize {
    if config.timing_threads <= 1 {
        0
    } else {
        ((config.timing_threads - 1) as usize).min(config.num_mem_partitions as usize)
    }
}

/// One deferred partition-side computation.
#[derive(Debug, Clone, Copy)]
struct TimingRequest {
    /// Global partition index (owner: worker `part % workers`).
    part: u32,
    /// Result slot in the commit loop's per-epoch slot table.
    slot: u32,
    /// Line-granular address.
    line: u64,
    /// Issue cycle (the phase's `start`, always Known).
    now: u64,
    /// Write-through store rather than a read.
    write: bool,
}

/// A worker's answer for one slot.
#[derive(Debug, Clone, Copy)]
struct SlotResult {
    /// L2 slice hit (reads only).
    l2_hit: bool,
    /// Reads: cycle the data is back at the SM. Writes: DRAM completion.
    time: u64,
    /// DRAM completion cycle of a read miss (hook payload).
    dram_done: u64,
}

impl Default for SlotResult {
    fn default() -> Self {
        // The sentinel makes consuming an unfilled slot loud in debug
        // builds (see `Frontend::resolve`).
        SlotResult {
            l2_hit: false,
            time: u64::MAX,
            dram_done: 0,
        }
    }
}

/// A completion time that may still be in flight on a worker.
#[derive(Debug, Clone, Copy)]
enum TimeVal {
    /// Fully computed on the commit thread.
    Known(u64),
    /// Resolves to `base.max(results[slot].time)` at the next exchange;
    /// `floor` is a proven lower bound on that value.
    Deferred { slot: u32, base: u64, floor: u64 },
}

impl TimeVal {
    fn floor(&self) -> u64 {
        match *self {
            TimeVal::Known(t) => t,
            TimeVal::Deferred { floor, .. } => floor,
        }
    }
}

/// The tail of one warp phase, replayed at the exchange once its deferred
/// completion times exist.
#[derive(Debug)]
struct PendingPhase {
    ev: Event,
    start: u64,
    compute_ready: u64,
    lsu_known: u64,
    lsu_deferred: Vec<TimeVal>,
    rt_known: u64,
    rt_deferred: Vec<TimeVal>,
    has_rt: bool,
    /// The phase's wake-up event was already pushed (fully-known phase);
    /// replay must not push it again.
    pushed: bool,
}

/// One reorder-buffer record: everything the serial engine would have done
/// *observably* (hooks) or *late-bound* (deferred stats, event pushes), in
/// exact serial order. Replayed at each seam exchange.
#[derive(Debug)]
enum RobEntry {
    WarpLaunch {
        sm: usize,
        warp_id: u64,
        time: u64,
    },
    WarpRetire {
        sm: usize,
        warp_id: u64,
        time: u64,
    },
    CacheL1 {
        hit: bool,
    },
    /// L2 probe outcome of read slot `slot` (fires the L2 access hook and,
    /// on a miss, the DRAM transfer hook).
    L2Outcome {
        slot: u32,
        part: u32,
    },
    /// Write-through store via slot `slot` (fires the DRAM transfer hook).
    DramWrite {
        slot: u32,
        part: u32,
    },
    /// One completed warp read: accounts latency stats and the hook.
    MemRead {
        sm: usize,
        now: u64,
        val: TimeVal,
    },
    RtPhase {
        sm: usize,
        rays: u32,
        lines: u32,
        start: u64,
        occupancy: u64,
    },
    PhaseIssue(Box<PendingPhase>),
}

/// What one worker hands back at shutdown: its partitions (re-attached to
/// the hierarchy, in partition order) and its telemetry.
struct WorkerFinish {
    partitions: Vec<(usize, MemPartition)>,
    telemetry: TimingWorkerTelemetry,
}

/// Per-worker seam state, guarded by the worker's mutex.
#[derive(Default)]
struct WorkerState {
    /// FIFO of deferred requests (order = commit issue order).
    queue: VecDeque<TimingRequest>,
    /// Requests submitted by the commit loop, ever.
    submitted: u64,
    /// Requests completed by the worker, ever.
    completed: u64,
    /// Completed results not yet collected.
    results: Vec<(u32, SlotResult)>,
    /// Set by the commit loop once the run is over.
    shutdown: bool,
    /// Stashed by the worker on its way out.
    finished: Option<WorkerFinish>,
}

/// One worker's seam: state plus its two wake-up channels.
#[derive(Default)]
struct WorkerSeam {
    state: Mutex<WorkerState>,
    /// Wakes the worker (requests queued / shutdown / abort).
    work_cv: Condvar,
    /// Wakes the commit loop (results complete / finish stashed / abort).
    done_cv: Condvar,
}

/// The seam set of one timing-sharded run: one seam per worker, plus the
/// abort flag that poisons the run if any thread panics.
struct TimingRouter {
    seams: Vec<WorkerSeam>,
    aborted: AtomicBool,
}

impl TimingRouter {
    fn new(workers: usize) -> Self {
        TimingRouter {
            seams: (0..workers).map(|_| WorkerSeam::default()).collect(),
            aborted: AtomicBool::new(false),
        }
    }

    fn lock(&self, worker: usize) -> MutexGuard<'_, WorkerState> {
        let state = self.seams[worker].state.lock();
        // zatel-lint: allow(panic-hygiene, reason = "a poisoned timing seam mutex means a sibling sim thread already panicked; propagating is the only sound option")
        state.expect("timing seam mutex poisoned")
    }

    /// Poisons the run: wakes every waiter on every seam so a panicking
    /// thread cannot strand the others. Idempotent.
    fn abort(&self) {
        self.aborted.store(true, Ordering::SeqCst);
        for seam in &self.seams {
            drop(seam.state.lock());
            seam.work_cv.notify_all();
            seam.done_cv.notify_all();
        }
    }

    fn is_aborted(&self) -> bool {
        self.aborted.load(Ordering::SeqCst)
    }

    /// Hands `batch` to `worker` (drains the vec) and wakes it.
    fn submit(&self, worker: usize, batch: &mut Vec<TimingRequest>) {
        let mut state = self.lock(worker);
        state.submitted += batch.len() as u64;
        state.queue.extend(batch.drain(..));
        drop(state);
        self.seams[worker].work_cv.notify_all();
    }

    /// Blocks until `worker` has completed everything submitted to it,
    /// then drains its results into `into`.
    ///
    /// # Panics
    ///
    /// Panics if the run was aborted (a worker panicked).
    fn collect(&self, worker: usize, into: &mut Vec<(u32, SlotResult)>) {
        let mut state = self.lock(worker);
        loop {
            if self.is_aborted() {
                // zatel-lint: allow(panic-hygiene, reason = "a timing worker panicked; unwinding the commit loop is the only way to propagate it")
                panic!("timing-sharded simulation aborted: a timing worker panicked");
            }
            if state.completed == state.submitted {
                into.append(&mut state.results);
                return;
            }
            let waited = self.seams[worker].done_cv.wait(state);
            // zatel-lint: allow(panic-hygiene, reason = "see timing seam mutex waiver above: poisoning implies a sibling panic")
            state = waited.expect("timing seam mutex poisoned");
        }
    }

    /// Tells `worker` the run is over and blocks until it hands back its
    /// partitions and telemetry.
    ///
    /// # Panics
    ///
    /// Panics if the run was aborted.
    fn shutdown_collect(&self, worker: usize) -> WorkerFinish {
        let mut state = self.lock(worker);
        state.shutdown = true;
        self.seams[worker].work_cv.notify_all();
        loop {
            if self.is_aborted() {
                // zatel-lint: allow(panic-hygiene, reason = "a timing worker panicked; unwinding the commit loop is the only way to propagate it")
                panic!("timing-sharded simulation aborted: a timing worker panicked");
            }
            if let Some(finish) = state.finished.take() {
                return finish;
            }
            let waited = self.seams[worker].done_cv.wait(state);
            // zatel-lint: allow(panic-hygiene, reason = "see timing seam mutex waiver above: poisoning implies a sibling panic")
            state = waited.expect("timing seam mutex poisoned");
        }
    }
}

/// Poisons the router if the owning thread unwinds, so threads on the
/// other side of the seam cannot block forever on a dead peer.
struct AbortOnPanic<'r>(&'r TimingRouter);

impl Drop for AbortOnPanic<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            self.0.abort();
        }
    }
}

/// The worker loop: drain requests FIFO, run the partition arithmetic,
/// publish results. Workers never decide an order and never see each
/// other's partitions — they are pure calculators.
fn run_worker(
    router: &TimingRouter,
    worker: usize,
    stride: usize,
    mut parts: Vec<(usize, MemPartition)>,
) {
    let _guard = AbortOnPanic(router);
    let mut part_requests = vec![0u64; parts.len()];
    let mut buf: Vec<TimingRequest> = Vec::with_capacity(CHUNK);
    let mut results: Vec<(u32, SlotResult)> = Vec::with_capacity(CHUNK);
    let mut requests = 0u64;
    let mut batches = 0u64;
    let mut busy_wall_us = 0u64;
    let mut idle_waits = 0u64;
    let mut idle_wall_us = 0u64;
    loop {
        let mut state = router.lock(worker);
        while state.queue.is_empty() && !state.shutdown && !router.is_aborted() {
            idle_waits += 1;
            // zatel-lint: allow(wall-clock, reason = "audited timing-worker telemetry: brackets an idle park whose wake condition is seam state; the value lands only in TimingWorkerTelemetry")
            let park = std::time::Instant::now();
            let waited = router.seams[worker].work_cv.wait(state);
            // zatel-lint: allow(panic-hygiene, reason = "see timing seam mutex waiver above: poisoning implies a sibling panic")
            state = waited.expect("timing seam mutex poisoned");
            idle_wall_us += park.elapsed().as_micros() as u64;
        }
        if router.is_aborted() {
            return;
        }
        if state.queue.is_empty() {
            // Shutdown with a drained queue: hand everything back.
            let telemetry = TimingWorkerTelemetry {
                requests,
                batches,
                busy_wall_us,
                idle_waits,
                idle_wall_us,
                partitions: parts
                    .iter()
                    .zip(&part_requests)
                    .map(|((p, part), &reqs)| TimingPartitionTelemetry {
                        partition: *p,
                        requests: reqs,
                        dram_busy_cycles: part.dram().busy_cycles(),
                        icnt_busy_cycles: part.icnt_busy_cycles(),
                    })
                    .collect(),
            };
            state.finished = Some(WorkerFinish {
                partitions: std::mem::take(&mut parts),
                telemetry,
            });
            drop(state);
            router.seams[worker].done_cv.notify_all();
            return;
        }
        let n = state.queue.len().min(CHUNK);
        buf.extend(state.queue.drain(..n));
        drop(state);
        // zatel-lint: allow(wall-clock, reason = "audited timing-worker telemetry: measures pure partition arithmetic from outside it; the value lands only in TimingWorkerTelemetry")
        let work = std::time::Instant::now();
        for req in buf.drain(..) {
            let local = req.part as usize / stride;
            let (_, part) = &mut parts[local];
            part_requests[local] += 1;
            requests += 1;
            let res = if req.write {
                let done = part.write(req.line, req.now);
                SlotResult {
                    l2_hit: false,
                    time: done,
                    dram_done: done,
                }
            } else {
                let r = part.read(req.line, req.now);
                SlotResult {
                    l2_hit: r.l2_hit,
                    time: r.data_ready,
                    dram_done: r.dram_done,
                }
            };
            results.push((req.slot, res));
        }
        busy_wall_us += work.elapsed().as_micros() as u64;
        batches += 1;
        let mut state = router.lock(worker);
        state.completed += results.len() as u64;
        state.results.append(&mut results);
        drop(state);
        router.seams[worker].done_cv.notify_all();
    }
}

/// The commit loop's deferred-timing state for one run.
struct Frontend<'r> {
    router: &'r TimingRouter,
    workers: usize,
    /// Constant lower bound on any partition read's `data_ready - now`.
    min_read_delta: u64,
    /// Unsubmitted requests per worker (flushed eagerly at
    /// [`FLUSH_THRESHOLD`] and unconditionally at each exchange).
    batches: Vec<Vec<TimingRequest>>,
    /// Per-epoch slot table (reset at each exchange).
    slot_results: Vec<SlotResult>,
    /// Per-slot floor: lower bound on the slot's resolved time.
    floors: Vec<u64>,
    /// The reorder buffer, in exact serial hook order.
    rob: Vec<RobEntry>,
    /// Deferred phases not yet scheduled, keyed by the documented
    /// `(floor, sequence, shard-rank, slot)` order so the heap-top safety
    /// check is one `first()` lookup.
    pending: BTreeSet<(u64, u64, usize, usize)>,
    /// Slots allocated since the last exchange.
    outstanding: usize,
    /// Scratch for collecting worker results.
    scratch: Vec<(u32, SlotResult)>,
    // --- telemetry ------------------------------------------------------
    seam_exchanges: u64,
    deferred_requests: u64,
    commit_wait_us: u64,
}

impl<'r> Frontend<'r> {
    fn new(router: &'r TimingRouter, workers: usize, min_read_delta: u64) -> Self {
        Frontend {
            router,
            workers,
            min_read_delta,
            batches: (0..workers).map(|_| Vec::new()).collect(),
            slot_results: Vec::new(),
            floors: Vec::new(),
            rob: Vec::new(),
            pending: BTreeSet::new(),
            outstanding: 0,
            scratch: Vec::new(),
            seam_exchanges: 0,
            deferred_requests: 0,
            commit_wait_us: 0,
        }
    }

    /// Whether a pending deferred phase could order at or before `ev` —
    /// popping `ev` would then risk leaving serial order, so the caller
    /// must exchange first. Floors are lower bounds, and the tuple compare
    /// mirrors [`Event`]'s total order, so equality is already unsafe.
    fn blocks(&self, ev: &Event) -> bool {
        match self.pending.first() {
            Some(&key) => key <= (ev.time, ev.warp_id, ev.sm, ev.slot),
            None => false,
        }
    }

    fn alloc_slot(&mut self, floor: u64) -> u32 {
        let slot = self.slot_results.len() as u32;
        self.slot_results.push(SlotResult::default());
        self.floors.push(floor);
        self.outstanding += 1;
        slot
    }

    fn enqueue(&mut self, req: TimingRequest) {
        let w = req.part as usize % self.workers;
        self.batches[w].push(req);
        self.deferred_requests += 1;
        if self.batches[w].len() >= FLUSH_THRESHOLD {
            self.router.submit(w, &mut self.batches[w]);
        }
    }

    fn resolve(&self, val: TimeVal) -> u64 {
        match val {
            TimeVal::Known(t) => t,
            TimeVal::Deferred { slot, base, .. } => {
                let t = self.slot_results[slot as usize].time;
                debug_assert_ne!(t, u64::MAX, "slot {slot} consumed before its exchange");
                base.max(t)
            }
        }
    }

    /// The epoch seam exchange: flush, synchronize with every worker,
    /// replay the reorder buffer in serial order, clear the slot tables.
    /// A no-op when nothing is outstanding.
    fn exchange<H: SimHooks>(&mut self, engine: &mut Engine<'_, H>) {
        if self.rob.is_empty() {
            return;
        }
        for w in 0..self.workers {
            if !self.batches[w].is_empty() {
                self.router.submit(w, &mut self.batches[w]);
            }
        }
        // zatel-lint: allow(wall-clock, reason = "audited commit telemetry: brackets blocking collects whose outcomes are already determined; accumulates into TimingTelemetry only")
        let wait = std::time::Instant::now();
        for w in 0..self.workers {
            self.router.collect(w, &mut self.scratch);
        }
        self.commit_wait_us += wait.elapsed().as_micros() as u64;
        for (slot, res) in self.scratch.drain(..) {
            self.slot_results[slot as usize] = res;
        }
        let line_bytes = engine.mem.line_bytes();
        for entry in std::mem::take(&mut self.rob) {
            match entry {
                RobEntry::WarpLaunch { sm, warp_id, time } => {
                    engine.hooks.on_warp_launch(sm, warp_id, time);
                }
                RobEntry::WarpRetire { sm, warp_id, time } => {
                    engine.hooks.on_warp_retire(sm, warp_id, time);
                }
                RobEntry::CacheL1 { hit } => {
                    engine.hooks.on_cache_access(CacheLevel::L1, hit);
                }
                RobEntry::L2Outcome { slot, part } => {
                    let res = self.slot_results[slot as usize];
                    engine.hooks.on_cache_access(CacheLevel::L2, res.l2_hit);
                    if !res.l2_hit {
                        engine
                            .hooks
                            .on_dram_transfer(part as usize, line_bytes, res.dram_done);
                    }
                }
                RobEntry::DramWrite { slot, part } => {
                    let res = self.slot_results[slot as usize];
                    engine
                        .hooks
                        .on_dram_transfer(part as usize, line_bytes, res.time);
                }
                RobEntry::MemRead { sm, now, val } => {
                    let t = self.resolve(val);
                    engine.mem.note_read(t - now);
                    engine.hooks.on_mem_read(sm, t - now);
                }
                RobEntry::RtPhase {
                    sm,
                    rays,
                    lines,
                    start,
                    occupancy,
                } => {
                    engine.hooks.on_rt_phase(sm, rays, lines, start, occupancy);
                }
                RobEntry::PhaseIssue(p) => {
                    let lsu_ready = p
                        .lsu_deferred
                        .iter()
                        .fold(p.lsu_known, |m, &v| m.max(self.resolve(v)));
                    let mut ready = (p.start + 1).max(p.compute_ready).max(lsu_ready);
                    let rt_ready = if p.has_rt {
                        let rt_done = p
                            .rt_deferred
                            .iter()
                            .fold(p.rt_known, |m, &v| m.max(self.resolve(v)));
                        ready = ready.max(rt_done);
                        rt_done
                    } else {
                        p.start
                    };
                    let span = ready - p.start;
                    let class = if rt_ready >= ready {
                        engine.stats.bound_rt_cycles += span;
                        PhaseClass::Rt
                    } else if lsu_ready >= ready {
                        engine.stats.bound_memory_cycles += span;
                        PhaseClass::Memory
                    } else {
                        engine.stats.bound_compute_cycles += span;
                        PhaseClass::Compute
                    };
                    engine
                        .hooks
                        .on_phase_issue(p.ev.sm, p.ev.warp_id, class, p.start, ready);
                    engine.max_time = engine.max_time.max(ready);
                    if !p.pushed {
                        engine.events.push(Event {
                            time: ready,
                            warp_id: p.ev.warp_id,
                            sm: p.ev.sm,
                            slot: p.ev.slot,
                        });
                    }
                }
            }
        }
        // Replace slot-tagged L1 fill placeholders with their resolved
        // cycles; residency never depends on `valid_from`, so this cannot
        // change which lines are cached.
        let results = &self.slot_results;
        engine.mem.remap_l1_valid(|v| {
            if v & SLOT_TAG != 0 {
                results[(v & !SLOT_TAG) as usize].time
            } else {
                v
            }
        });
        self.slot_results.clear();
        self.floors.clear();
        self.pending.clear();
        self.outstanding = 0;
        self.seam_exchanges += 1;
    }
}

/// One warp read under deferred timing: identical L1 state transitions and
/// rob records as the serial `MemoryHierarchy::read_with`, with the
/// partition half farmed out to its worker when the L1 misses.
fn deferred_read<H: SimHooks>(
    engine: &mut Engine<'_, H>,
    fe: &mut Frontend<'_>,
    sm: usize,
    line: u64,
    now: u64,
) -> TimeVal {
    let l1_ready = now + engine.mem.l1_latency();
    match engine.mem.l1_probe(sm, line, now) {
        Probe::Hit { valid_from } => {
            fe.rob.push(RobEntry::CacheL1 { hit: true });
            let val = if valid_from & SLOT_TAG != 0 {
                let slot = (valid_from & !SLOT_TAG) as u32;
                TimeVal::Deferred {
                    slot,
                    base: l1_ready,
                    floor: l1_ready.max(fe.floors[slot as usize]),
                }
            } else {
                TimeVal::Known(l1_ready.max(valid_from))
            };
            fe.rob.push(RobEntry::MemRead { sm, now, val });
            val
        }
        Probe::Miss => {
            fe.rob.push(RobEntry::CacheL1 { hit: false });
            let part = engine.mem.partition_of(line) as u32;
            let slot = fe.alloc_slot(now + fe.min_read_delta);
            fe.enqueue(TimingRequest {
                part,
                slot,
                line,
                now,
                write: false,
            });
            fe.rob.push(RobEntry::L2Outcome { slot, part });
            engine.mem.l1_fill(sm, line, SLOT_TAG | slot as u64);
            let val = TimeVal::Deferred {
                slot,
                base: 0,
                floor: fe.floors[slot as usize],
            };
            fe.rob.push(RobEntry::MemRead { sm, now, val });
            val
        }
    }
}

/// One write-through store under deferred timing (fire-and-forget, like
/// the serial path: the warp waits only `now + 1`).
fn deferred_write<H: SimHooks>(
    engine: &mut Engine<'_, H>,
    fe: &mut Frontend<'_>,
    line: u64,
    now: u64,
) {
    let part = engine.mem.partition_of(line) as u32;
    let slot = fe.alloc_slot(0);
    fe.enqueue(TimingRequest {
        part,
        slot,
        line,
        now,
        write: true,
    });
    fe.rob.push(RobEntry::DramWrite { slot, part });
}

/// Launches the oldest pending warp of `sm` at `t` (deferred-hook variant
/// of the serial engine's `try_launch`).
fn try_launch<H: SimHooks, S: PhaseSource>(
    engine: &mut Engine<'_, H>,
    fe: &mut Frontend<'_>,
    sm: usize,
    t: u64,
    source: &mut S,
) -> bool {
    let Some((id, first, lanes)) = engine.sms[sm].pending.pop_front() else {
        return false;
    };
    let slot = engine.sms[sm].slots_used;
    engine.sms[sm].slots_used += 1;
    source.on_launch(sm, slot, id, first, lanes);
    fe.rob.push(RobEntry::WarpLaunch {
        sm,
        warp_id: id,
        time: t,
    });
    engine.events.push(Event {
        time: t + WARP_LAUNCH_LATENCY,
        warp_id: id,
        sm,
        slot,
    });
    true
}

fn launch_grid<H: SimHooks, S: PhaseSource>(
    engine: &mut Engine<'_, H>,
    fe: &mut Frontend<'_>,
    threads: u64,
    source: &mut S,
) {
    engine.stats.threads_launched = threads;
    let lists = deal_warps(threads, engine.config.warp_size, engine.sms.len());
    for (sm, list) in lists.into_iter().enumerate() {
        engine.sms[sm].pending = list
            .into_iter()
            .map(|w| (w.id, w.first_thread, w.lanes))
            .collect();
    }
    for sm in 0..engine.sms.len() {
        for _ in 0..engine.config.max_warps_per_sm {
            if !try_launch(engine, fe, sm, 0, source) {
                break;
            }
        }
    }
}

/// One warp step under deferred timing: the exact serial arithmetic, with
/// every partition-side time a [`TimeVal`] and every observable action a
/// [`RobEntry`].
fn step_deferred<H: SimHooks, S: PhaseSource>(
    engine: &mut Engine<'_, H>,
    fe: &mut Frontend<'_>,
    ev: Event,
    source: &mut S,
) {
    let mix = match source.next_phase(ev.sm, ev.slot, ev.warp_id) {
        DecodedPhase::Mix(mix) => mix,
        DecodedPhase::Retire => {
            engine.max_time = engine.max_time.max(ev.time);
            fe.rob.push(RobEntry::WarpRetire {
                sm: ev.sm,
                warp_id: ev.warp_id,
                time: ev.time,
            });
            if let Some((id, first, lanes)) = engine.sms[ev.sm].pending.pop_front() {
                source.on_launch(ev.sm, ev.slot, id, first, lanes);
                fe.rob.push(RobEntry::WarpLaunch {
                    sm: ev.sm,
                    warp_id: id,
                    time: ev.time,
                });
                engine.events.push(Event {
                    time: ev.time + WARP_LAUNCH_LATENCY,
                    warp_id: id,
                    sm: ev.sm,
                    slot: ev.slot,
                });
            }
            return;
        }
    };
    engine.stats.instructions += mix.instructions;
    engine.stats.warp_issues += 1;
    let start = engine.sms[ev.sm].issue_at(ev.time, mix.lsu_slots());
    engine.stats.bound_issue_cycles += start - ev.time;
    let compute_ready = start + mix.compute_cycles;
    let mut lsu_known = start;
    let mut lsu_deferred = Vec::new();
    for line in &mix.load_lines {
        match deferred_read(engine, fe, ev.sm, *line, start) {
            TimeVal::Known(t) => lsu_known = lsu_known.max(t),
            deferred => lsu_deferred.push(deferred),
        }
    }
    for line in &mix.store_lines {
        deferred_write(engine, fe, *line, start);
        lsu_known = lsu_known.max(start + 1);
    }
    let has_rt = mix.rt_rays > 0;
    let mut rt_known = start;
    let mut rt_deferred = Vec::new();
    if has_rt {
        let sm_state = &mut engine.sms[ev.sm];
        let (slot, rt_start) = sm_state.rt_unit.acquire(start);
        let occupancy = sm_state.rt_unit.occupancy_cycles(mix.rt_rays);
        sm_state
            .rt_unit
            .complete(slot, rt_start + occupancy, mix.rt_rays);
        fe.rob.push(RobEntry::RtPhase {
            sm: ev.sm,
            rays: mix.rt_rays,
            lines: mix.rt_lines.len() as u32,
            start: rt_start,
            occupancy,
        });
        rt_known = rt_start + occupancy;
        for line in &mix.rt_lines {
            match deferred_read(engine, fe, ev.sm, *line, rt_start) {
                TimeVal::Known(t) => rt_known = rt_known.max(t),
                deferred => rt_deferred.push(deferred),
            }
        }
    }
    let mut phase = PendingPhase {
        ev,
        start,
        compute_ready,
        lsu_known,
        lsu_deferred,
        rt_known,
        rt_deferred,
        has_rt,
        pushed: false,
    };
    let mut known_floor = (start + 1).max(compute_ready).max(phase.lsu_known);
    if has_rt {
        known_floor = known_floor.max(phase.rt_known);
    }
    if phase.lsu_deferred.is_empty() && phase.rt_deferred.is_empty() {
        // Fully known: the wake-up can be scheduled now (keeping the heap
        // hot); hooks and CPI attribution still replay in rob order.
        engine.events.push(Event {
            time: known_floor,
            warp_id: ev.warp_id,
            sm: ev.sm,
            slot: ev.slot,
        });
        phase.pushed = true;
    } else {
        let floor = phase
            .lsu_deferred
            .iter()
            .chain(&phase.rt_deferred)
            .fold(known_floor, |m, v| m.max(v.floor()));
        fe.pending.insert((floor, ev.warp_id, ev.sm, ev.slot));
    }
    fe.rob.push(RobEntry::PhaseIssue(Box::new(phase)));
}

/// Runs the commit loop with partition-parallel timing. Called by
/// [`Engine::run`] when [`worker_count`] is at least one; returns the
/// run's timing telemetry (the stats land in `engine.stats` as usual).
pub(super) fn run_sharded<H: SimHooks, S: PhaseSource>(
    engine: &mut Engine<'_, H>,
    threads: u64,
    source: &mut S,
) -> TimingTelemetry {
    let workers = worker_count(engine.config);
    let parts = engine.mem.take_partitions();
    let num_partitions = parts.len();
    let min_read_delta = parts.first().map(MemPartition::min_read_delta).unwrap_or(0);
    let mut per_worker: Vec<Vec<(usize, MemPartition)>> =
        (0..workers).map(|_| Vec::new()).collect();
    for (p, part) in parts.into_iter().enumerate() {
        per_worker[p % workers].push((p, part));
    }
    let router = TimingRouter::new(workers);
    // Schedule-test builds: pre-announce the worker slots so the
    // cooperative scheduler's first election waits for every worker to
    // attach (same pattern as the decode shards in `epoch`).
    #[cfg(zatel_schedule_test)]
    let sched = crate::schedule::handle().map(|(sched, _)| {
        let base = sched.announce(workers);
        (sched, base)
    });
    let mut finishes: Vec<WorkerFinish> = Vec::with_capacity(workers);
    let (seam_exchanges, deferred_requests, commit_wait_us) = std::thread::scope(|scope| {
        let router = &router;
        let handles: Vec<_> = per_worker
            .into_iter()
            .enumerate()
            .map(|(w, parts)| {
                #[cfg(zatel_schedule_test)]
                let sched = sched.clone();
                scope.spawn(move || {
                    #[cfg(zatel_schedule_test)]
                    let _participant = sched
                        .map(|(sched, base)| crate::schedule::Participant::adopt(sched, base + w));
                    run_worker(router, w, workers, parts)
                })
            })
            .collect();
        // If the commit loop unwinds (a hook panicked), poison the seams
        // so the scope can join the workers instead of deadlocking.
        let _guard = AbortOnPanic(router);
        let mut fe = Frontend::new(router, workers, min_read_delta);
        launch_grid(engine, &mut fe, threads, source);
        loop {
            match engine.events.peek().copied() {
                Some(ev) => {
                    if fe.outstanding >= MAX_OUTSTANDING || fe.blocks(&ev) {
                        fe.exchange(engine);
                        continue;
                    }
                    // zatel-lint: allow(panic-hygiene, reason = "peek just returned Some and nothing popped in between")
                    let ev = engine.events.pop().expect("peeked event vanished");
                    step_deferred(engine, &mut fe, ev, source);
                }
                None => {
                    if fe.rob.is_empty() {
                        break;
                    }
                    // Heap dry but work outstanding (deferred phases,
                    // unreplayed hooks, in-flight writes): exchange to
                    // resolve — it schedules every pending wake-up.
                    fe.exchange(engine);
                }
            }
        }
        for w in 0..workers {
            finishes.push(router.shutdown_collect(w));
        }
        // The joins below block outside the sync facade: step out of the
        // scheduled region so worker epilogues can still be elected.
        #[cfg(zatel_schedule_test)]
        crate::schedule::detach_current();
        for handle in handles {
            if let Err(payload) = handle.join() {
                std::panic::resume_unwind(payload);
            }
        }
        #[cfg(zatel_schedule_test)]
        crate::schedule::reattach_current();
        (fe.seam_exchanges, fe.deferred_requests, fe.commit_wait_us)
    });
    let mut slots: Vec<Option<MemPartition>> = (0..num_partitions).map(|_| None).collect();
    let mut worker_telemetry = Vec::with_capacity(workers);
    for finish in &mut finishes {
        for (p, part) in finish.partitions.drain(..) {
            slots[p] = Some(part);
        }
        worker_telemetry.push(std::mem::take(&mut finish.telemetry));
    }
    engine.mem.restore_partitions(
        slots
            .into_iter()
            // zatel-lint: allow(panic-hygiene, reason = "every partition index was dealt to exactly one worker and every worker finished; a hole is an engine bug worth crashing on")
            .map(|s| s.expect("worker returned all partitions"))
            .collect(),
    );
    TimingTelemetry {
        worker_count: workers,
        workers: worker_telemetry,
        seam_exchanges,
        deferred_requests,
        commit_wait_us,
    }
}

#[cfg(test)]
mod tests {
    use crate::config::GpuConfig;
    use crate::gpu::Simulator;
    use crate::hooks::TraceHooks;
    use crate::workload::{Op, ScriptedWorkload};

    fn stress_workload() -> ScriptedWorkload {
        ScriptedWorkload::per_thread(4096, |i| {
            vec![
                Op::RtNode {
                    addr: (i % 97) * 32,
                },
                Op::Load {
                    addr: i * 64,
                    bytes: 16,
                },
                Op::Compute {
                    cycles: (i % 7) as u32 + 1,
                    insts: 3,
                },
                Op::Store {
                    addr: i * 16,
                    bytes: 16,
                },
            ]
        })
    }

    #[test]
    fn timing_sharded_stats_match_serial_for_all_worker_counts() {
        let w = stress_workload();
        let serial = Simulator::new(GpuConfig::mobile_soc()).run(&w);
        for timing_threads in [2, 3, 4, 8] {
            let mut cfg = GpuConfig::mobile_soc();
            cfg.timing_threads = timing_threads;
            let sharded = Simulator::new(cfg).run(&w);
            assert_eq!(
                serial, sharded,
                "timing_threads={timing_threads} must be bit-identical to serial"
            );
        }
    }

    #[test]
    fn timing_sharded_hook_stream_matches_serial() {
        let w = stress_workload();
        let mut serial_hooks = TraceHooks::new(1000);
        let serial = Simulator::new(GpuConfig::mobile_soc()).run_with_hooks(&w, &mut serial_hooks);
        let mut cfg = GpuConfig::mobile_soc();
        cfg.timing_threads = 4;
        let mut sharded_hooks = TraceHooks::new(1000);
        let sharded = Simulator::new(cfg).run_with_hooks(&w, &mut sharded_hooks);
        assert_eq!(serial, sharded);
        assert_eq!(serial_hooks.counters(), sharded_hooks.counters());
        assert_eq!(
            serial_hooks.slices(),
            sharded_hooks.slices(),
            "hook replay must land in exact serial order"
        );
    }

    #[test]
    fn timing_composes_with_decode_sharding() {
        let w = stress_workload();
        let serial = Simulator::new(GpuConfig::mobile_soc()).run(&w);
        let mut cfg = GpuConfig::mobile_soc();
        cfg.sim_threads = 4;
        cfg.timing_threads = 3;
        let both = Simulator::new(cfg).run(&w);
        assert_eq!(serial, both, "decode + timing sharding must compose");
    }

    #[test]
    fn timing_sharded_run_handles_degenerate_grids() {
        for threads in [0u64, 1, 31, 32, 33] {
            let w = ScriptedWorkload::uniform(
                threads,
                vec![Op::Compute {
                    cycles: 2,
                    insts: 2,
                }],
            );
            let serial = Simulator::new(GpuConfig::mobile_soc()).run(&w);
            let mut cfg = GpuConfig::mobile_soc();
            cfg.timing_threads = 4;
            let sharded = Simulator::new(cfg).run(&w);
            assert_eq!(serial, sharded, "threads={threads}");
        }
    }

    #[test]
    fn more_timing_workers_than_partitions_is_clamped() {
        let mut cfg = GpuConfig::mobile_soc();
        cfg.timing_threads = 64;
        assert_eq!(
            super::worker_count(&cfg),
            cfg.num_mem_partitions as usize,
            "workers cap at the partition count"
        );
        let w = stress_workload();
        let sharded = Simulator::new(cfg).run(&w);
        let serial = Simulator::new(GpuConfig::mobile_soc()).run(&w);
        assert_eq!(serial, sharded);
    }

    #[test]
    fn timing_telemetry_reports_worker_occupancy() {
        let w = stress_workload();
        let serial = Simulator::new(GpuConfig::mobile_soc()).run(&w);
        let mut cfg = GpuConfig::mobile_soc();
        cfg.timing_threads = 3;
        let (stats, telemetry) =
            Simulator::new(cfg).run_instrumented(&w, &mut crate::hooks::NullHooks);
        assert_eq!(serial, stats, "telemetry collection must not change stats");
        let t = telemetry
            .expect("timing-sharded run returns telemetry")
            .timing
            .expect("timing-sharded run returns timing telemetry");
        assert_eq!(t.worker_count, 2, "timing_threads=3 -> 2 workers");
        assert_eq!(t.workers.len(), 2);
        assert!(t.seam_exchanges > 0, "the seam was exchanged at least once");
        assert!(t.deferred_requests > 0);
        assert_eq!(
            t.requests(),
            t.deferred_requests,
            "every deferred request was serviced by exactly one worker"
        );
        let partitions: Vec<usize> = t
            .workers
            .iter()
            .flat_map(|w| w.partitions.iter().map(|p| p.partition))
            .collect();
        assert_eq!(
            {
                let mut sorted = partitions.clone();
                sorted.sort_unstable();
                sorted
            },
            (0..4).collect::<Vec<_>>(),
            "each partition owned by exactly one worker"
        );
    }

    #[test]
    fn timing_worker_panic_propagates_instead_of_hanging() {
        struct Bomb;
        impl crate::workload::ThreadProgram for Bomb {
            fn next_op(&mut self) -> Option<Op> {
                panic!("workload bug");
            }
        }
        struct BombWorkload;
        impl crate::workload::Workload for BombWorkload {
            fn thread_count(&self) -> u64 {
                64
            }
            fn create_thread(&self, _index: u64) -> Box<dyn crate::workload::ThreadProgram + '_> {
                Box::new(Bomb)
            }
        }
        let mut cfg = GpuConfig::mobile_soc();
        cfg.timing_threads = 4;
        let result = std::panic::catch_unwind(|| Simulator::new(cfg).run(&BombWorkload));
        assert!(result.is_err(), "the panic must reach the caller");
    }
}
