//! The engine's sync facade: `std::sync` primitives in normal builds,
//! schedule-instrumented wrappers under `--cfg zatel_schedule_test`.
//!
//! The sharded engine synchronizes exclusively through the types
//! re-exported here. Normal builds pay nothing — the re-export IS
//! `std::sync`. Schedule-test builds swap in thin wrappers that call
//! [`crate::schedule`] at every acquisition and park, which lets the
//! interleaving-exploration harness replay seeded thread schedules
//! deterministically. Threads that never installed a scheduler (every
//! other test in the process) fall through the wrappers to the real
//! primitives with one thread-local read of overhead.

#[cfg(not(zatel_schedule_test))]
pub(crate) use std::sync::{Condvar, Mutex, MutexGuard};

#[cfg(zatel_schedule_test)]
pub(crate) use cooperative::{Condvar, Mutex, MutexGuard};

#[cfg(zatel_schedule_test)]
mod cooperative {
    use std::sync::{LockResult, PoisonError};

    use crate::schedule;

    /// A `std::sync::Mutex` that yields to the cooperative scheduler
    /// immediately before every acquisition.
    #[derive(Debug, Default)]
    pub(crate) struct Mutex<T> {
        inner: std::sync::Mutex<T>,
    }

    /// Guard for the facade [`Mutex`]; keeps a handle on its mutex so a
    /// facade [`Condvar`] wait can re-acquire after parking.
    #[derive(Debug)]
    pub(crate) struct MutexGuard<'a, T> {
        mutex: &'a Mutex<T>,
        inner: Option<std::sync::MutexGuard<'a, T>>,
    }

    /// A `std::sync::Condvar` whose waits park on the scheduler (for
    /// scheduled threads) instead of the OS, so a wait never blocks an
    /// election.
    #[derive(Debug, Default)]
    pub(crate) struct Condvar {
        inner: std::sync::Condvar,
    }

    fn wrap<'a, T>(
        mutex: &'a Mutex<T>,
        result: LockResult<std::sync::MutexGuard<'a, T>>,
    ) -> LockResult<MutexGuard<'a, T>> {
        match result {
            Ok(inner) => Ok(MutexGuard {
                mutex,
                inner: Some(inner),
            }),
            // Re-wrap so callers observe the same poisoning they would
            // from the real primitive.
            Err(poisoned) => Err(PoisonError::new(MutexGuard {
                mutex,
                inner: Some(poisoned.into_inner()),
            })),
        }
    }

    impl<T> Mutex<T> {
        pub(crate) fn new(value: T) -> Mutex<T> {
            Mutex {
                inner: std::sync::Mutex::new(value),
            }
        }

        /// Schedule point, then the real acquisition. A scheduled thread
        /// only reaches the real `lock()` while holding the run token,
        /// and no other scheduled thread holds a facade mutex while off
        /// the token, so the real lock is uncontended among participants
        /// and adds no hidden ordering.
        pub(crate) fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
            schedule::point();
            wrap(self, self.inner.lock())
        }
    }

    impl<T> std::ops::Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            // zatel-lint: allow(panic-hygiene, reason = "schedule-test-only facade: the Option is Some from construction until wait() consumes the guard by value, so deref cannot observe None")
            self.inner.as_ref().expect("guard taken")
        }
    }

    impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            // zatel-lint: allow(panic-hygiene, reason = "schedule-test-only facade: same Some-until-consumed invariant as deref above")
            self.inner.as_mut().expect("guard taken")
        }
    }

    impl Condvar {
        /// Scheduled threads: drop the real guard, park on this
        /// condvar's identity until a facade `notify_*`, then re-acquire
        /// once re-elected. Unscheduled threads: the real wait.
        ///
        /// Scheduler wakeups happen only via explicit `notify_*`, never
        /// spuriously — a strict subset of `std` condvar behavior, so
        /// every caller's predicate loop stays correct.
        pub(crate) fn wait<'a, T>(
            &self,
            mut guard: MutexGuard<'a, T>,
        ) -> LockResult<MutexGuard<'a, T>> {
            if schedule::handle().is_some() {
                let mutex = guard.mutex;
                // Release before parking: a parked participant must hold
                // no real lock, or the elected thread would contend it.
                drop(guard.inner.take());
                schedule::park(self as *const Condvar as usize);
                // Re-elected; re-acquire directly — `park` already was
                // the schedule point for this acquisition.
                wrap(mutex, mutex.inner.lock())
            } else {
                let mutex = guard.mutex;
                // zatel-lint: allow(panic-hygiene, reason = "schedule-test-only facade: guard invariant as above; wait() owns the guard and has not taken it yet")
                let inner = guard.inner.take().expect("guard taken");
                wrap(mutex, self.inner.wait(inner))
            }
        }

        /// Wakes scheduler-parked waiters *and* real waiters. (The seam
        /// only ever broadcasts — a facade `notify_one` would have to
        /// behave as `notify_all` for scheduled threads anyway, so the
        /// facade deliberately offers only the broadcast.)
        pub(crate) fn notify_all(&self) {
            schedule::notify(self as *const Condvar as usize);
            self.inner.notify_all();
        }
    }
}
