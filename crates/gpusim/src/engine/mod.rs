//! The componentized simulation engine.
//!
//! Split along the machine's natural seams:
//!
//! * [`sm`] — per-SM scheduling state and phase categorization;
//! * [`events`] — the global warp wake-up heap;
//! * [`core`] — the event-driven drain loop tying them together.
//!
//! The public surface stays [`crate::Simulator`]; everything here is
//! crate-private machinery behind it.

mod core;
mod events;
mod sm;

pub(crate) use core::Engine;
