//! The componentized simulation engine.
//!
//! Split along the machine's natural seams:
//!
//! * [`sm`] — per-SM timing state and phase categorization;
//! * [`events`] — the global warp wake-up heap with its documented
//!   (time, sequence, shard-rank, slot) total order;
//! * [`decode`] — the decode seam: warp streams turned into categorized
//!   phases, pure of all timing state;
//! * [`core`] — the event-driven commit loop tying them together, the
//!   engine's single serialization point;
//! * [`shard`] / [`router`] / [`epoch`] — the sharded engine
//!   (`sim_threads > 1`): decode shards over disjoint SM ranges, the
//!   interconnect seam they hand traffic through, and the lockstep driver
//!   that keeps results bit-identical to the serial engine;
//! * [`timing`] — the timing-sharded commit loop (`timing_threads > 1`):
//!   memory partitions dealt to lockstep worker threads, cross-partition
//!   traffic exchanged at epoch seams in the documented total order.
//!
//! The public surface stays [`crate::Simulator`]; everything here is
//! crate-private machinery behind it.

mod core;
mod decode;
mod epoch;
mod events;
mod router;
mod shard;
mod sm;
mod sync;
mod timing;

pub(crate) use core::Engine;
pub(crate) use decode::SerialSource;
pub(crate) use epoch::EpochDriver;
