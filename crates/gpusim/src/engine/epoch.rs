//! The epoch driver: deterministic lockstep orchestration of a sharded run.
//!
//! `sim_threads = N` runs the simulation on N OS threads: `N - 1` decode
//! shards (capped at the SM count), each owning a contiguous disjoint range
//! of SMs, plus the commit loop on the calling thread. The driver plans the
//! shard ranges, spawns the workers inside a [`std::thread::scope`], runs
//! the commit loop against a [`RoutedSource`], and joins everything before
//! returning — no thread outlives a run.
//!
//! # Determinism
//!
//! The merge order is fixed by construction, not by arrival: shards only
//! ever *decode* (a pure function of the workload), and the commit loop —
//! the single timing thread — consumes their streams in the exact order the
//! serial engine would have produced them, driven by the
//! [`EventQueue`](super::events::EventQueue)'s documented (time, sequence,
//! shard-rank, slot) total order. Stats, hook callbacks and trace output
//! are therefore bit-identical to `sim_threads = 1` regardless of thread
//! count, scheduling, or how the epoch barriers interleave. This module and
//! [`router`](super::router) are the only places in result-affecting code
//! allowed to create threads (enforced by `zatel-lint`'s `thread-seam`
//! rule).

use std::collections::{BTreeMap, VecDeque};

use crate::config::GpuConfig;
use crate::hooks::SimHooks;
use crate::stats::SimStats;
use crate::telemetry::SimTelemetry;
use crate::workload::Workload;

use super::core::Engine;
use super::decode::{deal_warps, DecodedPhase, PhaseSource};
use super::router::{AbortOnPanic, ShardRouter};
use super::shard::{run_shard, ShardPlan};

/// Orchestrates one sharded simulation run.
pub(crate) struct EpochDriver<'w> {
    config: &'w GpuConfig,
    workload: &'w dyn Workload,
}

impl<'w> EpochDriver<'w> {
    pub fn new(config: &'w GpuConfig, workload: &'w dyn Workload) -> Self {
        EpochDriver { config, workload }
    }

    /// Runs the workload on `config.sim_threads` threads and returns stats
    /// bit-identical to the serial engine's, paired with the run's
    /// concurrency telemetry (an observational wall-clock side channel
    /// that never feeds back into the stats or hook stream).
    pub fn run<H: SimHooks>(self, hooks: &mut H) -> (SimStats, SimTelemetry) {
        let num_sms = self.config.num_sms as usize;
        let shard_count = (self.config.sim_threads.max(2) as usize - 1).min(num_sms);
        let threads = self.workload.thread_count();
        let line_bytes = self.config.l1d.line_bytes;
        let lookahead = self.config.max_warps_per_sm as usize;

        // Contiguous SM ranges, sizes differing by at most one.
        let mut launch_lists: VecDeque<_> =
            deal_warps(threads, self.config.warp_size, num_sms).into();
        let base = num_sms / shard_count;
        let extra = num_sms % shard_count;
        let mut plans = Vec::with_capacity(shard_count);
        let mut shard_of_sm = Vec::with_capacity(num_sms);
        let mut first_sm = 0;
        for shard in 0..shard_count {
            let owned = base + usize::from(shard < extra);
            for local in 0..owned {
                shard_of_sm.push((shard, local));
            }
            plans.push(ShardPlan {
                first_sm,
                launch_lists: launch_lists.drain(..owned).collect(),
                lookahead,
            });
            first_sm += owned;
        }

        let router = ShardRouter::new(
            &plans
                .iter()
                .map(|p| p.launch_lists.len())
                .collect::<Vec<_>>(),
        );
        let workload = self.workload;
        // Schedule-test builds: pre-announce the shard slots so the
        // cooperative scheduler's first election waits for every shard
        // to attach, keeping the election sequence a pure function of
        // the seed rather than of spawn timing.
        #[cfg(zatel_schedule_test)]
        let sched = crate::schedule::handle().map(|(sched, _)| {
            let base = sched.announce(shard_count);
            (sched, base)
        });
        std::thread::scope(|scope| {
            let router = &router;
            let handles: Vec<_> = plans
                .into_iter()
                .enumerate()
                .map(|(shard, plan)| {
                    #[cfg(zatel_schedule_test)]
                    let sched = sched.clone();
                    scope.spawn(move || {
                        #[cfg(zatel_schedule_test)]
                        let _participant = sched.map(|(sched, base)| {
                            crate::schedule::Participant::adopt(sched, base + shard)
                        });
                        run_shard(router, shard, workload, line_bytes, plan)
                    })
                })
                .collect();
            // If the commit loop unwinds (a hook or the timing model
            // panicked), poison the seams so the scope can join the
            // shards instead of deadlocking on them.
            let _guard = AbortOnPanic(router);
            let mut source = RoutedSource {
                router,
                shard_of_sm,
                local: BTreeMap::new(),
                take_waits: 0,
                take_wait_us: 0,
            };
            // zatel-lint: allow(wall-clock, reason = "audited commit telemetry: measures the commit loop from outside it; the value lands only in SimTelemetry")
            let commit_start = std::time::Instant::now();
            let (stats, timing) = Engine::new(self.config, hooks).run(threads, &mut source);
            let commit_wall_us = commit_start.elapsed().as_micros() as u64;
            let mut shards = Vec::with_capacity(shard_count);
            // The join below blocks outside the facade: step out of the
            // scheduled region so shard epilogues can still be elected.
            #[cfg(zatel_schedule_test)]
            crate::schedule::detach_current();
            for handle in handles {
                match handle.join() {
                    Ok(telemetry) => shards.push(telemetry),
                    // A shard that panicked without reaching the commit
                    // loop (which normally re-raises via the poisoned
                    // seam): surface its panic instead of swallowing it.
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
            #[cfg(zatel_schedule_test)]
            crate::schedule::reattach_current();
            let telemetry = SimTelemetry {
                runs: 1,
                shard_count,
                shards,
                commit_wall_us,
                commit_take_waits: source.take_waits,
                commit_wait_us: source.take_wait_us,
                timing,
            };
            (stats, telemetry)
        })
    }
}

/// The commit loop's [`PhaseSource`] over the seams: pulls each warp's
/// decode stream from its owning shard, buffering locally so the seam lock
/// is taken once per published batch rather than once per phase.
struct RoutedSource<'r> {
    router: &'r ShardRouter,
    /// `sm -> (shard, local SM index within the shard)`.
    shard_of_sm: Vec<(usize, usize)>,
    /// Phases taken from the seams but not yet consumed, per warp.
    local: BTreeMap<u64, VecDeque<DecodedPhase>>,
    /// Seam takes issued (each may block on the owning shard).
    take_waits: u64,
    /// Wall-clock spent inside seam takes, in microseconds. Observational
    /// only — never consulted by the commit loop.
    take_wait_us: u64,
}

impl PhaseSource for RoutedSource<'_> {
    fn on_launch(&mut self, sm: usize, _slot: usize, _warp_id: u64, _first: u64, _lanes: u32) {
        let (shard, local_sm) = self.shard_of_sm[sm];
        self.router.note_launched(shard, local_sm);
    }

    fn next_phase(&mut self, sm: usize, _slot: usize, warp_id: u64) -> DecodedPhase {
        loop {
            if let Some(queue) = self.local.get_mut(&warp_id) {
                if let Some(phase) = queue.pop_front() {
                    if phase == DecodedPhase::Retire {
                        self.local.remove(&warp_id);
                    }
                    return phase;
                }
            }
            let (shard, _) = self.shard_of_sm[sm];
            self.take_waits += 1;
            // zatel-lint: allow(wall-clock, reason = "audited commit telemetry: brackets a blocking seam take whose outcome is already determined; accumulates into the side channel only")
            let wait_start = std::time::Instant::now();
            // Blocks until the shard publishes something for this warp;
            // always returns a non-empty batch.
            let batch = self.router.take_phases(shard, warp_id);
            self.take_wait_us += wait_start.elapsed().as_micros() as u64;
            self.local.insert(warp_id, batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gpu::Simulator;
    use crate::workload::{Op, ScriptedWorkload};

    fn stress_workload() -> ScriptedWorkload {
        ScriptedWorkload::per_thread(4096, |i| {
            vec![
                Op::RtNode {
                    addr: (i % 97) * 32,
                },
                Op::Load {
                    addr: i * 64,
                    bytes: 16,
                },
                Op::Compute {
                    cycles: (i % 7) as u32 + 1,
                    insts: 3,
                },
                Op::Store {
                    addr: i * 16,
                    bytes: 16,
                },
            ]
        })
    }

    #[test]
    fn sharded_stats_match_serial_for_all_thread_counts() {
        let w = stress_workload();
        let serial = Simulator::new(GpuConfig::mobile_soc()).run(&w);
        for sim_threads in [2, 3, 4, 8, 16] {
            let mut cfg = GpuConfig::mobile_soc();
            cfg.sim_threads = sim_threads;
            let sharded = Simulator::new(cfg).run(&w);
            assert_eq!(
                serial, sharded,
                "sim_threads={sim_threads} must be bit-identical to serial"
            );
        }
    }

    #[test]
    fn sharded_hook_stream_matches_serial() {
        use crate::hooks::TraceHooks;
        let w = stress_workload();
        let mut serial_hooks = TraceHooks::new(1000);
        let serial = Simulator::new(GpuConfig::mobile_soc()).run_with_hooks(&w, &mut serial_hooks);
        let mut cfg = GpuConfig::mobile_soc();
        cfg.sim_threads = 4;
        let mut sharded_hooks = TraceHooks::new(1000);
        let sharded = Simulator::new(cfg).run_with_hooks(&w, &mut sharded_hooks);
        assert_eq!(serial, sharded);
        assert_eq!(serial_hooks.counters(), sharded_hooks.counters());
        assert_eq!(
            serial_hooks.slices(),
            sharded_hooks.slices(),
            "per-slice trace output must replay in exact serial order"
        );
    }

    #[test]
    fn sharded_run_handles_degenerate_grids() {
        for threads in [0u64, 1, 31, 32, 33] {
            let w = ScriptedWorkload::uniform(
                threads,
                vec![Op::Compute {
                    cycles: 2,
                    insts: 2,
                }],
            );
            let serial = Simulator::new(GpuConfig::mobile_soc()).run(&w);
            let mut cfg = GpuConfig::mobile_soc();
            cfg.sim_threads = 4;
            let sharded = Simulator::new(cfg).run(&w);
            assert_eq!(serial, sharded, "threads={threads}");
        }
    }

    #[test]
    fn more_shards_than_sms_is_clamped() {
        let mut cfg = GpuConfig::mobile_soc();
        cfg.num_sms = 2;
        cfg.num_mem_partitions = 2;
        cfg.l2.bytes = cfg.l2.bytes / 4 * 2;
        cfg.sim_threads = 64;
        let w = stress_workload();
        let sharded = Simulator::new(cfg.clone()).run(&w);
        cfg.sim_threads = 1;
        let serial = Simulator::new(cfg).run(&w);
        assert_eq!(serial, sharded);
    }

    #[test]
    fn instrumented_run_reports_telemetry_without_changing_stats() {
        let w = stress_workload();
        let serial = Simulator::new(GpuConfig::mobile_soc()).run(&w);
        let mut cfg = GpuConfig::mobile_soc();
        cfg.sim_threads = 4;
        let (stats, telemetry) =
            Simulator::new(cfg).run_instrumented(&w, &mut crate::hooks::NullHooks);
        assert_eq!(serial, stats, "telemetry collection must not change stats");
        let t = telemetry.expect("sharded run returns telemetry");
        assert_eq!(t.shard_count, 3, "sim_threads=4 -> 3 decode shards");
        assert_eq!(t.shards.len(), 3);
        assert!(
            t.decoded_phases() > 0,
            "every phase the commit loop consumed was decoded by a shard"
        );
        assert!(t.commit_take_waits > 0, "the seam was taken at least once");
        assert!(
            t.shards.iter().all(|s| s.admission_depth.count > 0),
            "each shard sampled its seam depth"
        );
        let occ = t.commit_occupancy();
        assert!((0.0..=1.0).contains(&occ), "occupancy is a fraction: {occ}");
    }

    #[test]
    fn serial_run_has_no_telemetry() {
        let w = stress_workload();
        let (_, telemetry) = Simulator::new(GpuConfig::mobile_soc())
            .run_instrumented(&w, &mut crate::hooks::NullHooks);
        assert!(telemetry.is_none());
    }

    #[test]
    fn decode_shard_panic_propagates_instead_of_hanging() {
        struct Bomb;
        impl crate::workload::ThreadProgram for Bomb {
            fn next_op(&mut self) -> Option<Op> {
                panic!("workload bug");
            }
        }
        struct BombWorkload;
        impl Workload for BombWorkload {
            fn thread_count(&self) -> u64 {
                64
            }
            fn create_thread(&self, _index: u64) -> Box<dyn crate::workload::ThreadProgram + '_> {
                Box::new(Bomb)
            }
        }
        let mut cfg = GpuConfig::mobile_soc();
        cfg.sim_threads = 4;
        let result = std::panic::catch_unwind(|| Simulator::new(cfg).run(&BombWorkload));
        assert!(result.is_err(), "the panic must reach the caller");
    }
}
