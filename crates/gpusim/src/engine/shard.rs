//! A decode shard: one worker that owns a disjoint contiguous range of SMs
//! and decodes their warps' instruction streams ahead of the commit loop.
//!
//! A shard owns *decode* state only — warp programs and their launch lists.
//! All timing state (issue ports, RT units, caches, DRAM) stays with the
//! commit loop, which is what keeps the sharded engine bit-identical to the
//! serial one: a shard can run arbitrarily far ahead or behind without any
//! timing decision observing it. The shard's pace is bounded by the seam's
//! epoch protocol (see [`router`](super::router)): per-warp buffer windows
//! plus a residency-sized admission lookahead.

use std::collections::BTreeMap;

use crate::core::warp::Warp;
use crate::telemetry::ShardTelemetry;
use crate::workload::Workload;

use super::decode::{decode_one, DecodedPhase, WarpDesc};
use super::router::{AbortOnPanic, ShardRouter, MAX_BUFFERED};

/// Phases decoded per warp per round: amortizes seam locking while keeping
/// round-robin latency between a shard's warps low.
const CHUNK: usize = 32;

/// Static plan for one shard: which SMs it owns and their launch lists.
/// Plain data so it can be built on the driver thread and moved into the
/// shard's worker thread.
#[derive(Debug)]
pub(crate) struct ShardPlan {
    /// Index of this shard's first SM (SM ranges are contiguous).
    pub first_sm: usize,
    /// Launch list per owned SM, in launch order — the same lists the
    /// commit loop's `launch_grid` deals from.
    pub launch_lists: Vec<Vec<WarpDesc>>,
    /// How many warps per SM the shard may decode beyond the commit loop's
    /// launch watermark (one residency window: `max_warps_per_sm`).
    pub lookahead: usize,
}

/// Runs one shard's decode loop to completion (or until the run aborts),
/// returning what the shard measured about itself. Called on the shard's
/// worker thread. The telemetry is observational only: nothing in it feeds
/// back into decode or admission decisions.
pub(crate) fn run_shard(
    router: &ShardRouter,
    shard: usize,
    workload: &dyn Workload,
    line_bytes: u32,
    plan: ShardPlan,
) -> ShardTelemetry {
    let _guard = AbortOnPanic(router);
    let mut telemetry = ShardTelemetry::default();
    // zatel-lint: allow(wall-clock, reason = "audited shard telemetry: wall-clock accumulates only into the ShardTelemetry side channel, never into decode or admission state")
    let run_start = std::time::Instant::now();
    // Decode programs of warps currently being decoded, plus how many
    // warps of each SM's list have started decoding.
    let mut warps: BTreeMap<u64, Warp<'_>> = BTreeMap::new();
    let mut active: Vec<u64> = Vec::new();
    let mut started = vec![0usize; plan.launch_lists.len()];
    loop {
        let adm = router.admission(shard);
        telemetry
            .admission_depth
            .observe(adm.buffered.values().map(|&n| n as u64).sum());
        // Admit warps up to the watermark: list position < launched +
        // lookahead. The commit loop raises `launched` as slots free up.
        for (i, list) in plan.launch_lists.iter().enumerate() {
            let limit = (adm.launched[i] as usize + plan.lookahead).min(list.len());
            while started[i] < limit {
                let desc = list[started[i]];
                let sm = plan.first_sm + i;
                warps.insert(
                    desc.id,
                    Warp::new(workload, desc.id, sm, desc.first_thread, desc.lanes),
                );
                active.push(desc.id);
                started[i] += 1;
            }
        }
        // One decode round: visit every active warp with seam window
        // space, decode up to a chunk, publish.
        let mut progressed = false;
        let mut retired: Vec<u64> = Vec::new();
        for &warp_id in &active {
            let space = MAX_BUFFERED.saturating_sub(adm.buffered_of(warp_id));
            if space == 0 {
                continue;
            }
            // zatel-lint: allow(panic-hygiene, reason = "shard invariant: every id in `active` was inserted into `warps` at admission and removed only on retire")
            let warp = warps.get_mut(&warp_id).expect("active warp has a program");
            let mut batch = Vec::with_capacity(space.min(CHUNK));
            while batch.len() < space.min(CHUNK) {
                let phase = decode_one(warp, line_bytes);
                let is_retire = phase == DecodedPhase::Retire;
                batch.push(phase);
                if is_retire {
                    retired.push(warp_id);
                    break;
                }
            }
            telemetry.decoded_phases += batch.len() as u64;
            telemetry.publishes += 1;
            router.publish(shard, warp_id, batch);
            progressed = true;
        }
        for warp_id in &retired {
            warps.remove(warp_id);
        }
        active.retain(|id| !retired.contains(id));
        if active.is_empty()
            && started
                .iter()
                .zip(&plan.launch_lists)
                .all(|(&s, l)| s == l.len())
        {
            router.finish(shard);
            return finalize(telemetry, run_start);
        }
        // Nothing decodable: every active warp's window is full and no
        // warp is admissible. Sleep until the commit loop moves the epoch
        // (consumes or launches); the ticket makes the sleep race-free.
        if !progressed {
            telemetry.stall_waits += 1;
            // zatel-lint: allow(wall-clock, reason = "audited shard telemetry: stall wall-clock is recorded after the wait decision was already made, side channel only")
            let wait_start = std::time::Instant::now();
            let alive = router.wait_for_epoch(shard, adm.epoch);
            telemetry.stall_wall_us += wait_start.elapsed().as_micros() as u64;
            if !alive {
                return finalize(telemetry, run_start); // aborted
            }
        }
    }
}

/// Closes out a shard's telemetry: decode wall is the shard's total wall
/// minus the time it spent asleep on the epoch ticket.
fn finalize(mut telemetry: ShardTelemetry, run_start: std::time::Instant) -> ShardTelemetry {
    let total_us = run_start.elapsed().as_micros() as u64;
    telemetry.decode_wall_us = total_us.saturating_sub(telemetry.stall_wall_us);
    telemetry
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::decode::deal_warps;
    use crate::workload::{Op, ScriptedWorkload};

    /// Drives one shard synchronously on the test thread and drains its
    /// seam, checking the full decode stream of every warp arrives in
    /// order and ends in Retire.
    #[test]
    fn shard_decodes_all_owned_warps_to_retirement() {
        let threads = 32 * 5; // 5 warps on 2 SMs: lists of 3 and 2
        let w = ScriptedWorkload::per_thread(threads, |i| {
            vec![
                Op::Compute {
                    cycles: (i % 3) as u32 + 1,
                    insts: 1,
                },
                Op::Load {
                    addr: i * 64,
                    bytes: 4,
                },
            ]
        });
        let lists = deal_warps(threads, 32, 2);
        let router = ShardRouter::new(&[2]);
        let plan = ShardPlan {
            first_sm: 0,
            launch_lists: lists,
            lookahead: 32,
        };
        run_shard(&router, 0, &w, 128, plan);
        for warp_id in 0..5u64 {
            let phases: Vec<DecodedPhase> = router.take_phases(0, warp_id).into();
            assert_eq!(phases.len(), 3, "2 op phases + Retire");
            assert!(matches!(phases[0], DecodedPhase::Mix(_)));
            assert!(matches!(phases[1], DecodedPhase::Mix(_)));
            assert_eq!(phases[2], DecodedPhase::Retire);
        }
    }

    /// With a tiny lookahead the shard must stop at the admission
    /// watermark instead of decoding the whole list.
    #[test]
    fn shard_respects_admission_watermark() {
        let threads = 32 * 8;
        let w = ScriptedWorkload::uniform(
            threads,
            vec![Op::Compute {
                cycles: 1,
                insts: 1,
            }],
        );
        let lists = deal_warps(threads, 32, 1);
        let router = ShardRouter::new(&[1]);
        let plan = ShardPlan {
            first_sm: 0,
            launch_lists: lists,
            lookahead: 2,
        };
        std::thread::scope(|s| {
            s.spawn(|| run_shard(&router, 0, &w, 128, plan));
            // Only warps 0 and 1 are admissible until launches are noted.
            let first = router.take_phases(0, 0);
            assert_eq!(first.len(), 2, "one phase + Retire");
            assert!(router.admission(0).buffered.keys().all(|&w| w < 2));
            // Raising the watermark admits the rest; the shard drains.
            for _ in 0..8 {
                router.note_launched(0, 0);
            }
            for warp_id in 1..8u64 {
                let q = router.take_phases(0, warp_id);
                assert_eq!(q.len(), 2);
            }
        });
    }
}
