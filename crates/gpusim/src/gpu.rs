//! Public facade over the simulation engine.

use crate::config::GpuConfig;
use crate::engine::{Engine, EpochDriver, SerialSource};
use crate::hooks::{NullHooks, SimHooks};
use crate::stats::SimStats;
use crate::telemetry::SimTelemetry;
use crate::workload::Workload;

/// The cycle-level GPU simulator.
///
/// Construct with a [`GpuConfig`] and run a [`Workload`]; returns
/// [`SimStats`] containing all Table-I metrics. The engine internals live
/// in the crate-private `engine` module; to observe a run, pass a
/// [`SimHooks`] implementation to [`Simulator::run_with_hooks`].
///
/// # Examples
///
/// ```
/// use gpusim::{GpuConfig, Simulator};
/// use gpusim::workload::{Op, ScriptedWorkload};
///
/// let workload = ScriptedWorkload::uniform(1024, vec![
///     Op::Load { addr: 0, bytes: 4 },
///     Op::Compute { cycles: 8, insts: 8 },
/// ]);
/// let stats = Simulator::new(GpuConfig::mobile_soc()).run(&workload);
/// assert!(stats.cycles > 0);
/// assert!(stats.ipc() > 0.0);
/// ```
#[derive(Debug)]
pub struct Simulator {
    config: GpuConfig,
}

impl Simulator {
    /// Creates a simulator for the given configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`GpuConfig::validate`].
    pub fn new(config: GpuConfig) -> Self {
        // zatel-lint: allow(panic-hygiene, reason = "documented `# Panics` constructor contract; callers validate via GpuConfig::validate for a Result")
        config.validate().expect("invalid GPU configuration");
        Simulator { config }
    }

    /// The configuration being simulated.
    pub fn config(&self) -> &GpuConfig {
        &self.config
    }

    /// Runs `workload` to completion and returns the collected statistics.
    ///
    /// Equivalent to [`Simulator::run_with_hooks`] with
    /// [`NullHooks`](crate::hooks::NullHooks).
    pub fn run(&self, workload: &dyn Workload) -> SimStats {
        self.run_with_hooks(workload, &mut NullHooks)
    }

    /// Runs `workload` while reporting engine events to `hooks`.
    ///
    /// Dispatch is static: the engine monomorphizes per hook type, so the
    /// observability seam costs nothing when `hooks` is
    /// [`NullHooks`](crate::hooks::NullHooks). Hooks observe only — the
    /// returned statistics are bit-identical for every hook implementation.
    ///
    /// When [`GpuConfig::sim_threads`] is greater than one, the run is
    /// executed by the sharded engine on that many OS threads. Results,
    /// hook event order and serialized output are bit-identical to the
    /// serial engine for every thread count; hooks still fire on the
    /// calling thread only.
    pub fn run_with_hooks<H: SimHooks>(&self, workload: &dyn Workload, hooks: &mut H) -> SimStats {
        self.run_instrumented(workload, hooks).0
    }

    /// Runs `workload` like [`Simulator::run_with_hooks`], additionally
    /// returning the run's concurrency telemetry when either sharded mode
    /// executed it (`sim_threads > 1` or `timing_threads > 1`); fully
    /// serial runs return `None`.
    ///
    /// The telemetry is an observational wall-clock side channel
    /// ([`SimTelemetry`]): collecting it never changes the returned
    /// statistics, the hook event order, or any serialized output — the
    /// stats are bit-identical to [`Simulator::run`] in every mode.
    pub fn run_instrumented<H: SimHooks>(
        &self,
        workload: &dyn Workload,
        hooks: &mut H,
    ) -> (SimStats, Option<SimTelemetry>) {
        if self.config.sim_threads > 1 {
            let (stats, telemetry) = EpochDriver::new(&self.config, workload).run(hooks);
            (stats, Some(telemetry))
        } else {
            let mut source = SerialSource::new(
                workload,
                self.config.num_sms as usize,
                self.config.l1d.line_bytes,
            );
            let (stats, timing) =
                Engine::new(&self.config, hooks).run(workload.thread_count(), &mut source);
            let telemetry = timing.map(|t| SimTelemetry {
                runs: 1,
                timing: Some(t),
                ..SimTelemetry::default()
            });
            (stats, telemetry)
        }
    }
}
