//! Concurrency telemetry for the sharded engine.
//!
//! A [`SimTelemetry`] is the *observational* side channel of a
//! `sim_threads > 1` run: per-shard decode wall time and decoded-phase
//! counts, epoch stall counters, seam-depth distributions and commit-loop
//! occupancy. It answers "where did the threaded wall-clock go?" — the
//! measurement the sharding roadmap item needs before splitting the commit
//! loop further.
//!
//! Everything here is plain data deliberately disjoint from
//! [`SimStats`](crate::stats::SimStats): telemetry carries host wall-clock and so must
//! never feed a fingerprint, a hook stream or any timing decision. The
//! `zatel-lint` `obs-seam` rule enforces the other direction of that
//! boundary — no observability-crate types inside the engine — which is why
//! these types live in `gpusim` itself and are converted to metrics at the
//! pipeline layer.

/// The log2 bucket index of `value`: bucket 0 holds 0, bucket `i > 0`
/// holds `[2^(i-1), 2^i - 1]`.
///
/// Deliberately identical to `obs::registry::bucket_of` so a
/// [`DepthHistogram`] converts loss-free into an obs histogram (the obs
/// crate pins the equivalence in a test).
pub fn bucket_of(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// A log2-bucket histogram of `u64` samples, mirroring the bucket layout
/// of the obs metrics registry without depending on it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DepthHistogram {
    /// Per-bucket sample counts, index = [`bucket_of`] the sample.
    pub buckets: Vec<u64>,
    /// Number of samples recorded.
    pub count: u64,
    /// Sum of all samples (saturating).
    pub sum: u64,
    /// Smallest sample (meaningful only when `count > 0`).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl DepthHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        DepthHistogram::default()
    }

    /// Records one sample.
    pub fn observe(&mut self, value: u64) {
        let idx = bucket_of(value);
        if idx >= self.buckets.len() {
            self.buckets.resize(idx + 1, 0);
        }
        self.buckets[idx] += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = if self.count == 0 {
            value
        } else {
            self.min.min(value)
        };
        self.max = self.max.max(value);
        self.count += 1;
    }

    /// Adds all samples of `other` into `self`.
    pub fn merge(&mut self, other: &DepthHistogram) {
        if other.count == 0 {
            return;
        }
        if other.buckets.len() > self.buckets.len() {
            self.buckets.resize(other.buckets.len(), 0);
        }
        for (b, o) in self.buckets.iter_mut().zip(&other.buckets) {
            *b += o;
        }
        self.min = if self.count == 0 {
            other.min
        } else {
            self.min.min(other.min)
        };
        self.max = self.max.max(other.max);
        self.sum = self.sum.saturating_add(other.sum);
        self.count += other.count;
    }
}

/// What one decode shard measured about itself over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShardTelemetry {
    /// Wall-clock spent actively decoding/publishing, in microseconds
    /// (total shard wall minus epoch-stall wall).
    pub decode_wall_us: u64,
    /// Phases decoded and published by this shard.
    pub decoded_phases: u64,
    /// Seam batches published.
    pub publishes: u64,
    /// Times the shard went to sleep on the epoch ticket (nothing
    /// decodable: every window full, no warp admissible).
    pub stall_waits: u64,
    /// Wall-clock spent asleep waiting for an epoch bump, in microseconds.
    pub stall_wall_us: u64,
    /// Distribution of this shard's total buffered seam depth, sampled
    /// once per decode round.
    pub admission_depth: DepthHistogram,
}

impl ShardTelemetry {
    /// Adds `other`'s counters and samples into `self`, for aggregating
    /// the same shard rank across runs.
    pub fn merge(&mut self, other: &ShardTelemetry) {
        self.decode_wall_us += other.decode_wall_us;
        self.decoded_phases += other.decoded_phases;
        self.publishes += other.publishes;
        self.stall_waits += other.stall_waits;
        self.stall_wall_us += other.stall_wall_us;
        self.admission_depth.merge(&other.admission_depth);
    }
}

/// What one memory partition measured about itself over a timing-sharded
/// run (`timing_threads > 1`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimingPartitionTelemetry {
    /// Global partition index (address-interleave rank).
    pub partition: usize,
    /// Deferred requests (reads + write-throughs) serviced.
    pub requests: u64,
    /// Model cycles the partition's DRAM channel was busy transferring.
    pub dram_busy_cycles: u64,
    /// Model cycles the partition's interconnect ports were occupied.
    pub icnt_busy_cycles: u64,
}

/// What one timing worker measured about itself over a run.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimingWorkerTelemetry {
    /// Deferred requests this worker serviced.
    pub requests: u64,
    /// Work chunks drained from the seam queue.
    pub batches: u64,
    /// Wall-clock spent in partition arithmetic, in microseconds.
    pub busy_wall_us: u64,
    /// Times the worker parked on an empty queue.
    pub idle_waits: u64,
    /// Wall-clock spent parked, in microseconds.
    pub idle_wall_us: u64,
    /// Per-partition occupancy of the partitions this worker owned.
    pub partitions: Vec<TimingPartitionTelemetry>,
}

impl TimingWorkerTelemetry {
    /// Adds `other`'s counters into `self` (partitions merge pairwise by
    /// position), for aggregating the same worker rank across runs.
    pub fn merge(&mut self, other: &TimingWorkerTelemetry) {
        self.requests += other.requests;
        self.batches += other.batches;
        self.busy_wall_us += other.busy_wall_us;
        self.idle_waits += other.idle_waits;
        self.idle_wall_us += other.idle_wall_us;
        if other.partitions.len() > self.partitions.len() {
            self.partitions
                .resize_with(other.partitions.len(), TimingPartitionTelemetry::default);
        }
        for (mine, theirs) in self.partitions.iter_mut().zip(&other.partitions) {
            mine.partition = theirs.partition;
            mine.requests += theirs.requests;
            mine.dram_busy_cycles += theirs.dram_busy_cycles;
            mine.icnt_busy_cycles += theirs.icnt_busy_cycles;
        }
    }
}

/// Concurrency telemetry of one timing-sharded run (`timing_threads > 1`):
/// worker/partition occupancy plus the commit loop's seam accounting.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TimingTelemetry {
    /// Timing worker count of the run
    /// (`(timing_threads - 1).min(num_mem_partitions)`).
    pub worker_count: usize,
    /// Per-worker measurements, indexed by worker rank.
    pub workers: Vec<TimingWorkerTelemetry>,
    /// Epoch seam exchanges the commit loop performed.
    pub seam_exchanges: u64,
    /// Partition requests deferred to workers.
    pub deferred_requests: u64,
    /// Wall-clock the commit loop spent blocked in seam collects, in
    /// microseconds.
    pub commit_wait_us: u64,
}

impl TimingTelemetry {
    /// Total requests serviced across workers.
    pub fn requests(&self) -> u64 {
        self.workers.iter().map(|w| w.requests).sum()
    }

    /// Total wall-clock workers spent in partition arithmetic, in
    /// microseconds.
    pub fn busy_wall_us(&self) -> u64 {
        self.workers.iter().map(|w| w.busy_wall_us).sum()
    }

    /// Folds `other` into `self` (counters add, worker ranks merge
    /// pairwise), for aggregating the groups of one pipeline run.
    pub fn merge(&mut self, other: &TimingTelemetry) {
        self.worker_count = self.worker_count.max(other.worker_count);
        if other.workers.len() > self.workers.len() {
            self.workers
                .resize_with(other.workers.len(), TimingWorkerTelemetry::default);
        }
        for (mine, theirs) in self.workers.iter_mut().zip(&other.workers) {
            mine.merge(theirs);
        }
        self.seam_exchanges += other.seam_exchanges;
        self.deferred_requests += other.deferred_requests;
        self.commit_wait_us += other.commit_wait_us;
    }
}

/// Concurrency telemetry of one sharded run (or several merged runs).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimTelemetry {
    /// Simulation runs merged into this record.
    pub runs: u64,
    /// Decode shard count of the run (`(sim_threads - 1).min(num_sms)`).
    pub shard_count: usize,
    /// Per-shard measurements, indexed by shard rank.
    pub shards: Vec<ShardTelemetry>,
    /// Wall-clock of the commit loop (the calling thread's
    /// `Engine::run`), in microseconds.
    pub commit_wall_us: u64,
    /// Seam takes issued by the commit loop (each may block until the
    /// owning shard publishes).
    pub commit_take_waits: u64,
    /// Wall-clock the commit loop spent inside seam takes, in
    /// microseconds.
    pub commit_wait_us: u64,
    /// Timing-sharded telemetry (`None` for `timing_threads = 1` runs).
    pub timing: Option<TimingTelemetry>,
}

impl SimTelemetry {
    /// Total decode wall-clock across shards, in microseconds.
    pub fn decode_wall_us(&self) -> u64 {
        self.shards.iter().map(|s| s.decode_wall_us).sum()
    }

    /// Total phases decoded across shards.
    pub fn decoded_phases(&self) -> u64 {
        self.shards.iter().map(|s| s.decoded_phases).sum()
    }

    /// Total epoch stalls across shards.
    pub fn stall_waits(&self) -> u64 {
        self.shards.iter().map(|s| s.stall_waits).sum()
    }

    /// Fraction of the commit loop's wall-clock spent committing rather
    /// than blocked on seam takes (0 when unmeasured).
    pub fn commit_occupancy(&self) -> f64 {
        if self.commit_wall_us == 0 {
            0.0
        } else {
            self.commit_wall_us.saturating_sub(self.commit_wait_us) as f64
                / self.commit_wall_us as f64
        }
    }

    /// Folds `other` into `self` (counters add, shard ranks merge
    /// pairwise), for aggregating the groups of one pipeline run.
    pub fn merge(&mut self, other: &SimTelemetry) {
        self.runs += other.runs.max(1);
        self.shard_count = self.shard_count.max(other.shard_count);
        if other.shards.len() > self.shards.len() {
            self.shards
                .resize_with(other.shards.len(), ShardTelemetry::default);
        }
        for (mine, theirs) in self.shards.iter_mut().zip(&other.shards) {
            mine.merge(theirs);
        }
        self.commit_wall_us += other.commit_wall_us;
        self.commit_take_waits += other.commit_take_waits;
        self.commit_wait_us += other.commit_wait_us;
        if let Some(theirs) = &other.timing {
            self.timing
                .get_or_insert_with(TimingTelemetry::default)
                .merge(theirs);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_of_matches_documented_layout() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(256), 9);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn depth_histogram_observe_and_merge() {
        let mut a = DepthHistogram::new();
        for v in [0u64, 1, 7, 300] {
            a.observe(v);
        }
        assert_eq!((a.count, a.sum, a.min, a.max), (4, 308, 0, 300));
        assert_eq!(a.buckets[0], 1);
        assert_eq!(a.buckets[3], 1, "7 lands in [4,7]");
        let mut b = DepthHistogram::new();
        b.observe(1000);
        a.merge(&b);
        assert_eq!((a.count, a.max), (5, 1000));
        a.merge(&DepthHistogram::new());
        assert_eq!(a.count, 5, "merging empty is a no-op");
    }

    #[test]
    fn sim_telemetry_merge_aggregates_groups() {
        let one = SimTelemetry {
            runs: 1,
            shard_count: 2,
            shards: vec![
                ShardTelemetry {
                    decode_wall_us: 10,
                    decoded_phases: 100,
                    publishes: 4,
                    stall_waits: 1,
                    stall_wall_us: 5,
                    admission_depth: DepthHistogram::new(),
                },
                ShardTelemetry::default(),
            ],
            commit_wall_us: 100,
            commit_take_waits: 8,
            commit_wait_us: 25,
            timing: None,
        };
        let mut total = SimTelemetry::default();
        total.merge(&one);
        total.merge(&one);
        assert_eq!(total.runs, 2);
        assert_eq!(total.shard_count, 2);
        assert_eq!(total.decode_wall_us(), 20);
        assert_eq!(total.decoded_phases(), 200);
        assert_eq!(total.stall_waits(), 2);
        assert_eq!(total.commit_wall_us, 200);
        assert_eq!(total.commit_occupancy(), 0.75);
    }

    #[test]
    fn commit_occupancy_handles_unmeasured_runs() {
        assert_eq!(SimTelemetry::default().commit_occupancy(), 0.0);
    }
}
