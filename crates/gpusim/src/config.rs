//! GPU configuration, including the two evaluation presets of Table II and
//! the proportional downscaling used by Zatel (paper Section III-C).

use minijson::{FromJson, JsonError, Map, ToJson, Value};

/// Configuration of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub bytes: u64,
    /// Associativity; `0` means fully associative.
    pub ways: u32,
    /// Cache line size in bytes.
    pub line_bytes: u32,
    /// Load-to-use latency in core cycles.
    pub latency: u32,
}

impl CacheConfig {
    /// Number of cache lines.
    pub fn lines(&self) -> u64 {
        self.bytes / self.line_bytes as u64
    }

    /// Number of sets given the associativity.
    pub fn sets(&self) -> u64 {
        let ways = if self.ways == 0 {
            self.lines()
        } else {
            self.ways as u64
        };
        (self.lines() / ways).max(1)
    }

    /// Effective ways (resolving `0` = fully associative).
    pub fn effective_ways(&self) -> u64 {
        if self.ways == 0 {
            self.lines()
        } else {
            self.ways as u64
        }
    }
}

/// Full GPU configuration.
///
/// Mirrors the structure of the paper's Table II: independent components
/// (SMs), shared components (memory partitions with their L2 slice and DRAM
/// channel), and per-SM resources (warp slots, RT unit).
///
/// # Examples
///
/// ```
/// use gpusim::GpuConfig;
///
/// let mobile = GpuConfig::mobile_soc();
/// assert_eq!(mobile.num_sms, 8);
/// assert_eq!(mobile.num_mem_partitions, 4);
/// let down = mobile.downscaled(4).unwrap();
/// assert_eq!(down.num_sms, 2);
/// assert_eq!(down.num_mem_partitions, 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct GpuConfig {
    /// Configuration name, e.g. `"Mobile SoC"`.
    pub name: String,
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Number of memory partitions (each holds an L2 slice and DRAM channel).
    pub num_mem_partitions: u32,
    /// Maximum resident warps per SM.
    pub max_warps_per_sm: u32,
    /// Threads per warp (32 on all modeled GPUs).
    pub warp_size: u32,
    /// Registers per SM (occupancy limit; informational in this model).
    pub registers_per_sm: u32,
    /// RT accelerator units per SM.
    pub rt_units_per_sm: u32,
    /// Maximum warps concurrently resident in one RT unit.
    pub rt_max_warps: u32,
    /// RT unit MSHR entries (outstanding node/primitive fetches).
    pub rt_mshr_size: u32,
    /// Rays an RT unit can box/primitive-test per cycle.
    pub rt_lanes_per_cycle: u32,
    /// L1 data cache (per SM).
    pub l1d: CacheConfig,
    /// L2 unified cache (total; split evenly across memory partitions).
    pub l2: CacheConfig,
    /// Interconnect one-way latency in core cycles.
    pub interconnect_latency: u32,
    /// Interconnect port bandwidth in bytes per core cycle (per partition,
    /// per direction).
    pub interconnect_bytes_per_cycle: f32,
    /// Additional DRAM access latency beyond L2, in core cycles.
    pub dram_latency: u32,
    /// DRAM bandwidth per channel in bytes per core cycle.
    pub dram_bytes_per_cycle: f32,
    /// Warp-instruction issue slots per SM per cycle.
    pub issue_width: u32,
    /// Core clock in MHz (used to convert cycles to wall time).
    pub core_clock_mhz: u32,
    /// Memory clock in MHz.
    pub memory_clock_mhz: u32,
    /// OS threads the engine may use for one simulation (`1` = the serial
    /// engine). Purely an execution knob: results are bit-identical for
    /// every value, so it is *excluded* from [`ToJson`] output — serialized
    /// configs, artifact fingerprints and trace JSON never vary with it.
    /// [`FromJson`] still accepts an explicit `"sim_threads"` key so
    /// inline/custom config files can request a threaded run.
    pub sim_threads: u32,
    /// OS threads the engine may use for the memory-partition timing model
    /// (`1` = inline timing on the commit thread). Like
    /// [`sim_threads`](Self::sim_threads) this is purely an execution knob:
    /// the timing-sharded engine is bit-identical to the serial one for
    /// every value, so it is *excluded* from [`ToJson`] output while
    /// [`FromJson`] still accepts an explicit `"timing_threads"` key. The
    /// two knobs compose — decode shards and timing workers come out of
    /// separate pools.
    pub timing_threads: u32,
}

/// Error returned when a configuration cannot be downscaled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DownscaleError {
    /// The factor that was requested.
    pub factor: u32,
    reason: String,
}

impl std::fmt::Display for DownscaleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cannot downscale by {}: {}", self.factor, self.reason)
    }
}

impl std::error::Error for DownscaleError {}

impl GpuConfig {
    /// The Mobile System-on-Chip configuration of Table II.
    pub fn mobile_soc() -> Self {
        GpuConfig {
            name: "Mobile SoC".to_owned(),
            num_sms: 8,
            num_mem_partitions: 4,
            max_warps_per_sm: 32,
            warp_size: 32,
            registers_per_sm: 32768,
            rt_units_per_sm: 1,
            rt_max_warps: 4,
            rt_mshr_size: 64,
            rt_lanes_per_cycle: 4,
            l1d: CacheConfig {
                bytes: 64 * 1024,
                ways: 0,
                line_bytes: 128,
                latency: 20,
            },
            l2: CacheConfig {
                bytes: 3 * 1024 * 1024,
                ways: 16,
                line_bytes: 128,
                latency: 160,
            },
            interconnect_latency: 8,
            interconnect_bytes_per_cycle: 32.0,
            dram_latency: 100,
            dram_bytes_per_cycle: 16.0,
            issue_width: 1,
            core_clock_mhz: 1365,
            memory_clock_mhz: 3500,
            sim_threads: 1,
            timing_threads: 1,
        }
    }

    /// The NVIDIA Turing RTX 2060 configuration of Table II.
    pub fn rtx_2060() -> Self {
        GpuConfig {
            name: "RTX 2060".to_owned(),
            num_sms: 30,
            num_mem_partitions: 12,
            max_warps_per_sm: 32,
            warp_size: 32,
            registers_per_sm: 65536,
            rt_units_per_sm: 1,
            rt_max_warps: 4,
            rt_mshr_size: 64,
            rt_lanes_per_cycle: 4,
            l1d: CacheConfig {
                bytes: 64 * 1024,
                ways: 0,
                line_bytes: 128,
                latency: 20,
            },
            l2: CacheConfig {
                bytes: 3 * 1024 * 1024,
                ways: 16,
                line_bytes: 128,
                latency: 160,
            },
            interconnect_latency: 8,
            interconnect_bytes_per_cycle: 32.0,
            dram_latency: 100,
            dram_bytes_per_cycle: 16.0,
            issue_width: 1,
            core_clock_mhz: 1365,
            memory_clock_mhz: 3500,
            sim_threads: 1,
            timing_threads: 1,
        }
    }

    /// The downscaling factor Zatel picks for this configuration: the
    /// greatest common divisor of the SM count and memory-partition count
    /// (paper Section III-C). Mobile SoC → 4, RTX 2060 → 6.
    pub fn natural_downscale_factor(&self) -> u32 {
        gcd(self.num_sms, self.num_mem_partitions)
    }

    /// Returns this configuration downscaled by `factor`: SMs and memory
    /// partitions are divided by it. Shared resources scale automatically —
    /// the L2 is sliced per memory partition and DRAM bandwidth is
    /// per-channel, so dividing the partition count divides both, exactly as
    /// the paper argues.
    ///
    /// # Errors
    ///
    /// Returns [`DownscaleError`] if `factor` is zero or does not evenly
    /// divide both component counts.
    pub fn downscaled(&self, factor: u32) -> Result<GpuConfig, DownscaleError> {
        if factor == 0 {
            return Err(DownscaleError {
                factor,
                reason: "factor must be positive".into(),
            });
        }
        if !self.num_sms.is_multiple_of(factor) || !self.num_mem_partitions.is_multiple_of(factor) {
            return Err(DownscaleError {
                factor,
                reason: format!(
                    "{} SMs / {} partitions not divisible",
                    self.num_sms, self.num_mem_partitions
                ),
            });
        }
        let mut down = self.clone();
        down.name = format!("{} /{}", self.name, factor);
        down.num_sms = self.num_sms / factor;
        down.num_mem_partitions = self.num_mem_partitions / factor;
        // L2 is physically per-partition: total capacity shrinks with the
        // partition count.
        down.l2.bytes = self.l2.bytes / factor as u64;
        Ok(down)
    }

    /// Total L2 capacity available to one memory partition.
    pub fn l2_slice(&self) -> CacheConfig {
        CacheConfig {
            bytes: self.l2.bytes / self.num_mem_partitions as u64,
            ..self.l2
        }
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.num_sms == 0 {
            return Err("num_sms must be positive".into());
        }
        if self.num_mem_partitions == 0 {
            return Err("num_mem_partitions must be positive".into());
        }
        if self.warp_size == 0 || self.max_warps_per_sm == 0 {
            return Err("warp geometry must be positive".into());
        }
        if self.l1d.line_bytes != self.l2.line_bytes {
            return Err("L1 and L2 line sizes must match".into());
        }
        if !self.l2.bytes.is_multiple_of(self.num_mem_partitions as u64) {
            return Err("L2 must divide evenly across memory partitions".into());
        }
        if self.issue_width == 0 {
            return Err("issue_width must be positive".into());
        }
        if self.dram_bytes_per_cycle <= 0.0 {
            return Err("dram_bytes_per_cycle must be positive".into());
        }
        if self.interconnect_bytes_per_cycle <= 0.0 {
            return Err("interconnect_bytes_per_cycle must be positive".into());
        }
        if self.sim_threads == 0 {
            return Err("sim_threads must be positive (1 = serial engine)".into());
        }
        if self.timing_threads == 0 {
            return Err("timing_threads must be positive (1 = inline timing)".into());
        }
        Ok(())
    }
}

fn field_u64(value: &Value, ty: &str, field: &str) -> Result<u64, JsonError> {
    value
        .get(field)
        .and_then(Value::as_u64)
        .ok_or_else(|| JsonError::missing_field(ty, field))
}

fn field_u32(value: &Value, ty: &str, field: &str) -> Result<u32, JsonError> {
    field_u64(value, ty, field)
        .and_then(|v| u32::try_from(v).map_err(|_| JsonError::missing_field(ty, field)))
}

fn field_f32(value: &Value, ty: &str, field: &str) -> Result<f32, JsonError> {
    value
        .get(field)
        .and_then(Value::as_f64)
        .map(|v| v as f32)
        .ok_or_else(|| JsonError::missing_field(ty, field))
}

impl ToJson for CacheConfig {
    fn to_json(&self) -> Value {
        let mut map = Map::new();
        map.insert("bytes".to_string(), Value::from(self.bytes));
        map.insert("ways".to_string(), Value::from(self.ways));
        map.insert("line_bytes".to_string(), Value::from(self.line_bytes));
        map.insert("latency".to_string(), Value::from(self.latency));
        Value::Object(map)
    }
}

impl FromJson for CacheConfig {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        Ok(CacheConfig {
            bytes: field_u64(value, "CacheConfig", "bytes")?,
            ways: field_u32(value, "CacheConfig", "ways")?,
            line_bytes: field_u32(value, "CacheConfig", "line_bytes")?,
            latency: field_u32(value, "CacheConfig", "latency")?,
        })
    }
}

impl ToJson for GpuConfig {
    fn to_json(&self) -> Value {
        let mut map = Map::new();
        map.insert("name".to_string(), Value::from(self.name.clone()));
        macro_rules! put_u32 {
            ($($field:ident),*) => {
                $( map.insert(stringify!($field).to_string(), Value::from(self.$field)); )*
            };
        }
        put_u32!(
            num_sms,
            num_mem_partitions,
            max_warps_per_sm,
            warp_size,
            registers_per_sm,
            rt_units_per_sm,
            rt_max_warps,
            rt_mshr_size,
            rt_lanes_per_cycle
        );
        map.insert("l1d".to_string(), self.l1d.to_json());
        map.insert("l2".to_string(), self.l2.to_json());
        map.insert(
            "interconnect_latency".to_string(),
            Value::from(self.interconnect_latency),
        );
        map.insert(
            "interconnect_bytes_per_cycle".to_string(),
            Value::from(self.interconnect_bytes_per_cycle),
        );
        map.insert("dram_latency".to_string(), Value::from(self.dram_latency));
        map.insert(
            "dram_bytes_per_cycle".to_string(),
            Value::from(self.dram_bytes_per_cycle),
        );
        map.insert("issue_width".to_string(), Value::from(self.issue_width));
        map.insert(
            "core_clock_mhz".to_string(),
            Value::from(self.core_clock_mhz),
        );
        map.insert(
            "memory_clock_mhz".to_string(),
            Value::from(self.memory_clock_mhz),
        );
        Value::Object(map)
    }
}

impl FromJson for GpuConfig {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        const TY: &str = "GpuConfig";
        Ok(GpuConfig {
            name: value
                .get("name")
                .and_then(Value::as_str)
                .ok_or_else(|| JsonError::missing_field(TY, "name"))?
                .to_string(),
            num_sms: field_u32(value, TY, "num_sms")?,
            num_mem_partitions: field_u32(value, TY, "num_mem_partitions")?,
            max_warps_per_sm: field_u32(value, TY, "max_warps_per_sm")?,
            warp_size: field_u32(value, TY, "warp_size")?,
            registers_per_sm: field_u32(value, TY, "registers_per_sm")?,
            rt_units_per_sm: field_u32(value, TY, "rt_units_per_sm")?,
            rt_max_warps: field_u32(value, TY, "rt_max_warps")?,
            rt_mshr_size: field_u32(value, TY, "rt_mshr_size")?,
            rt_lanes_per_cycle: field_u32(value, TY, "rt_lanes_per_cycle")?,
            l1d: CacheConfig::from_json(
                value
                    .get("l1d")
                    .ok_or_else(|| JsonError::missing_field(TY, "l1d"))?,
            )?,
            l2: CacheConfig::from_json(
                value
                    .get("l2")
                    .ok_or_else(|| JsonError::missing_field(TY, "l2"))?,
            )?,
            interconnect_latency: field_u32(value, TY, "interconnect_latency")?,
            interconnect_bytes_per_cycle: field_f32(value, TY, "interconnect_bytes_per_cycle")?,
            dram_latency: field_u32(value, TY, "dram_latency")?,
            dram_bytes_per_cycle: field_f32(value, TY, "dram_bytes_per_cycle")?,
            issue_width: field_u32(value, TY, "issue_width")?,
            core_clock_mhz: field_u32(value, TY, "core_clock_mhz")?,
            memory_clock_mhz: field_u32(value, TY, "memory_clock_mhz")?,
            // Execution knob, absent from ToJson output: optional on the
            // way in so custom config files can opt into threaded runs.
            sim_threads: match value.get("sim_threads") {
                Some(v) => v
                    .as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| JsonError::missing_field(TY, "sim_threads"))?,
                None => 1,
            },
            timing_threads: match value.get("timing_threads") {
                Some(v) => v
                    .as_u64()
                    .and_then(|v| u32::try_from(v).ok())
                    .ok_or_else(|| JsonError::missing_field(TY, "timing_threads"))?,
                None => 1,
            },
        })
    }
}

/// Greatest common divisor.
pub fn gcd(a: u32, b: u32) -> u32 {
    let (mut a, mut b) = (a, b);
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_table_ii() {
        let m = GpuConfig::mobile_soc();
        assert_eq!((m.num_sms, m.num_mem_partitions), (8, 4));
        assert_eq!(m.registers_per_sm, 32768);
        let r = GpuConfig::rtx_2060();
        assert_eq!((r.num_sms, r.num_mem_partitions), (30, 12));
        assert_eq!(r.registers_per_sm, 65536);
        for cfg in [m, r] {
            assert_eq!(cfg.warp_size, 32);
            assert_eq!(cfg.max_warps_per_sm, 32);
            assert_eq!(cfg.rt_max_warps, 4);
            assert_eq!(cfg.rt_mshr_size, 64);
            assert_eq!(cfg.l1d.bytes, 64 * 1024);
            assert_eq!(cfg.l2.bytes, 3 * 1024 * 1024);
            assert_eq!(cfg.l2.ways, 16);
            assert_eq!(cfg.core_clock_mhz, 1365);
            assert_eq!(cfg.memory_clock_mhz, 3500);
            cfg.validate().expect("preset must validate");
        }
    }

    #[test]
    fn natural_factors_match_paper() {
        assert_eq!(GpuConfig::mobile_soc().natural_downscale_factor(), 4);
        assert_eq!(GpuConfig::rtx_2060().natural_downscale_factor(), 6);
    }

    #[test]
    fn paper_example_80_sms_10_mcs() {
        let mut cfg = GpuConfig::rtx_2060();
        cfg.num_sms = 80;
        cfg.num_mem_partitions = 10;
        cfg.l2.bytes = 10 * 1024 * 1024;
        assert_eq!(cfg.natural_downscale_factor(), 10);
        let d = cfg.downscaled(10).unwrap();
        assert_eq!((d.num_sms, d.num_mem_partitions), (8, 1));
    }

    #[test]
    fn downscale_divides_shared_resources() {
        let m = GpuConfig::mobile_soc();
        let d = m.downscaled(4).unwrap();
        assert_eq!(d.l2.bytes, m.l2.bytes / 4);
        assert_eq!(d.l2_slice().bytes, m.l2_slice().bytes);
        // Per-channel DRAM bandwidth unchanged; total bandwidth scaled by
        // the partition count implicitly.
        assert_eq!(d.dram_bytes_per_cycle, m.dram_bytes_per_cycle);
        d.validate().expect("downscaled config must stay valid");
    }

    #[test]
    fn downscale_rejects_uneven_factor() {
        let m = GpuConfig::mobile_soc();
        assert!(m.downscaled(3).is_err());
        assert!(m.downscaled(0).is_err());
        let err = m.downscaled(3).unwrap_err();
        assert!(err.to_string().contains("cannot downscale by 3"));
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd(8, 4), 4);
        assert_eq!(gcd(30, 12), 6);
        assert_eq!(gcd(80, 10), 10);
        assert_eq!(gcd(7, 13), 1);
        assert_eq!(gcd(0, 5), 5);
    }

    #[test]
    fn cache_geometry() {
        let c = CacheConfig {
            bytes: 64 * 1024,
            ways: 0,
            line_bytes: 128,
            latency: 20,
        };
        assert_eq!(c.lines(), 512);
        assert_eq!(c.sets(), 1, "fully associative = one set");
        assert_eq!(c.effective_ways(), 512);
        let c2 = CacheConfig {
            bytes: 1024 * 1024,
            ways: 16,
            line_bytes: 128,
            latency: 160,
        };
        assert_eq!(c2.sets(), 512);
    }

    #[test]
    fn sim_threads_is_an_unserialized_execution_knob() {
        let mut cfg = GpuConfig::mobile_soc();
        assert_eq!(cfg.sim_threads, 1, "presets default to the serial engine");
        cfg.sim_threads = 4;
        cfg.validate().expect("threaded config is valid");
        // Never serialized: a threaded and a serial config print the same
        // JSON, so fingerprints and trace output cannot depend on it.
        let json = cfg.to_json().to_string();
        assert!(!json.contains("sim_threads"));
        assert_eq!(json, GpuConfig::mobile_soc().to_json().to_string());
        // But an explicit key is honored on the way in.
        let parsed = Value::parse(&json).unwrap();
        assert_eq!(GpuConfig::from_json(&parsed).unwrap().sim_threads, 1);
        let threaded = json.replacen('{', "{\"sim_threads\": 4,", 1);
        let parsed = Value::parse(&threaded).unwrap();
        assert_eq!(GpuConfig::from_json(&parsed).unwrap().sim_threads, 4);
        cfg.sim_threads = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn timing_threads_is_an_unserialized_execution_knob() {
        let mut cfg = GpuConfig::mobile_soc();
        assert_eq!(cfg.timing_threads, 1, "presets default to inline timing");
        cfg.timing_threads = 4;
        cfg.validate().expect("timing-sharded config is valid");
        // Never serialized: timing-sharded and inline configs print the
        // same JSON, so fingerprints and trace output cannot depend on it.
        let json = cfg.to_json().to_string();
        assert!(!json.contains("timing_threads"));
        assert_eq!(json, GpuConfig::mobile_soc().to_json().to_string());
        // But an explicit key is honored on the way in.
        let parsed = Value::parse(&json).unwrap();
        assert_eq!(GpuConfig::from_json(&parsed).unwrap().timing_threads, 1);
        let sharded = json.replacen('{', "{\"timing_threads\": 4,", 1);
        let parsed = Value::parse(&sharded).unwrap();
        assert_eq!(GpuConfig::from_json(&parsed).unwrap().timing_threads, 4);
        cfg.timing_threads = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_catches_bad_configs() {
        let mut c = GpuConfig::mobile_soc();
        c.num_sms = 0;
        assert!(c.validate().is_err());
        let mut c = GpuConfig::mobile_soc();
        c.l1d.line_bytes = 64;
        assert!(c.validate().is_err());
    }
}
