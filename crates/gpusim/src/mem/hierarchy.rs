//! Composition of L1 caches, L2 slices and DRAM channels into the modeled
//! memory system of the paper's Fig. 2.

use crate::config::GpuConfig;
use crate::hooks::{CacheLevel, NullHooks, SimHooks};
use crate::stats::SimStats;

use super::cache::{Cache, Probe};
use super::dram::DramChannel;
use super::interconnect::Interconnect;

/// Cycles an L2 slice's tag pipeline is occupied per access (throughput
/// limit creating backpressure under load).
const L2_SERVICE_CYCLES: u64 = 2;

/// The full memory hierarchy: one L1D per SM, one L2 slice + DRAM channel
/// per memory partition, connected by a fixed-latency interconnect.
///
/// Line-granular addresses are interleaved across partitions, so shrinking
/// the partition count (GPU downscaling) automatically shrinks total L2
/// capacity and aggregate DRAM bandwidth — the property Zatel's downscaling
/// step relies on.
#[derive(Debug)]
pub struct MemoryHierarchy {
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l2_next_free: Vec<u64>,
    dram: Vec<DramChannel>,
    icnt: Interconnect,
    line_bytes: u32,
    l1_latency: u32,
    l2_latency: u32,
    read_latency_sum: u64,
    reads: u64,
}

/// Bytes of a read-request packet (address + metadata).
const REQUEST_BYTES: u32 = 8;

impl MemoryHierarchy {
    /// Builds the hierarchy for `config`.
    pub fn new(config: &GpuConfig) -> Self {
        let l1 = (0..config.num_sms)
            .map(|_| Cache::new("L1D", config.l1d))
            .collect();
        let slice = config.l2_slice();
        let l2 = (0..config.num_mem_partitions)
            .map(|_| Cache::new("L2", slice))
            .collect();
        let dram = (0..config.num_mem_partitions)
            .map(|_| DramChannel::new(config.dram_bytes_per_cycle, config.dram_latency))
            .collect();
        MemoryHierarchy {
            l1,
            l2,
            l2_next_free: vec![0; config.num_mem_partitions as usize],
            dram,
            icnt: Interconnect::new(
                config.num_mem_partitions,
                config.interconnect_latency,
                config.interconnect_bytes_per_cycle,
            ),
            line_bytes: config.l1d.line_bytes,
            l1_latency: config.l1d.latency,
            l2_latency: config.l2.latency,
            read_latency_sum: 0,
            reads: 0,
        }
    }

    /// Cache-line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Converts a byte address to a line-granular address.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes as u64
    }

    fn partition_of(&self, line: u64) -> usize {
        (line % self.l2.len() as u64) as usize
    }

    /// Issues a read of cache line `line` from SM `sm` at cycle `now`;
    /// returns the cycle the data is available in registers.
    ///
    /// # Panics
    ///
    /// Panics if `sm` is out of range.
    pub fn read(&mut self, sm: usize, line: u64, now: u64) -> u64 {
        self.read_with(sm, line, now, &mut NullHooks)
    }

    /// Like [`MemoryHierarchy::read`], reporting cache probes and DRAM
    /// transfers to `hooks`. Hooks observe only; the returned time is
    /// identical for every hook implementation.
    pub fn read_with<H: SimHooks>(&mut self, sm: usize, line: u64, now: u64, hooks: &mut H) -> u64 {
        let t = self.read_inner(sm, line, now, hooks);
        self.read_latency_sum += t - now;
        self.reads += 1;
        hooks.on_mem_read(sm, t - now);
        t
    }

    fn read_inner<H: SimHooks>(&mut self, sm: usize, line: u64, now: u64, hooks: &mut H) -> u64 {
        let l1_ready = now + self.l1_latency as u64;
        match self.l1[sm].probe(line, now) {
            Probe::Hit { valid_from } => {
                hooks.on_cache_access(CacheLevel::L1, true);
                return l1_ready.max(valid_from);
            }
            Probe::Miss => hooks.on_cache_access(CacheLevel::L1, false),
        }

        // Miss: request crosses the interconnect to the owning partition.
        let part = self.partition_of(line);
        let arrive_l2 = self
            .icnt
            .to_memory(part, now + self.l1_latency as u64, REQUEST_BYTES);
        let slot = arrive_l2.max(self.l2_next_free[part]);
        self.l2_next_free[part] = slot + L2_SERVICE_CYCLES;
        let queue_delay = slot - arrive_l2;

        let data_ready = match self.l2[part].probe(line, arrive_l2) {
            Probe::Hit { valid_from } => {
                hooks.on_cache_access(CacheLevel::L2, true);
                // The configured L2 latency is end-to-end from the SM, so
                // the response departs such that an uncontended crossing
                // arrives at exactly `now + l2_latency (+ queueing)`;
                // response-port contention adds on top.
                let depart = (now + self.l2_latency as u64 + queue_delay)
                    .saturating_sub(self.icnt.latency() as u64)
                    .max(valid_from);
                self.icnt.from_memory(part, depart, self.line_bytes)
            }
            Probe::Miss => {
                hooks.on_cache_access(CacheLevel::L2, false);
                // Request continues to DRAM after the L2 pipeline.
                let arrive_dram = slot + L2_SERVICE_CYCLES;
                let done = self.dram[part].service_at(
                    arrive_dram,
                    line * self.line_bytes as u64,
                    self.line_bytes,
                );
                self.l2[part].fill(line, done);
                hooks.on_dram_transfer(part, self.line_bytes, done);
                self.icnt.from_memory(part, done, self.line_bytes)
            }
        };
        self.l1[sm].fill(line, data_ready);
        data_ready
    }

    /// Issues a write of cache line `line` (write-through, no-allocate,
    /// fire-and-forget). Consumes L2/DRAM bandwidth but the warp does not
    /// wait; returns the cycle the store has left the SM.
    pub fn write(&mut self, sm: usize, line: u64, now: u64) -> u64 {
        self.write_with(sm, line, now, &mut NullHooks)
    }

    /// Like [`MemoryHierarchy::write`], reporting the DRAM transfer to
    /// `hooks`.
    pub fn write_with<H: SimHooks>(
        &mut self,
        sm: usize,
        line: u64,
        now: u64,
        hooks: &mut H,
    ) -> u64 {
        let _ = sm;
        let part = self.partition_of(line);
        let arrive_l2 = self
            .icnt
            .to_memory(part, now + self.l1_latency as u64, self.line_bytes);
        let slot = arrive_l2.max(self.l2_next_free[part]);
        self.l2_next_free[part] = slot + L2_SERVICE_CYCLES;
        // Writes drain through the L2 to DRAM; they occupy bus bandwidth.
        let done = self.dram[part].service_at(
            slot + L2_SERVICE_CYCLES,
            line * self.line_bytes as u64,
            self.line_bytes,
        );
        hooks.on_dram_transfer(part, self.line_bytes, done);
        now + 1
    }

    /// Accumulates cache and DRAM counters into `stats`.
    pub fn export_stats(&self, stats: &mut SimStats) {
        stats.l1_accesses = self.l1.iter().map(Cache::accesses).sum();
        stats.l1_misses = self.l1.iter().map(Cache::misses).sum();
        stats.l2_accesses = self.l2.iter().map(Cache::accesses).sum();
        stats.l2_misses = self.l2.iter().map(Cache::misses).sum();
        stats.dram_busy_cycles = self.dram.iter().map(DramChannel::busy_cycles).sum();
        stats.dram_active_cycles = self.dram.iter().map(DramChannel::active_cycles).sum();
        stats.dram_transactions = self.dram.iter().map(DramChannel::transactions).sum();
        stats.dram_row_hits = self.dram.iter().map(DramChannel::row_hits).sum();
        stats.icnt_transfers = self.icnt.transfers();
        stats.icnt_busy_cycles = self.icnt.busy_cycles();
        stats.dram_channels = self.dram.len() as u32;
        stats.read_latency_sum = self.read_latency_sum;
        stats.reads = self.reads;
    }

    /// The cycle at which all DRAM channels finish their scheduled
    /// transfers (write-back drain).
    pub fn drain_time(&self) -> u64 {
        self.dram
            .iter()
            .map(DramChannel::drain_time)
            .max()
            .unwrap_or(0)
    }

    /// Average read latency in cycles observed so far.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(&GpuConfig::mobile_soc())
    }

    #[test]
    fn l1_hit_is_fast() {
        let mut h = hierarchy();
        let cold = h.read(0, 100, 0);
        assert!(cold > 100, "cold miss goes to DRAM");
        let warm = h.read(0, 100, cold);
        assert_eq!(warm, cold + 20, "L1 hit costs exactly the L1 latency");
    }

    #[test]
    fn l2_hit_is_medium() {
        let mut h = hierarchy();
        let cold = h.read(0, 100, 0);
        // Another SM misses L1 but hits L2 (after the first fill completed).
        let l2_hit = h.read(1, 100, cold);
        assert!(l2_hit >= cold + 160);
        assert!(l2_hit < cold + 300, "L2 hit must not pay DRAM again");
    }

    #[test]
    fn partitions_interleave_by_line() {
        let h = hierarchy();
        let parts: Vec<usize> = (0..8).map(|l| h.partition_of(l)).collect();
        assert_eq!(parts, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn stats_reflect_traffic() {
        let mut h = hierarchy();
        h.read(0, 1, 0);
        h.read(0, 1, 1000);
        h.read(2, 1, 2000);
        let mut s = SimStats::default();
        h.export_stats(&mut s);
        assert_eq!(s.l1_accesses, 3);
        assert_eq!(s.l1_misses, 2, "two SMs each cold-miss once");
        assert_eq!(s.l2_accesses, 2);
        assert_eq!(s.l2_misses, 1, "second SM hits in L2");
        assert_eq!(s.dram_transactions, 1);
        assert_eq!(s.dram_channels, 4);
    }

    #[test]
    fn writes_consume_bandwidth_without_stalling() {
        let mut h = hierarchy();
        let t = h.write(0, 5, 10);
        assert_eq!(t, 11, "stores retire immediately");
        let mut s = SimStats::default();
        h.export_stats(&mut s);
        assert!(s.dram_busy_cycles > 0);
    }

    #[test]
    fn contention_on_one_partition_queues() {
        let mut h = hierarchy();
        // Many distinct lines, all mapping to partition 0 (line % 4 == 0),
        // issued simultaneously: completion times must spread out.
        let mut times: Vec<u64> = (0..16).map(|i| h.read(0, i * 4, 0)).collect();
        times.sort_unstable();
        // 16 lines x 8 bus cycles each serialize on the channel; the first
        // transaction's row activate (latency-only) narrows the observable
        // spread by up to the miss penalty.
        assert!(
            times.last().unwrap() - times.first().unwrap() >= 8 * 15 - 20,
            "DRAM bandwidth must serialize concurrent misses"
        );
    }
}
