//! Composition of L1 caches, L2 slices and DRAM channels into the modeled
//! memory system of the paper's Fig. 2.

use crate::config::GpuConfig;
use crate::hooks::{CacheLevel, NullHooks, SimHooks};
use crate::stats::SimStats;

use super::cache::{Cache, Probe};
use super::partition::MemPartition;

/// The full memory hierarchy: one L1D per SM, one [`MemPartition`] (L2
/// slice + DRAM channel + interconnect ports) per memory partition.
///
/// Line-granular addresses are interleaved across partitions, so shrinking
/// the partition count (GPU downscaling) automatically shrinks total L2
/// capacity and aggregate DRAM bandwidth — the property Zatel's downscaling
/// step relies on. The partition-side timing lives in [`MemPartition`] so
/// the timing-sharded engine can detach the partitions onto worker threads;
/// this type is the serial, inline composition of the same arithmetic.
#[derive(Debug)]
pub struct MemoryHierarchy {
    l1: Vec<Cache>,
    parts: Vec<MemPartition>,
    /// Interleave width — fixed at construction so [`MemoryHierarchy::partition_of`]
    /// stays valid while the partitions are detached onto timing workers.
    num_parts: usize,
    line_bytes: u32,
    l1_latency: u32,
    read_latency_sum: u64,
    reads: u64,
}

impl MemoryHierarchy {
    /// Builds the hierarchy for `config`.
    pub fn new(config: &GpuConfig) -> Self {
        let l1 = (0..config.num_sms)
            .map(|_| Cache::new("L1D", config.l1d))
            .collect();
        let parts = (0..config.num_mem_partitions)
            .map(|_| MemPartition::new(config))
            .collect();
        MemoryHierarchy {
            l1,
            parts,
            num_parts: config.num_mem_partitions as usize,
            line_bytes: config.l1d.line_bytes,
            l1_latency: config.l1d.latency,
            read_latency_sum: 0,
            reads: 0,
        }
    }

    /// Cache-line size in bytes.
    pub fn line_bytes(&self) -> u32 {
        self.line_bytes
    }

    /// Converts a byte address to a line-granular address.
    pub fn line_of(&self, addr: u64) -> u64 {
        addr / self.line_bytes as u64
    }

    /// The memory partition owning `line` (address-interleaved).
    pub(crate) fn partition_of(&self, line: u64) -> usize {
        (line % self.num_parts as u64) as usize
    }

    /// L1 load-to-use latency in cycles.
    pub(crate) fn l1_latency(&self) -> u64 {
        self.l1_latency as u64
    }

    /// Detaches the partition timing state so the timing-sharded engine can
    /// move it onto worker threads. The hierarchy keeps the L1 front end;
    /// partition-side calls are invalid until
    /// [`MemoryHierarchy::restore_partitions`].
    pub(crate) fn take_partitions(&mut self) -> Vec<MemPartition> {
        std::mem::take(&mut self.parts)
    }

    /// Re-attaches partitions previously taken with
    /// [`MemoryHierarchy::take_partitions`], in partition order.
    pub(crate) fn restore_partitions(&mut self, parts: Vec<MemPartition>) {
        self.parts = parts;
    }

    /// Probes SM `sm`'s L1 for `line` without firing hooks (the
    /// timing-sharded engine defers hook delivery to its reorder buffer).
    pub(crate) fn l1_probe(&mut self, sm: usize, line: u64, now: u64) -> Probe {
        self.l1[sm].probe(line, now)
    }

    /// Fills SM `sm`'s L1 with `line` arriving at `valid_from` (which may
    /// be a slot-tagged placeholder under the timing-sharded engine).
    pub(crate) fn l1_fill(&mut self, sm: usize, line: u64, valid_from: u64) {
        self.l1[sm].fill(line, valid_from);
    }

    /// Rewrites every L1 entry's `valid_from` through `f` (see
    /// [`Cache::remap_valid`]).
    pub(crate) fn remap_l1_valid(&mut self, f: impl Fn(u64) -> u64 + Copy) {
        for l1 in &mut self.l1 {
            l1.remap_valid(f);
        }
    }

    /// Accounts one completed read of latency `latency` (the serial path
    /// does this inside [`MemoryHierarchy::read_with`]; the timing-sharded
    /// engine at reorder-buffer replay).
    pub(crate) fn note_read(&mut self, latency: u64) {
        self.read_latency_sum += latency;
        self.reads += 1;
    }

    /// Issues a read of cache line `line` from SM `sm` at cycle `now`;
    /// returns the cycle the data is available in registers.
    ///
    /// # Panics
    ///
    /// Panics if `sm` is out of range.
    pub fn read(&mut self, sm: usize, line: u64, now: u64) -> u64 {
        self.read_with(sm, line, now, &mut NullHooks)
    }

    /// Like [`MemoryHierarchy::read`], reporting cache probes and DRAM
    /// transfers to `hooks`. Hooks observe only; the returned time is
    /// identical for every hook implementation.
    pub fn read_with<H: SimHooks>(&mut self, sm: usize, line: u64, now: u64, hooks: &mut H) -> u64 {
        let t = self.read_inner(sm, line, now, hooks);
        self.note_read(t - now);
        hooks.on_mem_read(sm, t - now);
        t
    }

    fn read_inner<H: SimHooks>(&mut self, sm: usize, line: u64, now: u64, hooks: &mut H) -> u64 {
        let l1_ready = now + self.l1_latency as u64;
        match self.l1[sm].probe(line, now) {
            Probe::Hit { valid_from } => {
                hooks.on_cache_access(CacheLevel::L1, true);
                return l1_ready.max(valid_from);
            }
            Probe::Miss => hooks.on_cache_access(CacheLevel::L1, false),
        }

        // Miss: request crosses the interconnect to the owning partition.
        let part = self.partition_of(line);
        let outcome = self.parts[part].read(line, now);
        hooks.on_cache_access(CacheLevel::L2, outcome.l2_hit);
        if !outcome.l2_hit {
            hooks.on_dram_transfer(part, self.line_bytes, outcome.dram_done);
        }
        self.l1[sm].fill(line, outcome.data_ready);
        outcome.data_ready
    }

    /// Issues a write of cache line `line` (write-through, no-allocate,
    /// fire-and-forget). Consumes L2/DRAM bandwidth but the warp does not
    /// wait; returns the cycle the store has left the SM.
    pub fn write(&mut self, sm: usize, line: u64, now: u64) -> u64 {
        self.write_with(sm, line, now, &mut NullHooks)
    }

    /// Like [`MemoryHierarchy::write`], reporting the DRAM transfer to
    /// `hooks`.
    pub fn write_with<H: SimHooks>(
        &mut self,
        sm: usize,
        line: u64,
        now: u64,
        hooks: &mut H,
    ) -> u64 {
        let _ = sm;
        let part = self.partition_of(line);
        let done = self.parts[part].write(line, now);
        hooks.on_dram_transfer(part, self.line_bytes, done);
        now + 1
    }

    /// Accumulates cache and DRAM counters into `stats`.
    pub fn export_stats(&self, stats: &mut SimStats) {
        stats.l1_accesses = self.l1.iter().map(Cache::accesses).sum();
        stats.l1_misses = self.l1.iter().map(Cache::misses).sum();
        stats.l2_accesses = self.parts.iter().map(|p| p.l2().accesses()).sum();
        stats.l2_misses = self.parts.iter().map(|p| p.l2().misses()).sum();
        stats.dram_busy_cycles = self.parts.iter().map(|p| p.dram().busy_cycles()).sum();
        stats.dram_active_cycles = self.parts.iter().map(|p| p.dram().active_cycles()).sum();
        stats.dram_transactions = self.parts.iter().map(|p| p.dram().transactions()).sum();
        stats.dram_row_hits = self.parts.iter().map(|p| p.dram().row_hits()).sum();
        stats.icnt_transfers = self.parts.iter().map(MemPartition::icnt_transfers).sum();
        stats.icnt_busy_cycles = self.parts.iter().map(MemPartition::icnt_busy_cycles).sum();
        stats.dram_channels = self.parts.len() as u32;
        stats.read_latency_sum = self.read_latency_sum;
        stats.reads = self.reads;
    }

    /// The cycle at which all DRAM channels finish their scheduled
    /// transfers (write-back drain).
    pub fn drain_time(&self) -> u64 {
        self.parts
            .iter()
            .map(|p| p.dram().drain_time())
            .max()
            .unwrap_or(0)
    }

    /// Average read latency in cycles observed so far.
    pub fn avg_read_latency(&self) -> f64 {
        if self.reads == 0 {
            0.0
        } else {
            self.read_latency_sum as f64 / self.reads as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(&GpuConfig::mobile_soc())
    }

    #[test]
    fn l1_hit_is_fast() {
        let mut h = hierarchy();
        let cold = h.read(0, 100, 0);
        assert!(cold > 100, "cold miss goes to DRAM");
        let warm = h.read(0, 100, cold);
        assert_eq!(warm, cold + 20, "L1 hit costs exactly the L1 latency");
    }

    #[test]
    fn l2_hit_is_medium() {
        let mut h = hierarchy();
        let cold = h.read(0, 100, 0);
        // Another SM misses L1 but hits L2 (after the first fill completed).
        let l2_hit = h.read(1, 100, cold);
        assert!(l2_hit >= cold + 160);
        assert!(l2_hit < cold + 300, "L2 hit must not pay DRAM again");
    }

    #[test]
    fn partitions_interleave_by_line() {
        let h = hierarchy();
        let parts: Vec<usize> = (0..8).map(|l| h.partition_of(l)).collect();
        assert_eq!(parts, vec![0, 1, 2, 3, 0, 1, 2, 3]);
    }

    #[test]
    fn stats_reflect_traffic() {
        let mut h = hierarchy();
        h.read(0, 1, 0);
        h.read(0, 1, 1000);
        h.read(2, 1, 2000);
        let mut s = SimStats::default();
        h.export_stats(&mut s);
        assert_eq!(s.l1_accesses, 3);
        assert_eq!(s.l1_misses, 2, "two SMs each cold-miss once");
        assert_eq!(s.l2_accesses, 2);
        assert_eq!(s.l2_misses, 1, "second SM hits in L2");
        assert_eq!(s.dram_transactions, 1);
        assert_eq!(s.dram_channels, 4);
    }

    #[test]
    fn writes_consume_bandwidth_without_stalling() {
        let mut h = hierarchy();
        let t = h.write(0, 5, 10);
        assert_eq!(t, 11, "stores retire immediately");
        let mut s = SimStats::default();
        h.export_stats(&mut s);
        assert!(s.dram_busy_cycles > 0);
    }

    #[test]
    fn contention_on_one_partition_queues() {
        let mut h = hierarchy();
        // Many distinct lines, all mapping to partition 0 (line % 4 == 0),
        // issued simultaneously: completion times must spread out.
        let mut times: Vec<u64> = (0..16).map(|i| h.read(0, i * 4, 0)).collect();
        times.sort_unstable();
        // 16 lines x 8 bus cycles each serialize on the channel; the first
        // transaction's row activate (latency-only) narrows the observable
        // spread by up to the miss penalty.
        assert!(
            times.last().unwrap() - times.first().unwrap() >= 8 * 15 - 20,
            "DRAM bandwidth must serialize concurrent misses"
        );
    }

    #[test]
    fn detached_partitions_round_trip() {
        let mut h = hierarchy();
        h.read(0, 3, 0);
        let mut before = SimStats::default();
        h.export_stats(&mut before);
        let parts = h.take_partitions();
        assert_eq!(parts.len(), 4);
        h.restore_partitions(parts);
        let mut after = SimStats::default();
        h.export_stats(&mut after);
        assert_eq!(before, after, "detach/re-attach must preserve counters");
    }
}
