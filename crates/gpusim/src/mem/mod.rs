//! Memory system: caches, DRAM channels and their composition.

mod cache;
mod dram;
mod hierarchy;
mod interconnect;

pub use cache::{Cache, Probe};
pub use dram::{DramChannel, RowBufferConfig};
pub use hierarchy::MemoryHierarchy;
pub use interconnect::Interconnect;
