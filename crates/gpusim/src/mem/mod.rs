//! Memory system: caches, DRAM channels and their composition.

mod cache;
mod dram;
mod hierarchy;
mod interconnect;
mod partition;

pub use cache::{Cache, Probe};
pub use dram::{DramChannel, RowBufferConfig};
pub use hierarchy::MemoryHierarchy;
pub use interconnect::Interconnect;
pub use partition::MemPartition;
