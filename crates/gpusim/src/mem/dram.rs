//! DRAM channel model: bandwidth-limited FIFO service with efficiency
//! accounting.

/// Geometry and timing of a channel's row buffer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RowBufferConfig {
    /// Bytes covered by one open row (page) per channel.
    pub row_bytes: u32,
    /// Extra cycles to precharge + activate on a row-buffer miss.
    pub miss_penalty: u32,
}

impl Default for RowBufferConfig {
    fn default() -> Self {
        RowBufferConfig {
            row_bytes: 2048,
            miss_penalty: 20,
        }
    }
}

/// One off-chip DRAM channel with an open-row scheduler.
///
/// Transactions are serviced in arrival order at a fixed peak bandwidth;
/// accesses that miss the currently open row pay an extra
/// precharge/activate penalty (the "DRAM scheduler" of the paper's Fig. 2,
/// simplified to open-page FCFS). Two utilization statistics are kept,
/// matching Table I:
///
/// * **busy cycles** — cycles the data bus transfers data or the bank
///   switches rows on behalf of a request;
/// * **active cycles** — cycles with at least one request pending
///   (arrived but not yet completed).
///
/// `busy / active` is the paper's *DRAM efficiency*; `busy / total` is its
/// *bandwidth utilization*.
#[derive(Debug, Clone)]
pub struct DramChannel {
    bytes_per_cycle: f32,
    fixed_latency: u32,
    row: RowBufferConfig,
    open_row: Option<u64>,
    next_free: u64,
    busy_cycles: u64,
    active_cycles: u64,
    active_until: u64,
    transactions: u64,
    row_hits: u64,
}

impl DramChannel {
    /// Creates an idle channel with the default row-buffer geometry.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive.
    pub fn new(bytes_per_cycle: f32, fixed_latency: u32) -> Self {
        Self::with_row_buffer(bytes_per_cycle, fixed_latency, RowBufferConfig::default())
    }

    /// Creates an idle channel with an explicit row-buffer configuration.
    ///
    /// # Panics
    ///
    /// Panics if `bytes_per_cycle` is not positive or `row_bytes` is zero.
    pub fn with_row_buffer(bytes_per_cycle: f32, fixed_latency: u32, row: RowBufferConfig) -> Self {
        assert!(bytes_per_cycle > 0.0, "bandwidth must be positive");
        assert!(row.row_bytes > 0, "row size must be positive");
        DramChannel {
            bytes_per_cycle,
            fixed_latency,
            row,
            open_row: None,
            next_free: 0,
            busy_cycles: 0,
            active_cycles: 0,
            active_until: 0,
            transactions: 0,
            row_hits: 0,
        }
    }

    /// Services a `bytes`-sized transaction of byte address `addr` arriving
    /// at cycle `arrival`; returns the cycle its data is available.
    ///
    /// Row-buffer misses add the activate penalty to the transaction's
    /// *latency* but not to bus occupancy: with many banks per channel,
    /// activates overlap other banks' transfers, so the data bus stays the
    /// throughput limit.
    pub fn service_at(&mut self, arrival: u64, addr: u64, bytes: u32) -> u64 {
        let row = addr / self.row.row_bytes as u64;
        let switch = match self.open_row {
            Some(open) if open == row => {
                self.row_hits += 1;
                0
            }
            _ => {
                self.open_row = Some(row);
                self.row.miss_penalty as u64
            }
        };
        let transfer = (bytes as f32 / self.bytes_per_cycle).ceil().max(1.0) as u64;
        let start = arrival.max(self.next_free);
        let done = start + transfer;
        self.next_free = done;
        self.busy_cycles += transfer;
        self.transactions += 1;
        // Active interval bookkeeping: the channel is "active" from the
        // request's arrival until its completion; overlapping intervals are
        // merged so concurrent requests are not double counted.
        let completion = done + switch + self.fixed_latency as u64;
        let active_start = arrival.max(self.active_until);
        if completion > active_start {
            self.active_cycles += completion - active_start;
            self.active_until = completion;
        }
        completion
    }

    /// Services a transaction without row information: all such traffic is
    /// treated as belonging to row 0, so only the first access pays the
    /// activate penalty. Kept for callers that do not model addresses.
    pub fn service(&mut self, arrival: u64, bytes: u32) -> u64 {
        self.service_at(arrival, 0, bytes)
    }

    /// Lower bound on `service_at(arrival, ..) - arrival` for a `bytes`
    /// transaction: the transfer time plus the fixed latency. Queueing and
    /// row switches only push completion later.
    pub(crate) fn min_service_delta(&self, bytes: u32) -> u64 {
        let transfer = (bytes as f32 / self.bytes_per_cycle).ceil().max(1.0) as u64;
        transfer + self.fixed_latency as u64
    }

    /// Row-buffer hits so far.
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Row-buffer hit rate over all transactions.
    pub fn row_hit_rate(&self) -> f64 {
        if self.transactions == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.transactions as f64
        }
    }

    /// The cycle at which the data bus becomes free (all scheduled
    /// transfers done); the GPU is not finished until every channel drains.
    pub fn drain_time(&self) -> u64 {
        self.next_free
    }

    /// Cycles spent transferring data.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Cycles with pending requests.
    pub fn active_cycles(&self) -> u64 {
        self.active_cycles
    }

    /// Transactions serviced.
    pub fn transactions(&self) -> u64 {
        self.transactions
    }

    /// Busy / active ratio (the Table I "DRAM efficiency").
    pub fn efficiency(&self) -> f64 {
        if self.active_cycles == 0 {
            0.0
        } else {
            self.busy_cycles as f64 / self.active_cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat(bytes_per_cycle: f32, latency: u32) -> DramChannel {
        DramChannel::with_row_buffer(
            bytes_per_cycle,
            latency,
            RowBufferConfig {
                row_bytes: 2048,
                miss_penalty: 0,
            },
        )
    }

    #[test]
    fn single_transaction_timing() {
        let mut ch = flat(16.0, 100);
        let done = ch.service(10, 128);
        assert_eq!(done, 10 + 8 + 100);
        assert_eq!(ch.busy_cycles(), 8);
        assert_eq!(ch.active_cycles(), 108);
        assert_eq!(ch.transactions(), 1);
    }

    #[test]
    fn row_misses_pay_activation() {
        let mut ch = DramChannel::with_row_buffer(
            16.0,
            0,
            RowBufferConfig {
                row_bytes: 2048,
                miss_penalty: 20,
            },
        );
        // Same row: first access pays the activate, second does not.
        let d1 = ch.service_at(0, 0, 128);
        assert_eq!(d1, 8 + 20);
        let d2 = ch.service_at(d1, 128, 128);
        assert_eq!(d2, d1 + 8, "row hit skips activation");
        // Different row: pays again (as latency, not bus occupancy).
        let d3 = ch.service_at(d2, 4096, 128);
        assert_eq!(d3, d2 + 8 + 20);
        assert_eq!(ch.busy_cycles(), 24, "activates do not occupy the bus");
        assert_eq!(ch.row_hits(), 1);
        assert!((ch.row_hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn streaming_same_row_is_mostly_hits() {
        let mut ch = DramChannel::new(16.0, 0);
        for i in 0..16u64 {
            ch.service_at(i * 100, i * 128, 128);
        }
        assert_eq!(ch.row_hits(), 15, "2KB row holds 16 consecutive lines");
    }

    #[test]
    fn back_to_back_transactions_queue() {
        let mut ch = flat(16.0, 0);
        let d1 = ch.service(0, 128);
        let d2 = ch.service(0, 128);
        assert_eq!(d1, 8);
        assert_eq!(d2, 16, "second must wait for the bus");
        assert_eq!(ch.busy_cycles(), 16);
        // Fully back-to-back: active == busy → efficiency 1.0.
        assert_eq!(ch.efficiency(), 1.0);
    }

    #[test]
    fn sparse_requests_have_unit_efficiency_but_low_busy() {
        let mut ch = flat(16.0, 0);
        ch.service(0, 128);
        ch.service(1000, 128);
        assert_eq!(ch.busy_cycles(), 16);
        assert_eq!(ch.active_cycles(), 16, "idle gaps are not active");
        assert_eq!(ch.efficiency(), 1.0);
    }

    #[test]
    fn queueing_with_latency_lowers_efficiency() {
        let mut ch = flat(16.0, 50);
        // Two overlapping requests: total active window exceeds busy time
        // because of the fixed latency tail.
        ch.service(0, 128);
        ch.service(0, 128);
        assert!(ch.efficiency() < 1.0);
        assert!(ch.efficiency() > 0.1);
    }

    #[test]
    fn tiny_transfer_takes_at_least_one_cycle() {
        let mut ch = flat(64.0, 0);
        let done = ch.service(0, 4);
        assert_eq!(done, 1);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        DramChannel::new(0.0, 0);
    }
}
