//! Interconnection network between SMs and memory partitions.
//!
//! Modeled as a crossbar with a fixed traversal latency and per-partition
//! port bandwidth in each direction (request and response), matching the
//! "interconnection network" box of the paper's Fig. 2. The paper notes
//! that the network's shape follows the SM/partition counts automatically
//! under downscaling — which holds here: ports are per partition.

/// Crossbar interconnect model.
#[derive(Debug, Clone)]
pub struct Interconnect {
    latency: u32,
    bytes_per_cycle: f32,
    /// Next-free time of each partition's request (towards-memory) port.
    request_ports: Vec<u64>,
    /// Next-free time of each partition's response (from-memory) port.
    response_ports: Vec<u64>,
    transfers: u64,
    busy_cycles: u64,
}

impl Interconnect {
    /// Creates an idle crossbar with `partitions` memory-side ports.
    ///
    /// # Panics
    ///
    /// Panics if `partitions` is zero or `bytes_per_cycle` is not positive.
    pub fn new(partitions: u32, latency: u32, bytes_per_cycle: f32) -> Self {
        assert!(partitions > 0, "need at least one port");
        assert!(
            bytes_per_cycle > 0.0,
            "interconnect bandwidth must be positive"
        );
        Interconnect {
            latency,
            bytes_per_cycle,
            request_ports: vec![0; partitions as usize],
            response_ports: vec![0; partitions as usize],
            transfers: 0,
            busy_cycles: 0,
        }
    }

    /// Sends a `bytes`-sized request from an SM towards `partition` at
    /// cycle `now`; returns its arrival time at the partition.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn to_memory(&mut self, partition: usize, now: u64, bytes: u32) -> u64 {
        let occupancy = ((bytes as f32 / self.bytes_per_cycle).ceil() as u64).max(1);
        let start = now.max(self.request_ports[partition]);
        self.request_ports[partition] = start + occupancy;
        self.transfers += 1;
        self.busy_cycles += occupancy;
        start + occupancy + self.latency as u64
    }

    /// Sends a `bytes`-sized response from `partition` back towards an SM
    /// at cycle `now`; returns its arrival time at the SM.
    ///
    /// # Panics
    ///
    /// Panics if `partition` is out of range.
    pub fn from_memory(&mut self, partition: usize, now: u64, bytes: u32) -> u64 {
        let occupancy = ((bytes as f32 / self.bytes_per_cycle).ceil() as u64).max(1);
        let start = now.max(self.response_ports[partition]);
        self.response_ports[partition] = start + occupancy;
        self.transfers += 1;
        self.busy_cycles += occupancy;
        start + occupancy + self.latency as u64
    }

    /// One-way traversal latency in cycles.
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// Total packets crossed.
    pub fn transfers(&self) -> u64 {
        self.transfers
    }

    /// Total port-occupancy cycles.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_transfer_takes_latency_plus_serialization() {
        let mut icnt = Interconnect::new(4, 8, 32.0);
        // 128B at 32B/cycle = 4 cycles + 8 latency.
        assert_eq!(icnt.to_memory(0, 100, 128), 100 + 4 + 8);
        assert_eq!(icnt.transfers(), 1);
        assert_eq!(icnt.busy_cycles(), 4);
    }

    #[test]
    fn same_port_serializes() {
        let mut icnt = Interconnect::new(2, 0, 128.0);
        let a = icnt.to_memory(1, 0, 128);
        let b = icnt.to_memory(1, 0, 128);
        assert_eq!(a, 1);
        assert_eq!(b, 2, "second packet waits for the port");
    }

    #[test]
    fn different_ports_do_not_contend() {
        let mut icnt = Interconnect::new(2, 0, 128.0);
        let a = icnt.to_memory(0, 0, 128);
        let b = icnt.to_memory(1, 0, 128);
        assert_eq!(a, 1);
        assert_eq!(b, 1, "distinct ports run in parallel");
    }

    #[test]
    fn request_and_response_ports_are_independent() {
        let mut icnt = Interconnect::new(1, 0, 128.0);
        let a = icnt.to_memory(0, 0, 128);
        let b = icnt.from_memory(0, 0, 128);
        assert_eq!(a, 1);
        assert_eq!(b, 1, "directions have separate ports");
    }

    #[test]
    fn small_packets_take_one_cycle() {
        let mut icnt = Interconnect::new(1, 2, 64.0);
        assert_eq!(icnt.to_memory(0, 0, 8), 1 + 2);
    }

    #[test]
    #[should_panic(expected = "at least one port")]
    fn zero_ports_panics() {
        Interconnect::new(0, 1, 32.0);
    }
}
