//! Set-associative LRU cache tag array with fill-time tracking.

use crate::config::CacheConfig;

/// Outcome of a cache probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Probe {
    /// Line present; data available at `valid_from` (may be in the future if
    /// the fill is still in flight — an MSHR merge).
    Hit {
        /// Earliest cycle the data can be consumed.
        valid_from: u64,
    },
    /// Line absent; the caller must fetch from the next level and call
    /// [`Cache::fill`].
    Miss,
}

#[derive(Debug, Clone, Copy)]
struct TagEntry {
    tag: u64,
    valid_from: u64,
    last_used: u64,
}

/// A timing-aware cache tag array.
///
/// Data is never stored — only tags and fill times — because the simulator
/// works with real scene data held elsewhere. Misses with in-flight fills
/// are merged (hit on the pending line), modeling MSHR behaviour.
///
/// # Examples
///
/// ```
/// use gpusim::config::CacheConfig;
/// use gpusim::mem::{Cache, Probe};
///
/// let cfg = CacheConfig { bytes: 1024, ways: 2, line_bytes: 128, latency: 20 };
/// let mut c = Cache::new("L1", cfg);
/// assert_eq!(c.probe(0, 0), Probe::Miss);
/// c.fill(0, 100);
/// assert!(matches!(c.probe(0, 150), Probe::Hit { valid_from: 100 }));
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    name: &'static str,
    sets: Vec<Vec<TagEntry>>,
    ways: usize,
    set_count: u64,
    accesses: u64,
    misses: u64,
    use_counter: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    ///
    /// # Panics
    ///
    /// Panics if the configuration yields zero lines.
    pub fn new(name: &'static str, config: CacheConfig) -> Self {
        let set_count = config.sets();
        let ways = config.effective_ways() as usize;
        assert!(set_count > 0 && ways > 0, "cache must have lines");
        Cache {
            name,
            sets: vec![Vec::with_capacity(ways.min(64)); set_count as usize],
            ways,
            set_count,
            accesses: 0,
            misses: 0,
            use_counter: 0,
        }
    }

    fn set_of(&self, line: u64) -> usize {
        (line % self.set_count) as usize
    }

    fn tag_of(&self, line: u64) -> u64 {
        line / self.set_count
    }

    /// Probes for `line` (a line-granular address) at time `now`, updating
    /// LRU order and hit/miss statistics.
    pub fn probe(&mut self, line: u64, now: u64) -> Probe {
        let _ = now;
        self.accesses += 1;
        self.use_counter += 1;
        let tag = self.tag_of(line);
        let set_index = self.set_of(line);
        let set = &mut self.sets[set_index];
        if let Some(e) = set.iter_mut().find(|e| e.tag == tag) {
            e.last_used = self.use_counter;
            return Probe::Hit {
                valid_from: e.valid_from,
            };
        }
        self.misses += 1;
        Probe::Miss
    }

    /// Installs `line` with its data arriving at `valid_from`, evicting the
    /// LRU entry if the set is full.
    pub fn fill(&mut self, line: u64, valid_from: u64) {
        self.use_counter += 1;
        let tag = self.tag_of(line);
        let set_index = self.set_of(line);
        let use_counter = self.use_counter;
        let ways = self.ways;
        let set = &mut self.sets[set_index];
        if let Some(e) = set.iter_mut().find(|e| e.tag == tag) {
            e.valid_from = e.valid_from.min(valid_from);
            e.last_used = use_counter;
            return;
        }
        if set.len() < ways {
            set.push(TagEntry {
                tag,
                valid_from,
                last_used: use_counter,
            });
            return;
        }
        let victim = set
            .iter_mut()
            .min_by_key(|e| e.last_used)
            // zatel-lint: allow(panic-hygiene, reason = "the early return above handles the not-full case, so the set has entries")
            .expect("set is full, so non-empty");
        *victim = TagEntry {
            tag,
            valid_from,
            last_used: use_counter,
        };
    }

    /// Rewrites every entry's `valid_from` through `f`, preserving tags,
    /// LRU order and statistics. Used by the timing-sharded engine at an
    /// epoch seam to replace slot-tagged placeholder fill times with their
    /// resolved cycles; residency never depends on `valid_from`, so the
    /// rewrite cannot change which lines are cached.
    pub(crate) fn remap_valid(&mut self, f: impl Fn(u64) -> u64) {
        for set in &mut self.sets {
            for entry in set.iter_mut() {
                entry.valid_from = f(entry.valid_from);
            }
        }
    }

    /// Cache display name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Total probes so far.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate; `0.0` before any access.
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(ways: u32, lines: u64) -> Cache {
        Cache::new(
            "t",
            CacheConfig {
                bytes: lines * 128,
                ways,
                line_bytes: 128,
                latency: 1,
            },
        )
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = small(2, 8);
        assert_eq!(c.probe(5, 0), Probe::Miss);
        c.fill(5, 40);
        assert_eq!(c.probe(5, 50), Probe::Hit { valid_from: 40 });
        assert_eq!(c.accesses(), 2);
        assert_eq!(c.misses(), 1);
        assert_eq!(c.miss_rate(), 0.5);
    }

    #[test]
    fn lru_evicts_oldest() {
        // 1 set × 2 ways: lines 0, 4, 8 map to the same set (4 sets? no).
        // Use fully-assoc with 2 lines for clarity.
        let mut c = small(0, 2);
        c.fill(1, 0);
        c.fill(2, 0);
        assert!(matches!(c.probe(1, 1), Probe::Hit { .. })); // touch 1 → 2 is LRU
        c.fill(3, 0); // evicts 2
        assert!(matches!(c.probe(1, 2), Probe::Hit { .. }));
        assert_eq!(c.probe(2, 3), Probe::Miss);
        assert!(matches!(c.probe(3, 4), Probe::Hit { .. }));
    }

    #[test]
    fn pending_fill_merges_as_hit() {
        let mut c = small(2, 8);
        assert_eq!(c.probe(7, 0), Probe::Miss);
        c.fill(7, 500);
        // A second access before the fill completes sees the pending line.
        match c.probe(7, 10) {
            Probe::Hit { valid_from } => assert_eq!(valid_from, 500),
            Probe::Miss => panic!("should merge with in-flight fill"),
        }
    }

    #[test]
    fn refill_keeps_earliest_valid_time() {
        let mut c = small(2, 8);
        c.fill(3, 100);
        c.fill(3, 300);
        assert_eq!(c.probe(3, 0), Probe::Hit { valid_from: 100 });
    }

    #[test]
    fn set_mapping_separates_lines() {
        // 4 sets × 2 ways = 8 lines. Lines 0 and 4 share set 0; 1 goes to set 1.
        let mut c = small(2, 8);
        c.fill(0, 0);
        c.fill(4, 0);
        c.fill(8, 0); // set 0 again: evicts LRU (line 0)
        assert_eq!(c.probe(0, 1), Probe::Miss);
        assert!(matches!(c.probe(4, 2), Probe::Hit { .. }));
        assert!(matches!(c.probe(8, 3), Probe::Hit { .. }));
    }

    #[test]
    fn full_assoc_uses_whole_capacity() {
        let mut c = small(0, 4);
        for l in 0..4 {
            c.fill(l, 0);
        }
        for l in 0..4 {
            assert!(matches!(c.probe(l, 1), Probe::Hit { .. }), "line {l}");
        }
    }
}
