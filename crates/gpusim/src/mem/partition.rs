//! One memory partition: an L2 slice, its DRAM channel and the partition's
//! pair of interconnect ports, bundled into a single movable unit.
//!
//! The partition is the natural sharding grain of the memory system —
//! line-granular addresses interleave across partitions, and nothing a
//! partition computes depends on another partition's state. The serial
//! [`MemoryHierarchy`](super::MemoryHierarchy) owns a `Vec<MemPartition>`
//! and calls into it inline; the timing-sharded engine
//! (`timing_threads > 1`) detaches the partitions, hands each worker
//! thread an interleaved subset, and re-attaches them at the end of the
//! run. Both paths execute the exact same arithmetic in the exact same
//! per-partition order, which is what keeps results bit-identical.

use crate::config::GpuConfig;

use super::cache::{Cache, Probe};
use super::dram::DramChannel;

/// Cycles an L2 slice's tag pipeline is occupied per access (throughput
/// limit creating backpressure under load).
pub(crate) const L2_SERVICE_CYCLES: u64 = 2;

/// Bytes of a read-request packet (address + metadata).
pub(crate) const REQUEST_BYTES: u32 = 8;

/// Timing outcome of one partition-side read.
#[derive(Debug, Clone, Copy)]
pub(crate) struct PartitionRead {
    /// Whether the L2 slice hit.
    pub l2_hit: bool,
    /// Cycle the line is back at the requesting SM (after the response
    /// crossing).
    pub data_ready: u64,
    /// DRAM completion cycle; meaningful only when `l2_hit` is false.
    pub dram_done: u64,
}

/// The timing state of one memory partition.
#[derive(Debug, Clone)]
pub struct MemPartition {
    l2: Cache,
    l2_next_free: u64,
    dram: DramChannel,
    /// Next-free time of the partition's request (towards-memory) port.
    request_port: u64,
    /// Next-free time of the partition's response (from-memory) port.
    response_port: u64,
    icnt_transfers: u64,
    icnt_busy_cycles: u64,
    icnt_latency: u32,
    icnt_bytes_per_cycle: f32,
    l1_latency: u32,
    l2_latency: u32,
    line_bytes: u32,
}

impl MemPartition {
    /// Builds one partition of `config`'s memory system.
    pub(crate) fn new(config: &GpuConfig) -> Self {
        MemPartition {
            l2: Cache::new("L2", config.l2_slice()),
            l2_next_free: 0,
            dram: DramChannel::new(config.dram_bytes_per_cycle, config.dram_latency),
            request_port: 0,
            response_port: 0,
            icnt_transfers: 0,
            icnt_busy_cycles: 0,
            icnt_latency: config.interconnect_latency,
            icnt_bytes_per_cycle: config.interconnect_bytes_per_cycle,
            l1_latency: config.l1d.latency,
            l2_latency: config.l2.latency,
            line_bytes: config.l1d.line_bytes,
        }
    }

    /// Crosses the interconnect through one of this partition's ports
    /// (same arithmetic as the crossbar model: per-direction port
    /// serialization plus a fixed traversal latency).
    fn cross(&mut self, response: bool, now: u64, bytes: u32) -> u64 {
        let occupancy = ((bytes as f32 / self.icnt_bytes_per_cycle).ceil() as u64).max(1);
        let port = if response {
            &mut self.response_port
        } else {
            &mut self.request_port
        };
        let start = now.max(*port);
        *port = start + occupancy;
        self.icnt_transfers += 1;
        self.icnt_busy_cycles += occupancy;
        start + occupancy + self.icnt_latency as u64
    }

    /// Services an L1-miss read of `line` issued by an SM at `now`: request
    /// crossing, L2 tag pipeline, L2 probe, DRAM on a miss, response
    /// crossing.
    pub(crate) fn read(&mut self, line: u64, now: u64) -> PartitionRead {
        let arrive_l2 = self.cross(false, now + self.l1_latency as u64, REQUEST_BYTES);
        let slot = arrive_l2.max(self.l2_next_free);
        self.l2_next_free = slot + L2_SERVICE_CYCLES;
        let queue_delay = slot - arrive_l2;
        match self.l2.probe(line, arrive_l2) {
            Probe::Hit { valid_from } => {
                // The configured L2 latency is end-to-end from the SM, so
                // the response departs such that an uncontended crossing
                // arrives at exactly `now + l2_latency (+ queueing)`;
                // response-port contention adds on top.
                let depart = (now + self.l2_latency as u64 + queue_delay)
                    .saturating_sub(self.icnt_latency as u64)
                    .max(valid_from);
                PartitionRead {
                    l2_hit: true,
                    data_ready: self.cross(true, depart, self.line_bytes),
                    dram_done: 0,
                }
            }
            Probe::Miss => {
                // Request continues to DRAM after the L2 pipeline.
                let arrive_dram = slot + L2_SERVICE_CYCLES;
                let done = self.dram.service_at(
                    arrive_dram,
                    line * self.line_bytes as u64,
                    self.line_bytes,
                );
                self.l2.fill(line, done);
                PartitionRead {
                    l2_hit: false,
                    data_ready: self.cross(true, done, self.line_bytes),
                    dram_done: done,
                }
            }
        }
    }

    /// Services a write-through store of `line` issued at `now`; returns
    /// the DRAM completion cycle (the warp itself never waits on it).
    pub(crate) fn write(&mut self, line: u64, now: u64) -> u64 {
        let arrive_l2 = self.cross(false, now + self.l1_latency as u64, self.line_bytes);
        let slot = arrive_l2.max(self.l2_next_free);
        self.l2_next_free = slot + L2_SERVICE_CYCLES;
        // Writes drain through the L2 to DRAM; they occupy bus bandwidth.
        self.dram.service_at(
            slot + L2_SERVICE_CYCLES,
            line * self.line_bytes as u64,
            self.line_bytes,
        )
    }

    /// Lower bound on `read(line, now).data_ready - now` for any read this
    /// partition can service. Contention, queueing and in-flight fills only
    /// push completion later, so the timing-sharded engine may keep
    /// committing events earlier than `now + min_read_delta()` while the
    /// read is still in flight without risking a reordering.
    pub(crate) fn min_read_delta(&self) -> u64 {
        let icnt = self.icnt_latency as u64;
        let l2 = self.l2_latency as u64;
        // L2 hit: depart >= (now + l2_latency) - icnt, response adds at
        // least one occupancy cycle plus the crossing back. When the
        // configured L2 latency is below the crossing latency the
        // saturating subtraction voids the bound; fall back to "no bound".
        let hit = if l2 >= icnt { l2 + 1 } else { 0 };
        // L2 miss: request crossing, L2 pipeline, DRAM transfer + fixed
        // latency, response crossing.
        let req_occ = ((REQUEST_BYTES as f32 / self.icnt_bytes_per_cycle).ceil() as u64).max(1);
        let resp_occ = ((self.line_bytes as f32 / self.icnt_bytes_per_cycle).ceil() as u64).max(1);
        let miss = self.l1_latency as u64
            + req_occ
            + icnt
            + L2_SERVICE_CYCLES
            + self.dram.min_service_delta(self.line_bytes)
            + resp_occ
            + icnt;
        hit.min(miss)
    }

    /// The partition's L2 slice (for statistics export).
    pub(crate) fn l2(&self) -> &Cache {
        &self.l2
    }

    /// The partition's DRAM channel (for statistics export).
    pub(crate) fn dram(&self) -> &DramChannel {
        &self.dram
    }

    /// Packets that crossed this partition's interconnect ports.
    pub(crate) fn icnt_transfers(&self) -> u64 {
        self.icnt_transfers
    }

    /// Port-occupancy cycles on this partition's interconnect ports.
    pub(crate) fn icnt_busy_cycles(&self) -> u64 {
        self.icnt_busy_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;

    fn part() -> MemPartition {
        MemPartition::new(&GpuConfig::mobile_soc())
    }

    #[test]
    fn cold_read_misses_l2_and_pays_dram() {
        let mut p = part();
        let r = p.read(0, 0);
        assert!(!r.l2_hit);
        assert!(r.dram_done > 0);
        assert!(r.data_ready > r.dram_done, "response crossing adds time");
    }

    #[test]
    fn warm_read_hits_l2() {
        let mut p = part();
        let cold = p.read(0, 0);
        let warm = p.read(0, cold.data_ready);
        assert!(warm.l2_hit);
        assert!(warm.data_ready < cold.data_ready * 2 + 400);
    }

    #[test]
    fn min_read_delta_bounds_observed_reads() {
        let mut p = part();
        let floor = p.min_read_delta();
        assert!(floor > 0);
        for (i, now) in [(0u64, 0u64), (4, 100), (8, 100), (0, 5000)] {
            let r = p.read(i, now);
            assert!(
                r.data_ready >= now + floor,
                "read at {now} completed at {} < floor {floor}",
                r.data_ready
            );
        }
    }

    #[test]
    fn writes_consume_bandwidth() {
        let mut p = part();
        let done = p.write(5, 10);
        assert!(done > 10);
        assert!(p.dram().busy_cycles() > 0);
        assert_eq!(p.icnt_transfers(), 1, "one request crossing, no response");
    }
}
