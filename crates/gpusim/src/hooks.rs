//! Observability seam for the simulation engine.
//!
//! The engine is generic over a [`SimHooks`] implementation and invokes it
//! at the architecturally interesting moments of a run: warp launch and
//! retirement, phase issue, cache probes, DRAM transfers and RT-unit
//! occupancy. Dispatch is static — the engine is monomorphized per hook
//! type — so with the default [`NullHooks`] every callback inlines to
//! nothing and the cycle path stays exactly as fast as before the seam
//! existed.
//!
//! Hooks observe; they must not steer. Nothing a hook does can change the
//! timing of the run, which is what makes the "hooks are free" contract
//! testable: a run with [`TraceHooks`] must produce bit-identical
//! [`SimStats`](crate::stats::SimStats) to a run with [`NullHooks`].
//!
//! Hooks are also single-threaded by contract, even under the sharded
//! engine (`sim_threads > 1`): every callback fires on the calling thread,
//! from the engine's commit loop, in the exact event order of a serial run.
//! Decode shards never invoke hooks — they hand decoded phases to the
//! commit loop, which replays them in its deterministic merge order — so
//! `&mut H` needs no `Send`/`Sync` bound and recorded traces are
//! byte-identical for every thread count.
//!
//! ```
//! use gpusim::{GpuConfig, Simulator, TraceHooks};
//! use gpusim::workload::{Op, ScriptedWorkload};
//! use minijson::ToJson;
//!
//! let w = ScriptedWorkload::uniform(64, vec![
//!     Op::Load { addr: 0, bytes: 4 },
//!     Op::Compute { cycles: 8, insts: 8 },
//! ]);
//! let sim = Simulator::new(GpuConfig::mobile_soc());
//! let mut trace = TraceHooks::new(1000);
//! let stats = sim.run_with_hooks(&w, &mut trace);
//! assert_eq!(stats, sim.run(&w), "tracing must not perturb timing");
//! assert_eq!(trace.counters().warps_launched, 2);
//! let json = trace.to_json(); // minijson Value, ready for --json output
//! assert!(json.get("counters").is_some());
//! ```

use minijson::{Map, ToJson, Value};

/// Which cache level a probe hit or missed in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheLevel {
    /// Per-SM L1 data cache.
    L1,
    /// Shared L2 slice (one per memory partition).
    L2,
}

/// The component that formed the critical path of an issued warp phase —
/// the same attribution the CPI stack uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhaseClass {
    /// ALU latency dominated the phase.
    Compute,
    /// Load/store memory latency dominated the phase.
    Memory,
    /// RT-unit occupancy or RT data fetches dominated the phase.
    Rt,
}

impl PhaseClass {
    /// Stable lowercase tag, matching the CPI-stack component names.
    pub fn tag(self) -> &'static str {
        match self {
            PhaseClass::Compute => "compute",
            PhaseClass::Memory => "memory",
            PhaseClass::Rt => "rt",
        }
    }
}

/// Observer interface threaded through the engine's cycle path.
///
/// Every method has an empty default body, so implementations override only
/// the events they care about. Implementations must be pure observers: the
/// engine's timing decisions never depend on hook state.
pub trait SimHooks {
    /// A warp became resident on `sm` and will first issue shortly after
    /// `time` (the launch latency is accounted by the engine).
    #[inline]
    fn on_warp_launch(&mut self, sm: usize, warp_id: u64, time: u64) {
        let _ = (sm, warp_id, time);
    }

    /// A warp ran out of work and released its slot at `time`.
    #[inline]
    fn on_warp_retire(&mut self, sm: usize, warp_id: u64, time: u64) {
        let _ = (sm, warp_id, time);
    }

    /// A warp phase was issued on `sm` at `start` and its results are ready
    /// at `ready`; `class` names the critical-path component.
    #[inline]
    fn on_phase_issue(
        &mut self,
        sm: usize,
        warp_id: u64,
        class: PhaseClass,
        start: u64,
        ready: u64,
    ) {
        let _ = (sm, warp_id, class, start, ready);
    }

    /// A cache probe at `level` resolved as a hit or a miss.
    #[inline]
    fn on_cache_access(&mut self, level: CacheLevel, hit: bool) {
        let _ = (level, hit);
    }

    /// `bytes` of data were scheduled on DRAM `channel` (reads and
    /// write-back drain both count); the transfer completes at `time`.
    #[inline]
    fn on_dram_transfer(&mut self, channel: usize, bytes: u32, time: u64) {
        let _ = (channel, bytes, time);
    }

    /// A read issued at some earlier cycle on `sm` completed with an
    /// end-to-end `latency` (issue to data-in-registers), whichever level
    /// of the hierarchy served it.
    #[inline]
    fn on_mem_read(&mut self, sm: usize, latency: u64) {
        let _ = (sm, latency);
    }

    /// An RT phase with `rays` active rays traversing `nodes` BVH lines
    /// occupied a tester slot on `sm` from `start` for `occupancy_cycles`.
    #[inline]
    fn on_rt_phase(&mut self, sm: usize, rays: u32, nodes: u32, start: u64, occupancy_cycles: u64) {
        let _ = (sm, rays, nodes, start, occupancy_cycles);
    }
}

/// Forwarding observer: `Some(hooks)` forwards every event, `None` behaves
/// as [`NullHooks`]. Lets callers decide at runtime whether to record
/// without paying for a second monomorphized engine.
impl<H: SimHooks> SimHooks for Option<H> {
    #[inline]
    fn on_warp_launch(&mut self, sm: usize, warp_id: u64, time: u64) {
        if let Some(h) = self {
            h.on_warp_launch(sm, warp_id, time);
        }
    }

    #[inline]
    fn on_warp_retire(&mut self, sm: usize, warp_id: u64, time: u64) {
        if let Some(h) = self {
            h.on_warp_retire(sm, warp_id, time);
        }
    }

    #[inline]
    fn on_phase_issue(
        &mut self,
        sm: usize,
        warp_id: u64,
        class: PhaseClass,
        start: u64,
        ready: u64,
    ) {
        if let Some(h) = self {
            h.on_phase_issue(sm, warp_id, class, start, ready);
        }
    }

    #[inline]
    fn on_cache_access(&mut self, level: CacheLevel, hit: bool) {
        if let Some(h) = self {
            h.on_cache_access(level, hit);
        }
    }

    #[inline]
    fn on_dram_transfer(&mut self, channel: usize, bytes: u32, time: u64) {
        if let Some(h) = self {
            h.on_dram_transfer(channel, bytes, time);
        }
    }

    #[inline]
    fn on_mem_read(&mut self, sm: usize, latency: u64) {
        if let Some(h) = self {
            h.on_mem_read(sm, latency);
        }
    }

    #[inline]
    fn on_rt_phase(&mut self, sm: usize, rays: u32, nodes: u32, start: u64, occupancy_cycles: u64) {
        if let Some(h) = self {
            h.on_rt_phase(sm, rays, nodes, start, occupancy_cycles);
        }
    }
}

/// Fan-out observer: every event goes to both members of the pair, in
/// order. Pairs nest, so any number of observers can share one run.
impl<A: SimHooks, B: SimHooks> SimHooks for (A, B) {
    #[inline]
    fn on_warp_launch(&mut self, sm: usize, warp_id: u64, time: u64) {
        self.0.on_warp_launch(sm, warp_id, time);
        self.1.on_warp_launch(sm, warp_id, time);
    }

    #[inline]
    fn on_warp_retire(&mut self, sm: usize, warp_id: u64, time: u64) {
        self.0.on_warp_retire(sm, warp_id, time);
        self.1.on_warp_retire(sm, warp_id, time);
    }

    #[inline]
    fn on_phase_issue(
        &mut self,
        sm: usize,
        warp_id: u64,
        class: PhaseClass,
        start: u64,
        ready: u64,
    ) {
        self.0.on_phase_issue(sm, warp_id, class, start, ready);
        self.1.on_phase_issue(sm, warp_id, class, start, ready);
    }

    #[inline]
    fn on_cache_access(&mut self, level: CacheLevel, hit: bool) {
        self.0.on_cache_access(level, hit);
        self.1.on_cache_access(level, hit);
    }

    #[inline]
    fn on_dram_transfer(&mut self, channel: usize, bytes: u32, time: u64) {
        self.0.on_dram_transfer(channel, bytes, time);
        self.1.on_dram_transfer(channel, bytes, time);
    }

    #[inline]
    fn on_mem_read(&mut self, sm: usize, latency: u64) {
        self.0.on_mem_read(sm, latency);
        self.1.on_mem_read(sm, latency);
    }

    #[inline]
    fn on_rt_phase(&mut self, sm: usize, rays: u32, nodes: u32, start: u64, occupancy_cycles: u64) {
        self.0.on_rt_phase(sm, rays, nodes, start, occupancy_cycles);
        self.1.on_rt_phase(sm, rays, nodes, start, occupancy_cycles);
    }
}

/// The no-op observer: every callback is empty and inlines away.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullHooks;

impl SimHooks for NullHooks {}

/// Monotonic per-component event counters collected by [`TraceHooks`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounters {
    /// Warps that became resident (initial launch + backfill).
    pub warps_launched: u64,
    /// Warps that ran to completion.
    pub warps_retired: u64,
    /// Issued phases whose critical path was compute.
    pub compute_phases: u64,
    /// Issued phases whose critical path was memory.
    pub memory_phases: u64,
    /// Issued phases whose critical path was the RT unit.
    pub rt_phases: u64,
    /// L1D hits across all SMs.
    pub l1_hits: u64,
    /// L1D misses across all SMs.
    pub l1_misses: u64,
    /// L2 hits across all slices.
    pub l2_hits: u64,
    /// L2 misses across all slices.
    pub l2_misses: u64,
    /// DRAM transactions scheduled on any channel.
    pub dram_transfers: u64,
    /// Total bytes moved over all DRAM channels.
    pub dram_bytes: u64,
    /// Active rays summed over all RT phases.
    pub rt_active_rays: u64,
    /// Cycles RT tester slots were occupied.
    pub rt_occupancy_cycles: u64,
}

impl TraceCounters {
    /// Total issued phases across all classes.
    pub fn phases(&self) -> u64 {
        self.compute_phases + self.memory_phases + self.rt_phases
    }
}

impl ToJson for TraceCounters {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        macro_rules! put {
            ($($field:ident),* $(,)?) => {
                $( m.insert(stringify!($field).to_string(), Value::from(self.$field)); )*
            };
        }
        put!(
            warps_launched,
            warps_retired,
            compute_phases,
            memory_phases,
            rt_phases,
            l1_hits,
            l1_misses,
            l2_hits,
            l2_misses,
            dram_transfers,
            dram_bytes,
            rt_active_rays,
            rt_occupancy_cycles,
        );
        Value::Object(m)
    }
}

/// One cycle-slice of simulated time: how many phases issued in the slice
/// and how the exposed cycles split across the CPI-stack components.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceSlice {
    /// Phases issued whose start fell inside this slice.
    pub phases: u64,
    /// Exposed cycles attributed to compute.
    pub compute_cycles: u64,
    /// Exposed cycles attributed to memory.
    pub memory_cycles: u64,
    /// Exposed cycles attributed to the RT unit.
    pub rt_cycles: u64,
}

impl ToJson for TraceSlice {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("phases".to_string(), Value::from(self.phases));
        m.insert("compute".to_string(), Value::from(self.compute_cycles));
        m.insert("memory".to_string(), Value::from(self.memory_cycles));
        m.insert("rt".to_string(), Value::from(self.rt_cycles));
        Value::Object(m)
    }
}

/// Recording observer: per-component counters plus a CPI-stack sample per
/// fixed-width slice of simulated cycles.
///
/// The slice series doubles as a progress trace — the highest slice index
/// tells how far simulated time has advanced — and serializes to JSON via
/// [`ToJson`] for the CLI's `--progress`/`--json` plumbing.
#[derive(Debug, Clone)]
pub struct TraceHooks {
    slice_cycles: u64,
    counters: TraceCounters,
    slices: Vec<TraceSlice>,
}

impl TraceHooks {
    /// Creates a recorder sampling one CPI-stack slice every
    /// `slice_cycles` simulated cycles.
    ///
    /// # Panics
    ///
    /// Panics if `slice_cycles` is zero.
    pub fn new(slice_cycles: u64) -> Self {
        assert!(slice_cycles > 0, "slice width must be positive");
        TraceHooks {
            slice_cycles,
            counters: TraceCounters::default(),
            slices: Vec::new(),
        }
    }

    /// The configured slice width in cycles.
    pub fn slice_cycles(&self) -> u64 {
        self.slice_cycles
    }

    /// The accumulated per-component counters.
    pub fn counters(&self) -> &TraceCounters {
        &self.counters
    }

    /// The CPI-stack samples, one per slice of simulated time.
    pub fn slices(&self) -> &[TraceSlice] {
        &self.slices
    }

    /// Resets all recorded state, keeping the slice width. Lets one
    /// allocation be reused across the per-group runs of a pipeline.
    pub fn reset(&mut self) {
        self.counters = TraceCounters::default();
        self.slices.clear();
    }

    fn slice_mut(&mut self, time: u64) -> &mut TraceSlice {
        let idx = (time / self.slice_cycles) as usize;
        if idx >= self.slices.len() {
            self.slices.resize(idx + 1, TraceSlice::default());
        }
        &mut self.slices[idx]
    }
}

impl ToJson for TraceHooks {
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("slice_cycles".to_string(), Value::from(self.slice_cycles));
        m.insert("counters".to_string(), self.counters.to_json());
        m.insert(
            "slices".to_string(),
            Value::Array(self.slices.iter().map(ToJson::to_json).collect()),
        );
        Value::Object(m)
    }
}

impl SimHooks for TraceHooks {
    fn on_warp_launch(&mut self, _sm: usize, _warp_id: u64, _time: u64) {
        self.counters.warps_launched += 1;
    }

    fn on_warp_retire(&mut self, _sm: usize, _warp_id: u64, _time: u64) {
        self.counters.warps_retired += 1;
    }

    fn on_phase_issue(
        &mut self,
        _sm: usize,
        _warp_id: u64,
        class: PhaseClass,
        start: u64,
        ready: u64,
    ) {
        let span = ready - start;
        match class {
            PhaseClass::Compute => self.counters.compute_phases += 1,
            PhaseClass::Memory => self.counters.memory_phases += 1,
            PhaseClass::Rt => self.counters.rt_phases += 1,
        }
        let slice = self.slice_mut(start);
        slice.phases += 1;
        match class {
            PhaseClass::Compute => slice.compute_cycles += span,
            PhaseClass::Memory => slice.memory_cycles += span,
            PhaseClass::Rt => slice.rt_cycles += span,
        }
    }

    fn on_cache_access(&mut self, level: CacheLevel, hit: bool) {
        let counter = match (level, hit) {
            (CacheLevel::L1, true) => &mut self.counters.l1_hits,
            (CacheLevel::L1, false) => &mut self.counters.l1_misses,
            (CacheLevel::L2, true) => &mut self.counters.l2_hits,
            (CacheLevel::L2, false) => &mut self.counters.l2_misses,
        };
        *counter += 1;
    }

    fn on_dram_transfer(&mut self, _channel: usize, bytes: u32, _time: u64) {
        self.counters.dram_transfers += 1;
        self.counters.dram_bytes += bytes as u64;
    }

    fn on_rt_phase(
        &mut self,
        _sm: usize,
        rays: u32,
        _nodes: u32,
        _start: u64,
        occupancy_cycles: u64,
    ) {
        self.counters.rt_active_rays += rays as u64;
        self.counters.rt_occupancy_cycles += occupancy_cycles;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_hooks_is_zero_sized() {
        assert_eq!(std::mem::size_of::<NullHooks>(), 0);
    }

    #[test]
    fn trace_slices_bucket_by_start_cycle() {
        let mut t = TraceHooks::new(100);
        t.on_phase_issue(0, 0, PhaseClass::Compute, 10, 30);
        t.on_phase_issue(0, 1, PhaseClass::Memory, 250, 400);
        assert_eq!(t.slices().len(), 3);
        assert_eq!(t.slices()[0].compute_cycles, 20);
        assert_eq!(t.slices()[1], TraceSlice::default());
        assert_eq!(t.slices()[2].memory_cycles, 150);
        assert_eq!(t.counters().phases(), 2);
    }

    #[test]
    fn counters_serialize_to_json() {
        let mut t = TraceHooks::new(50);
        t.on_warp_launch(0, 0, 0);
        t.on_cache_access(CacheLevel::L1, false);
        t.on_cache_access(CacheLevel::L2, true);
        t.on_dram_transfer(1, 64, 500);
        let v = t.to_json();
        let c = v.get("counters").expect("counters object");
        assert_eq!(c.get("warps_launched").and_then(Value::as_u64), Some(1));
        assert_eq!(c.get("l1_misses").and_then(Value::as_u64), Some(1));
        assert_eq!(c.get("l2_hits").and_then(Value::as_u64), Some(1));
        assert_eq!(c.get("dram_bytes").and_then(Value::as_u64), Some(64));
        assert_eq!(v.get("slice_cycles").and_then(Value::as_u64), Some(50));
    }

    #[test]
    fn reset_clears_state() {
        let mut t = TraceHooks::new(10);
        t.on_warp_launch(0, 0, 0);
        t.on_phase_issue(0, 0, PhaseClass::Rt, 0, 5);
        t.reset();
        assert_eq!(*t.counters(), TraceCounters::default());
        assert!(t.slices().is_empty());
        assert_eq!(t.slice_cycles(), 10);
    }

    #[test]
    fn events_on_slice_boundaries_land_in_the_next_slice() {
        // Slices are half-open [k*w, (k+1)*w): a phase starting exactly at
        // the boundary belongs to the next slice, not the previous one.
        let mut t = TraceHooks::new(100);
        t.on_phase_issue(0, 0, PhaseClass::Compute, 99, 100);
        t.on_phase_issue(0, 1, PhaseClass::Compute, 100, 130);
        t.on_phase_issue(0, 2, PhaseClass::Compute, 200, 201);
        assert_eq!(t.slices().len(), 3);
        assert_eq!(t.slices()[0].phases, 1, "start 99 stays in slice 0");
        assert_eq!(t.slices()[1].phases, 1, "start 100 opens slice 1");
        assert_eq!(t.slices()[1].compute_cycles, 30);
        assert_eq!(t.slices()[2].phases, 1, "start 200 opens slice 2");
    }

    #[test]
    fn unit_slice_width_gives_one_slice_per_cycle() {
        let mut t = TraceHooks::new(1);
        t.on_phase_issue(0, 0, PhaseClass::Memory, 0, 3);
        t.on_phase_issue(0, 1, PhaseClass::Memory, 5, 6);
        assert_eq!(t.slices().len(), 6, "indices 0..=5");
        assert_eq!(t.slices()[0].memory_cycles, 3);
        assert_eq!(t.slices()[5].memory_cycles, 1);
        assert_eq!(
            t.slices()[1..5].iter().map(|s| s.phases).sum::<u64>(),
            0,
            "no phases start between the two issues"
        );
    }

    #[test]
    #[should_panic(expected = "slice width must be positive")]
    fn zero_slice_width_panics() {
        let _ = TraceHooks::new(0);
    }

    #[test]
    fn reset_clears_counters_and_slices_together() {
        let mut t = TraceHooks::new(100);
        t.on_warp_launch(0, 0, 0);
        t.on_dram_transfer(0, 128, 90);
        t.on_rt_phase(0, 16, 2, 0, 40);
        t.on_phase_issue(0, 0, PhaseClass::Rt, 350, 420);
        assert_ne!(*t.counters(), TraceCounters::default());
        assert_eq!(t.slices().len(), 4);
        t.reset();
        assert_eq!(*t.counters(), TraceCounters::default());
        assert!(t.slices().is_empty());
        // The recorder is reusable after reset: new events land in slice 0.
        t.on_phase_issue(0, 1, PhaseClass::Compute, 10, 20);
        assert_eq!(t.slices().len(), 1);
        assert_eq!(t.slices()[0].phases, 1);
    }

    #[test]
    fn option_hooks_forward_only_when_some() {
        let mut none: Option<TraceHooks> = None;
        none.on_warp_launch(0, 0, 0); // must not panic
        let mut some = Some(TraceHooks::new(10));
        some.on_warp_launch(0, 0, 0);
        some.on_cache_access(CacheLevel::L1, true);
        some.on_mem_read(0, 42);
        let t = some.unwrap();
        assert_eq!(t.counters().warps_launched, 1);
        assert_eq!(t.counters().l1_hits, 1);
    }

    #[test]
    fn pair_hooks_fan_out_to_both() {
        let mut pair = (TraceHooks::new(10), TraceHooks::new(20));
        pair.on_warp_launch(0, 7, 0);
        pair.on_dram_transfer(2, 64, 300);
        pair.on_rt_phase(1, 8, 3, 5, 12);
        for t in [&pair.0, &pair.1] {
            assert_eq!(t.counters().warps_launched, 1);
            assert_eq!(t.counters().dram_bytes, 64);
            assert_eq!(t.counters().rt_active_rays, 8);
        }
    }

    #[test]
    fn phase_class_tags_match_cpi_stack_names() {
        assert_eq!(PhaseClass::Compute.tag(), "compute");
        assert_eq!(PhaseClass::Memory.tag(), "memory");
        assert_eq!(PhaseClass::Rt.tag(), "rt");
    }
}
