//! Simulation statistics: the raw counters and the seven derived metrics of
//! the paper's Table I.

use minijson::{FromJson, JsonError, Map, ToJson, Value};

/// Every `u64` counter of [`SimStats`], in declaration order. Keeping the
/// list in one place guarantees the JSON impls stay in sync with the
/// struct.
macro_rules! for_each_simstats_u64 {
    ($apply:ident!($($extra:tt)*)) => {
        $apply!(
            $($extra)*
            cycles,
            instructions,
            warp_issues,
            l1_accesses,
            l1_misses,
            l2_accesses,
            l2_misses,
            rt_warp_phases,
            rt_active_rays,
            dram_busy_cycles,
            dram_active_cycles,
            dram_transactions,
            dram_row_hits,
            icnt_transfers,
            icnt_busy_cycles,
            threads_launched,
            threads_filtered,
            bound_issue_cycles,
            bound_compute_cycles,
            bound_memory_cycles,
            bound_rt_cycles,
            read_latency_sum,
            reads
        )
    };
}

/// Raw counters accumulated during a simulation run.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimStats {
    /// Total simulated core-clock cycles (time of the last retiring warp).
    pub cycles: u64,
    /// Scalar thread instructions executed.
    pub instructions: u64,
    /// Warp-instruction issue slots consumed.
    pub warp_issues: u64,
    /// L1D accesses summed over all SM instances.
    pub l1_accesses: u64,
    /// L1D misses summed over all SM instances.
    pub l1_misses: u64,
    /// L2 accesses summed over all slices.
    pub l2_accesses: u64,
    /// L2 misses summed over all slices.
    pub l2_misses: u64,
    /// RT-unit warp phases issued (one per warp visit to the RT unit).
    pub rt_warp_phases: u64,
    /// Sum of active rays over all RT warp phases.
    pub rt_active_rays: u64,
    /// DRAM data-transfer busy cycles summed over channels.
    pub dram_busy_cycles: u64,
    /// DRAM cycles with at least one pending request, summed over channels.
    pub dram_active_cycles: u64,
    /// Number of DRAM channels (needed to normalize bandwidth utilization).
    pub dram_channels: u32,
    /// Total DRAM transactions serviced.
    pub dram_transactions: u64,
    /// DRAM transactions that hit an open row.
    pub dram_row_hits: u64,
    /// Packets crossed through the interconnect.
    pub icnt_transfers: u64,
    /// Interconnect port-occupancy cycles.
    pub icnt_busy_cycles: u64,
    /// Threads launched.
    pub threads_launched: u64,
    /// Threads that were filtered out (exited via the pixel filter).
    pub threads_filtered: u64,
    /// Warp-phase cycles spent waiting for the issue port.
    pub bound_issue_cycles: u64,
    /// Warp-phase cycles whose critical path was ALU execution.
    pub bound_compute_cycles: u64,
    /// Warp-phase cycles whose critical path was LSU memory access.
    pub bound_memory_cycles: u64,
    /// Warp-phase cycles whose critical path was the RT unit (tests or
    /// BVH-data fetches).
    pub bound_rt_cycles: u64,
    /// Sum of read latencies in cycles (diagnostic).
    pub read_latency_sum: u64,
    /// Number of reads issued (diagnostic).
    pub reads: u64,
}

impl SimStats {
    /// Instructions per cycle over the whole GPU.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Total L1D miss rate over all instances.
    pub fn l1_miss_rate(&self) -> f64 {
        ratio(self.l1_misses, self.l1_accesses)
    }

    /// Total L2 miss rate over all instances.
    pub fn l2_miss_rate(&self) -> f64 {
        ratio(self.l2_misses, self.l2_accesses)
    }

    /// Average number of active rays per warp over all RT units.
    pub fn rt_efficiency(&self) -> f64 {
        ratio(self.rt_active_rays, self.rt_warp_phases)
    }

    /// DRAM bandwidth utilization while requests are pending
    /// (busy / active).
    pub fn dram_efficiency(&self) -> f64 {
        ratio(self.dram_busy_cycles, self.dram_active_cycles)
    }

    /// Average memory read latency in core cycles (diagnostic; not a
    /// Table-I metric).
    pub fn avg_read_latency(&self) -> f64 {
        ratio(self.read_latency_sum, self.reads)
    }

    /// DRAM row-buffer hit rate (diagnostic; not a Table-I metric).
    pub fn dram_row_hit_rate(&self) -> f64 {
        ratio(self.dram_row_hits, self.dram_transactions)
    }

    /// A CPI-stack-style breakdown of where warp-phase time went, as
    /// fractions of the total attributed cycles: `(issue, compute, memory,
    /// rt)`. Returns zeros before any phase has run.
    ///
    /// Analytical models like GCoM stop at this stack; this simulator
    /// provides it *and* the Table-I metrics.
    pub fn cpi_stack(&self) -> [(&'static str, f64); 4] {
        let total = (self.bound_issue_cycles
            + self.bound_compute_cycles
            + self.bound_memory_cycles
            + self.bound_rt_cycles) as f64;
        let share = |v: u64| if total > 0.0 { v as f64 / total } else { 0.0 };
        [
            ("issue", share(self.bound_issue_cycles)),
            ("compute", share(self.bound_compute_cycles)),
            ("memory", share(self.bound_memory_cycles)),
            ("rt", share(self.bound_rt_cycles)),
        ]
    }

    /// DRAM bandwidth utilization over the whole run
    /// (busy / (cycles × channels)).
    pub fn bandwidth_utilization(&self) -> f64 {
        if self.cycles == 0 || self.dram_channels == 0 {
            0.0
        } else {
            self.dram_busy_cycles as f64 / (self.cycles as f64 * self.dram_channels as f64)
        }
    }
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl ToJson for SimStats {
    fn to_json(&self) -> Value {
        let mut map = Map::new();
        macro_rules! put {
            ($this:expr, $map:expr, $($field:ident),*) => {
                $( $map.insert(stringify!($field).to_string(), Value::from($this.$field)); )*
            };
        }
        for_each_simstats_u64!(put!(self, map,));
        map.insert("dram_channels".to_string(), Value::from(self.dram_channels));
        Value::Object(map)
    }
}

impl FromJson for SimStats {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let mut stats = SimStats::default();
        macro_rules! take {
            ($this:expr, $value:expr, $($field:ident),*) => {
                $(
                    $this.$field = $value
                        .get(stringify!($field))
                        .and_then(Value::as_u64)
                        .ok_or_else(|| JsonError::missing_field("SimStats", stringify!($field)))?;
                )*
            };
        }
        for_each_simstats_u64!(take!(stats, value,));
        stats.dram_channels = value
            .get("dram_channels")
            .and_then(Value::as_u64)
            .and_then(|v| u32::try_from(v).ok())
            .ok_or_else(|| JsonError::missing_field("SimStats", "dram_channels"))?;
        Ok(stats)
    }
}

/// How per-group predictions are merged into a whole-GPU prediction
/// (paper Section III-H).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CombineRule {
    /// Sum across groups (rates of concurrent sub-GPUs add up, e.g. IPC).
    Sum,
    /// Average across groups (encapsulated ratios, e.g. cache miss rates).
    Average,
}

/// The seven metrics evaluated in the paper (Table I).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Metric {
    /// GPU instructions per cycle.
    Ipc,
    /// GPU simulation cycles.
    SimCycles,
    /// L1D total cache miss rate.
    L1MissRate,
    /// L2 total cache miss rate.
    L2MissRate,
    /// RT unit average efficiency (active rays per warp).
    RtEfficiency,
    /// DRAM efficiency (busy / active).
    DramEfficiency,
    /// Bandwidth utilization (busy / total).
    BandwidthUtilization,
}

impl Metric {
    /// All seven metrics, in Table I order.
    pub const ALL: [Metric; 7] = [
        Metric::Ipc,
        Metric::SimCycles,
        Metric::L1MissRate,
        Metric::L2MissRate,
        Metric::RtEfficiency,
        Metric::DramEfficiency,
        Metric::BandwidthUtilization,
    ];

    /// Short display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            Metric::Ipc => "GPU IPC",
            Metric::SimCycles => "GPU Sim Cycles",
            Metric::L1MissRate => "L1D Miss Rate",
            Metric::L2MissRate => "L2 Miss Rate",
            Metric::RtEfficiency => "RT Avg Efficiency",
            Metric::DramEfficiency => "DRAM Efficiency",
            Metric::BandwidthUtilization => "BW Utilization",
        }
    }

    /// Extracts the metric's value from raw counters.
    pub fn value(self, stats: &SimStats) -> f64 {
        match self {
            Metric::Ipc => stats.ipc(),
            Metric::SimCycles => stats.cycles as f64,
            Metric::L1MissRate => stats.l1_miss_rate(),
            Metric::L2MissRate => stats.l2_miss_rate(),
            Metric::RtEfficiency => stats.rt_efficiency(),
            Metric::DramEfficiency => stats.dram_efficiency(),
            Metric::BandwidthUtilization => stats.bandwidth_utilization(),
        }
    }

    /// How this metric combines across Zatel's simulation groups.
    ///
    /// IPC sums: in the same cycle each sub-GPU retires its own
    /// instructions (the paper's 20 + 50 = 70 IPC example). Everything else
    /// — cycles, miss rates, efficiencies — is a per-group-encapsulated
    /// quantity and averages.
    pub fn combine_rule(self) -> CombineRule {
        match self {
            Metric::Ipc => CombineRule::Sum,
            _ => CombineRule::Average,
        }
    }

    /// Whether the metric is an absolute quantity that must be linearly
    /// extrapolated by the traced-pixel fraction (paper Section III-G).
    pub fn is_absolute(self) -> bool {
        matches!(self, Metric::SimCycles)
    }

    /// Extrapolates a group's metric value measured while tracing
    /// `fraction` of that group's pixels to an estimate for the full group.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not in `(0, 1]`.
    pub fn extrapolate(self, value: f64, fraction: f64) -> f64 {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "traced fraction must be in (0,1], got {fraction}"
        );
        if self.is_absolute() {
            value / fraction
        } else {
            value
        }
    }

    /// Combines per-group (already extrapolated) values into the final
    /// whole-GPU prediction.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn combine(self, values: &[f64]) -> f64 {
        assert!(!values.is_empty(), "need at least one group value");
        let sum: f64 = values.iter().sum();
        match self.combine_rule() {
            CombineRule::Sum => sum,
            CombineRule::Average => sum / values.len() as f64,
        }
    }
}

impl std::fmt::Display for Metric {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl Metric {
    /// Stable identifier used for JSON (the variant name, matching the
    /// previous externally-derived encoding).
    fn json_tag(self) -> &'static str {
        match self {
            Metric::Ipc => "Ipc",
            Metric::SimCycles => "SimCycles",
            Metric::L1MissRate => "L1MissRate",
            Metric::L2MissRate => "L2MissRate",
            Metric::RtEfficiency => "RtEfficiency",
            Metric::DramEfficiency => "DramEfficiency",
            Metric::BandwidthUtilization => "BandwidthUtilization",
        }
    }
}

impl ToJson for Metric {
    fn to_json(&self) -> Value {
        Value::String(self.json_tag().to_string())
    }
}

impl FromJson for Metric {
    fn from_json(value: &Value) -> Result<Self, JsonError> {
        let tag = value
            .as_str()
            .ok_or_else(|| JsonError::conversion("Metric: expected a string"))?;
        Metric::ALL
            .into_iter()
            .find(|m| m.json_tag() == tag)
            .ok_or_else(|| JsonError::conversion(format!("Metric: unknown variant '{tag}'")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stats() -> SimStats {
        SimStats {
            cycles: 1000,
            instructions: 2500,
            warp_issues: 200,
            l1_accesses: 100,
            l1_misses: 30,
            l2_accesses: 30,
            l2_misses: 15,
            rt_warp_phases: 10,
            rt_active_rays: 250,
            dram_busy_cycles: 400,
            dram_active_cycles: 800,
            dram_channels: 2,
            dram_transactions: 50,
            dram_row_hits: 25,
            icnt_transfers: 0,
            icnt_busy_cycles: 0,
            bound_issue_cycles: 10,
            bound_compute_cycles: 20,
            bound_memory_cycles: 50,
            bound_rt_cycles: 20,
            threads_launched: 64,
            threads_filtered: 0,
            read_latency_sum: 0,
            reads: 0,
        }
    }

    #[test]
    fn derived_metrics() {
        let s = sample_stats();
        assert_eq!(s.ipc(), 2.5);
        assert_eq!(s.l1_miss_rate(), 0.3);
        assert_eq!(s.l2_miss_rate(), 0.5);
        assert_eq!(s.rt_efficiency(), 25.0);
        assert_eq!(s.dram_efficiency(), 0.5);
        assert_eq!(s.bandwidth_utilization(), 0.2);
    }

    #[test]
    fn zero_denominators_are_safe() {
        let s = SimStats::default();
        for m in Metric::ALL {
            assert_eq!(m.value(&s), 0.0, "{m}");
        }
    }

    #[test]
    fn metric_values_match_fields() {
        let s = sample_stats();
        assert_eq!(Metric::SimCycles.value(&s), 1000.0);
        assert_eq!(Metric::Ipc.value(&s), s.ipc());
    }

    #[test]
    fn paper_ipc_combining_example() {
        // Two groups: 20 IPC @ 0.70 L1 miss rate and 50 IPC @ 0.60.
        assert_eq!(Metric::Ipc.combine(&[20.0, 50.0]), 70.0);
        let l1 = Metric::L1MissRate.combine(&[0.70, 0.60]);
        assert!((l1 - 0.65).abs() < 1e-12);
    }

    #[test]
    fn paper_linear_extrapolation_example() {
        // 100,000 cycles tracing 10% of pixels → 1,000,000 predicted.
        let v = Metric::SimCycles.extrapolate(100_000.0, 0.1);
        assert_eq!(v, 1_000_000.0);
        // Ratio metrics pass through unchanged.
        assert_eq!(Metric::L2MissRate.extrapolate(0.4, 0.1), 0.4);
    }

    #[test]
    #[should_panic(expected = "traced fraction")]
    fn extrapolate_rejects_zero_fraction() {
        Metric::SimCycles.extrapolate(1.0, 0.0);
    }

    #[test]
    fn cpi_stack_shares_sum_to_one() {
        let s = sample_stats();
        let stack = s.cpi_stack();
        let total: f64 = stack.iter().map(|(_, v)| v).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(stack[2], ("memory", 0.5));
        let empty = SimStats::default();
        assert!(empty.cpi_stack().iter().all(|(_, v)| *v == 0.0));
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 7);
    }
}
