//! `zatel` — command-line front end for the Zatel prediction pipeline.
//!
//! ```text
//! zatel scenes
//! zatel configs
//! zatel predict --scene PARK --config mobile --res 192 [--reference]
//!               [--percent 0.4] [--cap 0.1] [--k 4 | --no-downscale]
//!               [--division fine|coarse] [--dist uniform|lintmp|exptmp]
//!               [--regression] [--json] [--seed 42] [--spp 2]
//!               [--trace-out trace.json] [--run-out run.json]
//! zatel sweep --scene PARK --config mobile --ks 1,2,4 --percents 0.1,0.3,0.6
//!             [--spec spec.json] [--cache-dir DIR] [--runs-out runs.jsonl]
//!             [--reference] [--json]
//! zatel report --run run.json [--history runs.jsonl] [--pgm heatmap.pgm]
//!              [--prom metrics.prom]
//! zatel report [--history runs.jsonl]      # summarize recorded history
//! zatel heatmap --scene WKND --res 256 --out target/heatmaps
//! zatel lint [--check] [--json] [--root DIR] [--baseline FILE]
//!            [--no-baseline] [--write-baseline] [--quiet]
//! ```
//!
//! All progress and diagnostic output goes to **stderr**; stdout carries
//! only the result (tables, or JSON with `--json`), so piping into tools
//! is always safe.

mod args;

use std::process::ExitCode;

use args::Args;
use gpusim::{GpuConfig, Metric};
use minijson::{FromJson, ToJson};
use obs::ObserveOptions;
use rtcore::scenes::SceneId;
use rtcore::tracer::TraceConfig;
use zatel::{Distribution, DivisionMethod, DownscaleMode, Prediction, Reference, Zatel};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        print_help();
        return ExitCode::SUCCESS;
    }
    match run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: Vec<String>) -> Result<(), String> {
    let args = Args::parse(argv).map_err(|e| e.to_string())?;
    match args.command.as_str() {
        "scenes" => cmd_scenes(),
        "configs" => cmd_configs(),
        "predict" => cmd_predict(&args),
        "sweep" => cmd_sweep(&args),
        "report" => cmd_report(&args),
        "heatmap" => cmd_heatmap(&args),
        "lint" => cmd_lint(&args),
        other => Err(format!("unknown subcommand '{other}'; try 'zatel help'")),
    }
}

fn print_help() {
    println!(
        "zatel — sample complexity-aware scale-model simulation for ray tracing\n\
         \n\
         USAGE:\n  zatel <scenes|configs|predict|sweep|report|heatmap|lint|help> [options]\n\
         \n\
         predict options:\n\
           --scene NAME        benchmark scene (default PARK; see 'zatel scenes')\n\
           --config NAME|FILE  mobile | rtx2060 | path to a GpuConfig JSON (default mobile)\n\
           --res N             square image resolution (default 128)\n\
           --spp N             samples per pixel (default 2)\n\
           --seed N            master seed (default 42)\n\
           --percent F         fixed traced fraction in (0,1] instead of Eq.(1)\n\
           --cap F             upper bound applied after Eq.(1)\n\
           --k N               explicit downscale factor (default: gcd rule)\n\
           --no-downscale      single group on the full GPU\n\
           --division KIND     fine | coarse (default fine)\n\
           --dist KIND         uniform | lintmp | exptmp (default uniform)\n\
           --regression        extrapolate via 20/30/40%% exponential regression\n\
           --reference         also run the full simulation and report errors\n\
           --json              emit machine-readable JSON instead of tables\n\
           --jobs N            worker threads for group simulation (default: host cores)\n\
           --progress          per-group progress lines + engine trace counters (stderr)\n\
           --trace-out FILE    write a Perfetto/Chrome-trace JSON timeline of the run\n\
           --run-out FILE      persist a zatel-run-v1 record for 'zatel report'\n\
         \n\
         sweep options (scene/config/res/spp/seed/division/dist/jobs as for predict):\n\
           --ks LIST           comma-separated downscale factors, e.g. 1,2,4\n\
           --percents LIST     comma-separated traced fractions, e.g. 0.1,0.3,0.6\n\
           --spec FILE         sweep-spec JSON instead of the --ks/--percents matrix\n\
           --cache-dir DIR     persist stage artifacts on disk (warm reruns skip\n\
                               heatmap profiling and quantization)\n\
           --runs-out FILE     append one zatel-sweep-v1 JSON line per point\n\
           --reference         also run the full simulation and report errors\n\
           --json              emit machine-readable JSON instead of tables\n\
         \n\
         report options:\n\
           --run FILE          run record written by 'zatel predict --run-out';\n\
                               without --run, summarizes the recorded history\n\
           --history FILE      append a one-line summary here (default runs.jsonl)\n\
           --pgm FILE          write the execution-time heatmap as a binary PGM\n\
           --prom FILE         write the metrics snapshot in Prometheus text format\n\
         \n\
         heatmap options:\n\
           --scene NAME --res N --out DIR   write heatmap/quantized PPM images\n\
         \n\
         lint options (workspace static analysis; see DESIGN.md):\n\
           --check             exit non-zero when any active finding remains\n\
           --json              emit zatel-lint-v1 JSON diagnostics on stdout\n\
           --root DIR          workspace root (default: discovered from cwd)\n\
           --baseline FILE     baseline file (default: <root>/lint-baseline.json)\n\
           --no-baseline       ignore the baseline; show all findings\n\
           --write-baseline    snapshot current findings into the baseline\n\
           --quiet             suppress the per-finding text output"
    );
}

fn cmd_scenes() -> Result<(), String> {
    println!("{:<8} {:>10}  characteristics", "scene", "primitives");
    for id in rtcore::scenes::all() {
        let scene = id.build(42);
        println!(
            "{:<8} {:>10}  {}",
            id.name(),
            scene.primitive_count(),
            id.description()
        );
    }
    Ok(())
}

fn cmd_configs() -> Result<(), String> {
    for config in [GpuConfig::mobile_soc(), GpuConfig::rtx_2060()] {
        println!("{}", config.to_json().pretty());
    }
    Ok(())
}

fn load_config(spec: &str) -> Result<GpuConfig, String> {
    match spec.to_ascii_lowercase().as_str() {
        "mobile" | "mobile_soc" | "mobile-soc" => Ok(GpuConfig::mobile_soc()),
        "rtx2060" | "rtx-2060" | "rtx_2060" | "turing" => Ok(GpuConfig::rtx_2060()),
        _ => {
            let text = std::fs::read_to_string(spec)
                .map_err(|e| format!("reading config file '{spec}': {e}"))?;
            let value = minijson::Value::parse(&text)
                .map_err(|e| format!("parsing config file '{spec}': {e}"))?;
            let config = GpuConfig::from_json(&value)
                .map_err(|e| format!("parsing config file '{spec}': {e}"))?;
            config
                .validate()
                .map_err(|e| format!("config file '{spec}': {e}"))?;
            Ok(config)
        }
    }
}

fn scene_from(args: &Args) -> Result<(SceneId, rtcore::scene::Scene, u64), String> {
    let seed = args.get_parsed("seed", 42u64).map_err(|e| e.to_string())?;
    let name = args.get("scene").unwrap_or("PARK");
    let id = rtcore::scenes::by_name(name)
        .ok_or_else(|| format!("unknown scene '{name}'; see 'zatel scenes'"))?;
    let scene = id.build(seed);
    Ok((id, scene, seed))
}

/// Simulated-cycle width of one `--progress` CPI-stack slice.
const PROGRESS_SLICE_CYCLES: u64 = 100_000;

/// Applies the pipeline options shared by `predict` and `sweep`
/// (`--k`/`--no-downscale`, `--division`, `--dist`, `--percent`, `--cap`,
/// `--jobs`) onto `opts`.
fn apply_options(args: &Args, opts: &mut zatel::ZatelOptions) -> Result<(), String> {
    if args.flag("no-downscale") {
        opts.downscale = DownscaleMode::NoDownscale;
    } else if let Some(k) = args.get("k") {
        let k: u32 = k
            .parse()
            .map_err(|_| format!("--k value '{k}' is not a number"))?;
        opts.downscale = DownscaleMode::Factor(k);
    }
    match args.get("division").unwrap_or("fine") {
        "fine" => opts.division = DivisionMethod::default_fine(),
        "coarse" => opts.division = DivisionMethod::Coarse,
        other => return Err(format!("unknown division '{other}' (fine|coarse)")),
    }
    match args.get("dist").unwrap_or("uniform") {
        "uniform" => opts.selection.distribution = Distribution::Uniform,
        "lintmp" => opts.selection.distribution = Distribution::LinTmp,
        "exptmp" => opts.selection.distribution = Distribution::ExpTmp,
        other => {
            return Err(format!(
                "unknown distribution '{other}' (uniform|lintmp|exptmp)"
            ))
        }
    }
    if let Some(p) = args.get("percent") {
        let p: f64 = p
            .parse()
            .map_err(|_| format!("--percent '{p}' is not a number"))?;
        opts.selection.percent_override = Some(p);
    }
    if let Some(c) = args.get("cap") {
        let c: f64 = c
            .parse()
            .map_err(|_| format!("--cap '{c}' is not a number"))?;
        opts.selection.percent_cap = Some(c);
    }
    if let Some(j) = args.get("jobs") {
        let j: usize = j
            .parse()
            .map_err(|_| format!("--jobs value '{j}' is not a number"))?;
        if j == 0 {
            return Err("--jobs must be at least 1".into());
        }
        opts.jobs = Some(j);
    }
    Ok(())
}

fn cmd_predict(args: &Args) -> Result<(), String> {
    let (_, scene, seed) = scene_from(args)?;
    let config = load_config(args.get("config").unwrap_or("mobile"))?;
    let res = args.get_parsed("res", 128u32).map_err(|e| e.to_string())?;
    let spp = args.get_parsed("spp", 2u32).map_err(|e| e.to_string())?;
    let trace = TraceConfig {
        samples_per_pixel: spp,
        max_bounces: 4,
        seed,
    };

    let mut zatel = Zatel::new(&scene, config, res, res, trace);
    apply_options(args, zatel.options_mut())?;
    let opts = zatel.options_mut();
    let progress = args.flag("progress");
    if progress {
        opts.trace_slice_cycles = Some(PROGRESS_SLICE_CYCLES);
    }
    let trace_out = args.get("trace-out");
    let run_out = args.get("run-out");
    let observing = trace_out.is_some() || run_out.is_some();
    if observing {
        opts.observe = Some(ObserveOptions {
            timeline: trace_out.is_some(),
            ..ObserveOptions::default()
        });
    }

    let mut prediction = if args.flag("regression") {
        zatel
            .run_with_regression([0.2, 0.3, 0.4])
            .map_err(|e| e.to_string())?
    } else {
        zatel.run().map_err(|e| e.to_string())?
    };

    let reference = args.flag("reference").then(|| zatel.run_reference());

    if progress {
        for g in &prediction.groups {
            eprint!(
                "  group {}/{}: {} px, traced {:>3.0}%, {} cycles, {:.3}s",
                g.index + 1,
                prediction.groups.len(),
                g.pixels,
                100.0 * g.traced_fraction,
                g.stats.cycles,
                g.wall.as_secs_f64(),
            );
            if let Some(trace) = &g.trace {
                let c = trace.counters();
                eprint!(
                    " | {} phases over {} slices, cpi c/m/r {}/{}/{}",
                    c.phases(),
                    trace.slices().len(),
                    c.compute_phases,
                    c.memory_phases,
                    c.rt_phases,
                );
            }
            eprintln!();
        }
        eprintln!(
            "  simulation wall {:.3}s",
            prediction.sim_wall.as_secs_f64()
        );
    }

    // Fold per-group observability into one registry + one trace, in
    // group order so repeat runs with the same seed are byte-identical.
    let mut registry = obs::MetricsRegistry::new();
    let mut timelines = Vec::new();
    if observing {
        for g in &mut prediction.groups {
            if let Some(o) = g.obs.as_mut() {
                o.export(&mut registry);
                if let Some(t) = o.take_timeline() {
                    timelines.push(t);
                }
            }
        }
        registry.gauge_set("k", f64::from(prediction.k));
        registry.gauge_set("groups", prediction.groups.len() as f64);
        registry.gauge_set(
            "traced_fraction_mean",
            prediction
                .groups
                .iter()
                .map(|g| g.traced_fraction)
                .sum::<f64>()
                / prediction.groups.len().max(1) as f64,
        );
    }
    if let Some(path) = trace_out {
        let trace = obs::merge_trace(std::mem::take(&mut timelines));
        let events = obs::validate_trace(&trace)
            .map_err(|e| format!("internal: generated trace is malformed: {e}"))?;
        std::fs::write(path, trace.to_string())
            .map_err(|e| format!("writing trace '{path}': {e}"))?;
        eprintln!("wrote {events} trace events to {path}");
    }
    if let Some(path) = run_out {
        let record = run_record(
            args,
            &scene,
            res,
            spp,
            seed,
            &prediction,
            &reference,
            &registry,
        );
        std::fs::write(path, record.pretty())
            .map_err(|e| format!("writing run record '{path}': {e}"))?;
        eprintln!("wrote run record to {path} (render with 'zatel report --run {path}')");
    }

    if args.flag("json") {
        let mut out = minijson::Map::new();
        out.insert("scene".into(), minijson::json!(scene.name()));
        out.insert("k".into(), minijson::json!(prediction.k));
        let mut metrics = minijson::Map::new();
        for m in Metric::ALL {
            metrics.insert(m.name().into(), minijson::json!(prediction.value(m)));
        }
        out.insert("prediction".into(), minijson::Value::Object(metrics));
        out.insert(
            "sim_wall_ms".into(),
            minijson::json!(prediction.sim_wall.as_secs_f64() * 1000.0),
        );
        let groups: Vec<minijson::Value> = prediction
            .groups
            .iter()
            .map(|g| {
                let mut gm = minijson::Map::new();
                gm.insert("index".into(), minijson::json!(g.index));
                gm.insert("pixels".into(), minijson::json!(g.pixels as u64));
                gm.insert("traced_fraction".into(), minijson::json!(g.traced_fraction));
                gm.insert("cycles".into(), minijson::json!(g.stats.cycles));
                gm.insert(
                    "wall_ms".into(),
                    minijson::json!(g.wall.as_secs_f64() * 1000.0),
                );
                if let Some(trace) = &g.trace {
                    gm.insert("trace".into(), trace.to_json());
                }
                minijson::Value::Object(gm)
            })
            .collect();
        out.insert("groups".into(), minijson::Value::Array(groups));
        out.insert(
            "spans".into(),
            minijson::Value::Array(prediction.spans.iter().map(ToJson::to_json).collect()),
        );
        if observing {
            out.insert("metrics".into(), registry.to_json());
        }
        if let Some(reference) = &reference {
            let mut refs = minijson::Map::new();
            for m in Metric::ALL {
                refs.insert(m.name().into(), minijson::json!(m.value(&reference.stats)));
            }
            out.insert("reference".into(), minijson::Value::Object(refs));
            out.insert(
                "mae".into(),
                minijson::json!(prediction.mae_vs(&reference.stats)),
            );
            out.insert(
                "speedup_concurrent".into(),
                minijson::json!(prediction.speedup_concurrent(reference)),
            );
        }
        println!("{}", minijson::Value::Object(out).pretty());
        return Ok(());
    }

    println!(
        "{} at {res}x{res}, K = {}, {} groups, traced {:.0}% of pixels",
        scene.name(),
        prediction.k,
        prediction.groups.len(),
        100.0
            * prediction
                .groups
                .iter()
                .map(|g| g.traced_fraction)
                .sum::<f64>()
            / prediction.groups.len() as f64
    );
    match &reference {
        Some(reference) => {
            println!(
                "{:<22} {:>14} {:>14} {:>8}",
                "metric", "Zatel", "reference", "error"
            );
            for (m, err) in prediction.errors_vs(&reference.stats) {
                println!(
                    "{:<22} {:>14.4} {:>14.4} {:>7.1}%",
                    m.name(),
                    prediction.value(m),
                    m.value(&reference.stats),
                    100.0 * err
                );
            }
            println!(
                "MAE = {:.1}%   speedup (1 core/group) = {:.1}x",
                100.0 * prediction.mae_vs(&reference.stats),
                prediction.speedup_concurrent(reference)
            );
            let stack = reference.stats.cpi_stack();
            println!(
                "reference CPI stack: {}",
                stack
                    .iter()
                    .map(|(n, v)| format!("{n} {:.0}%", 100.0 * v))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        None => {
            println!("{:<22} {:>14}", "metric", "Zatel");
            for m in Metric::ALL {
                println!("{:<22} {:>14.4}", m.name(), prediction.value(m));
            }
            println!("(add --reference to compare against the full simulation)");
        }
    }
    Ok(())
}

/// Parses a comma-separated `--ks`/`--percents` list.
fn parse_list<T: std::str::FromStr>(key: &str, raw: Option<&str>) -> Result<Vec<T>, String> {
    let Some(raw) = raw else {
        return Ok(Vec::new());
    };
    raw.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse()
                .map_err(|_| format!("--{key}: '{s}' is not a number"))
        })
        .collect()
}

/// The sweep matrix, from `--spec FILE` or the `--ks`/`--percents` axes.
fn sweep_spec(args: &Args) -> Result<zatel::SweepSpec, String> {
    if let Some(path) = args.get("spec") {
        if args.get("ks").is_some() || args.get("percents").is_some() {
            return Err("--spec replaces --ks/--percents; give one or the other".into());
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading sweep spec '{path}': {e}"))?;
        let value = minijson::Value::parse(&text)
            .map_err(|e| format!("parsing sweep spec '{path}': {e}"))?;
        return zatel::SweepSpec::from_json(&value)
            .map_err(|e| format!("parsing sweep spec '{path}': {e}"));
    }
    let ks: Vec<u32> = parse_list("ks", args.get("ks"))?;
    let percents: Vec<f64> = parse_list("percents", args.get("percents"))?;
    if ks.is_empty() && percents.is_empty() {
        return Err(
            "sweep needs its matrix: --ks 1,2,4 and/or --percents 0.1,0.3,0.6, \
             or a --spec spec.json"
                .into(),
        );
    }
    Ok(zatel::SweepSpec::matrix(&ks, &percents))
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let (_, scene, seed) = scene_from(args)?;
    let config_spec = args.get("config").unwrap_or("mobile").to_owned();
    let config = load_config(&config_spec)?;
    let res = args.get_parsed("res", 128u32).map_err(|e| e.to_string())?;
    let spp = args.get_parsed("spp", 2u32).map_err(|e| e.to_string())?;
    let trace = TraceConfig {
        samples_per_pixel: spp,
        max_bounces: 4,
        seed,
    };
    let spec = sweep_spec(args)?;

    let mut base = Zatel::new(&scene, config, res, res, trace);
    apply_options(args, base.options_mut())?;
    let mut driver = zatel::SweepDriver::new(base);
    if let Some(dir) = args.get("cache-dir") {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating cache dir '{dir}': {e}"))?;
        driver = driver.with_cache(std::sync::Arc::new(zatel::ArtifactCache::with_disk(dir)));
    }
    let outcomes = driver.run(&spec).map_err(|e| e.to_string())?;
    let reference = args
        .flag("reference")
        .then(|| driver.base().run_reference());
    let stats = driver.cache().stats();
    eprintln!(
        "{} points; artifact cache: {} misses, {} memory hits, {} disk hits",
        outcomes.len(),
        stats.misses,
        stats.memory_hits,
        stats.disk_hits
    );

    if let Some(path) = args.get("runs-out") {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("opening '{path}': {e}"))?;
        for outcome in &outcomes {
            let record = sweep_record(
                &config_spec,
                &scene,
                res,
                spp,
                seed,
                outcome,
                reference.as_ref(),
            );
            writeln!(file, "{record}").map_err(|e| format!("appending to '{path}': {e}"))?;
        }
        eprintln!(
            "appended {} sweep records to {path} (summarize with 'zatel report --history {path}')",
            outcomes.len()
        );
    }

    if args.flag("json") {
        let mut out = minijson::Map::new();
        out.insert("scene".into(), minijson::json!(scene.name()));
        out.insert("config".into(), minijson::json!(config_spec.as_str()));
        out.insert("cache_stats".into(), stats.to_json());
        let points: Vec<minijson::Value> = outcomes
            .iter()
            .map(|o| sweep_record(&config_spec, &scene, res, spp, seed, o, reference.as_ref()))
            .collect();
        out.insert("points".into(), minijson::Value::Array(points));
        println!("{}", minijson::Value::Object(out).pretty());
        return Ok(());
    }

    let with_ref = reference.is_some();
    print!(
        "{:<24} {:>4} {:>14} {:>10}",
        "point", "K", "cycles", "sim ms"
    );
    if with_ref {
        print!(" {:>8} {:>9}", "MAE", "speedup");
    }
    println!(" {:>18}", "cache");
    for outcome in &outcomes {
        let pred = &outcome.prediction;
        let hits = pred.cache.iter().filter(|r| r.outcome.is_hit()).count();
        print!(
            "{:<24} {:>4} {:>14.0} {:>10.2}",
            outcome.point.label,
            pred.k,
            pred.value(Metric::SimCycles),
            pred.sim_wall.as_secs_f64() * 1000.0
        );
        if let Some(reference) = &reference {
            print!(
                " {:>7.1}% {:>8.1}x",
                100.0 * pred.mae_vs(&reference.stats),
                pred.speedup_concurrent(reference)
            );
        }
        println!(" {:>12} hits/{}", hits, pred.cache.len());
    }
    Ok(())
}

/// One `zatel-sweep-v1` line of `zatel sweep --runs-out` (also the
/// per-point object of `zatel sweep --json`).
fn sweep_record(
    config_spec: &str,
    scene: &rtcore::scene::Scene,
    res: u32,
    spp: u32,
    seed: u64,
    outcome: &zatel::SweepOutcome,
    reference: Option<&Reference>,
) -> minijson::Value {
    let pred = &outcome.prediction;
    let mut rec = minijson::Map::new();
    rec.insert("schema".into(), minijson::json!("zatel-sweep-v1"));
    rec.insert("scene".into(), minijson::json!(scene.name()));
    rec.insert("config".into(), minijson::json!(config_spec));
    rec.insert("res".into(), minijson::json!(res));
    rec.insert("spp".into(), minijson::json!(spp));
    rec.insert("seed".into(), minijson::json!(seed));
    rec.insert(
        "label".into(),
        minijson::json!(outcome.point.label.as_str()),
    );
    rec.insert("point".into(), outcome.point.to_json());
    rec.insert("k".into(), minijson::json!(pred.k));
    let mut metrics = minijson::Map::new();
    for m in Metric::ALL {
        metrics.insert(m.name().into(), minijson::json!(pred.value(m)));
    }
    rec.insert("prediction".into(), minijson::Value::Object(metrics));
    if let Some(reference) = reference {
        rec.insert("mae".into(), minijson::json!(pred.mae_vs(&reference.stats)));
        rec.insert(
            "speedup_concurrent".into(),
            minijson::json!(pred.speedup_concurrent(reference)),
        );
    }
    rec.insert(
        "sim_wall_ms".into(),
        minijson::json!(pred.sim_wall.as_secs_f64() * 1000.0),
    );
    rec.insert(
        "preprocess_wall_ms".into(),
        minijson::json!(pred.preprocess_wall.as_secs_f64() * 1000.0),
    );
    rec.insert(
        "cache".into(),
        minijson::Value::Array(pred.cache.iter().map(ToJson::to_json).collect()),
    );
    minijson::Value::Object(rec)
}

/// Builds the `zatel-run-v1` record persisted by `--run-out` and consumed
/// by `zatel report`. Wall-clock times live only in span/wall fields so
/// the `metrics` section stays byte-identical across repeat runs.
#[allow(clippy::too_many_arguments)]
fn run_record(
    args: &Args,
    scene: &rtcore::scene::Scene,
    res: u32,
    spp: u32,
    seed: u64,
    prediction: &Prediction,
    reference: &Option<Reference>,
    registry: &obs::MetricsRegistry,
) -> minijson::Value {
    let mut rec = minijson::Map::new();
    rec.insert("schema".into(), minijson::json!(obs::RUN_SCHEMA));
    rec.insert("scene".into(), minijson::json!(scene.name()));
    rec.insert(
        "config".into(),
        minijson::json!(args.get("config").unwrap_or("mobile")),
    );
    rec.insert("res".into(), minijson::json!(res));
    rec.insert("spp".into(), minijson::json!(spp));
    rec.insert("seed".into(), minijson::json!(seed));
    rec.insert("k".into(), minijson::json!(prediction.k));
    rec.insert(
        "division".into(),
        minijson::json!(args.get("division").unwrap_or("fine")),
    );
    rec.insert(
        "dist".into(),
        minijson::json!(args.get("dist").unwrap_or("uniform")),
    );
    let mut metrics = minijson::Map::new();
    for m in Metric::ALL {
        metrics.insert(m.name().into(), minijson::json!(prediction.value(m)));
    }
    rec.insert("prediction".into(), minijson::Value::Object(metrics));
    let groups: Vec<minijson::Value> = prediction
        .groups
        .iter()
        .map(|g| {
            let mut gm = minijson::Map::new();
            gm.insert("index".into(), minijson::json!(g.index));
            gm.insert("pixels".into(), minijson::json!(g.pixels as u64));
            gm.insert("traced_fraction".into(), minijson::json!(g.traced_fraction));
            gm.insert("target_percent".into(), minijson::json!(g.target_percent));
            gm.insert("cycles".into(), minijson::json!(g.stats.cycles));
            gm.insert(
                "wall_ms".into(),
                minijson::json!(g.wall.as_secs_f64() * 1000.0),
            );
            minijson::Value::Object(gm)
        })
        .collect();
    rec.insert("groups".into(), minijson::Value::Array(groups));
    rec.insert(
        "spans".into(),
        minijson::Value::Array(prediction.spans.iter().map(ToJson::to_json).collect()),
    );
    rec.insert("metrics".into(), registry.to_json());
    if let Some(heatmap) = &prediction.heatmap {
        rec.insert("heatmap".into(), heatmap_to_json(heatmap));
    }
    if let Some(reference) = reference {
        let mut refs = minijson::Map::new();
        for m in Metric::ALL {
            refs.insert(m.name().into(), minijson::json!(m.value(&reference.stats)));
        }
        rec.insert("reference".into(), minijson::Value::Object(refs));
        rec.insert(
            "mae".into(),
            minijson::json!(prediction.mae_vs(&reference.stats)),
        );
        rec.insert(
            "speedup_concurrent".into(),
            minijson::json!(prediction.speedup_concurrent(reference)),
        );
    }
    rec.insert(
        "sim_wall_ms".into(),
        minijson::json!(prediction.sim_wall.as_secs_f64() * 1000.0),
    );
    rec.insert(
        "preprocess_wall_ms".into(),
        minijson::json!(prediction.preprocess_wall.as_secs_f64() * 1000.0),
    );
    minijson::Value::Object(rec)
}

/// Normalizes the execution-time heatmap to 0..=255 greyscale bytes for
/// the run record (and, downstream, the `zatel report --pgm` image).
fn heatmap_to_json(heatmap: &zatel::heatmap::Heatmap) -> minijson::Value {
    let max = heatmap.values().iter().copied().fold(0.0f32, f32::max);
    let values: Vec<minijson::Value> = heatmap
        .values()
        .iter()
        .map(|&v| {
            let byte = if max > 0.0 {
                ((v / max) * 255.0).round() as u64
            } else {
                0
            };
            minijson::json!(byte)
        })
        .collect();
    let mut m = minijson::Map::new();
    m.insert("width".into(), minijson::json!(heatmap.width()));
    m.insert("height".into(), minijson::json!(heatmap.height()));
    m.insert("values".into(), minijson::Value::Array(values));
    minijson::Value::Object(m)
}

fn cmd_report(args: &Args) -> Result<(), String> {
    let Some(path) = args.get("run") else {
        return cmd_report_history(args);
    };
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading run record '{path}': {e}"))?;
    let run =
        minijson::Value::parse(&text).map_err(|e| format!("parsing run record '{path}': {e}"))?;
    let report = obs::report::render(&run).map_err(|e| format!("run record '{path}': {e}"))?;
    print!("{report}");

    let history = args.get("history").unwrap_or("runs.jsonl");
    let line = obs::report::summary_line(&run)?;
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(history)
        .map_err(|e| format!("opening history '{history}': {e}"))?;
    writeln!(file, "{line}").map_err(|e| format!("appending to '{history}': {e}"))?;
    eprintln!("appended run summary to {history}");

    if let Some(pgm) = args.get("pgm") {
        let bytes = obs::report::heatmap_pgm(&run).map_err(|e| format!("--pgm: {e}"))?;
        std::fs::write(pgm, bytes).map_err(|e| format!("writing '{pgm}': {e}"))?;
        eprintln!("wrote execution-time heatmap to {pgm}");
    }
    if let Some(prom) = args.get("prom") {
        let metrics = run
            .get("metrics")
            .ok_or("--prom: run record has no 'metrics' section")?;
        let registry = obs::MetricsRegistry::from_json(metrics)
            .map_err(|e| format!("--prom: run record metrics: {e}"))?;
        std::fs::write(prom, registry.to_prometheus("zatel"))
            .map_err(|e| format!("writing '{prom}': {e}"))?;
        eprintln!("wrote Prometheus metrics to {prom}");
    }
    Ok(())
}

/// `zatel report` without `--run`: summarize the recorded run history
/// (`zatel report --run` summary lines and `zatel sweep --runs-out`
/// records share one file).
fn cmd_report_history(args: &Args) -> Result<(), String> {
    let history = args.get("history").unwrap_or("runs.jsonl");
    let runs =
        zatel::sweep::load_history(std::path::Path::new(history)).map_err(|e| e.to_string())?;
    println!("{} recorded runs in {history}", runs.len());
    println!(
        "{:<8} {:<24} {:>4} {:>14} {:>8} {:>10}",
        "scene", "point", "K", "cycles", "MAE", "sim ms"
    );
    for run in &runs {
        let text = |key: &str, default: &str| -> String {
            run.get(key)
                .and_then(minijson::Value::as_str)
                .unwrap_or(default)
                .to_owned()
        };
        // Sweep records carry cycles under prediction.<metric>; predict
        // summary lines hoist them to a top-level "cycles".
        let cycles = run
            .get("prediction")
            .and_then(|p| p.get(Metric::SimCycles.name()))
            .or_else(|| run.get("cycles"))
            .and_then(minijson::Value::as_f64);
        let num = |v: Option<f64>, scale: f64, unit: &str| -> String {
            v.map_or_else(|| "-".into(), |v| format!("{:.1}{unit}", v * scale))
        };
        println!(
            "{:<8} {:<24} {:>4} {:>14} {:>8} {:>10}",
            text("scene", "?"),
            text("label", "predict"),
            run.get("k")
                .and_then(minijson::Value::as_u64)
                .map_or_else(|| "-".into(), |k| k.to_string()),
            num(cycles, 1.0, ""),
            num(run.get("mae").and_then(minijson::Value::as_f64), 100.0, "%"),
            num(
                run.get("sim_wall_ms").and_then(minijson::Value::as_f64),
                1.0,
                ""
            ),
        );
    }
    Ok(())
}

/// `zatel lint` — the workspace static-analysis gate, sharing its engine
/// (and therefore its findings, waivers and baseline semantics) with the
/// standalone `zatel-lint` binary and CI's `lint-gate` job.
fn cmd_lint(args: &Args) -> Result<(), String> {
    let root = match args.get("root") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::current_dir()
            .ok()
            .and_then(|d| zatel_lint::find_workspace_root(&d))
            .ok_or("could not locate a workspace root; pass --root")?,
    };
    let config = zatel_lint::LintConfig::zatel_workspace(&root);
    let baseline_path = args
        .get("baseline")
        .map_or_else(|| root.join("lint-baseline.json"), std::path::PathBuf::from);

    let baseline = if args.flag("no-baseline") || args.flag("write-baseline") {
        zatel_lint::Baseline::empty()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => zatel_lint::Baseline::parse(&text)
                .map_err(|e| format!("{}: {e}", baseline_path.display()))?,
            Err(_) => zatel_lint::Baseline::empty(),
        }
    };

    let report = zatel_lint::run(&config, &baseline).map_err(|e| e.to_string())?;

    if args.flag("write-baseline") {
        let doc = zatel_lint::Baseline::from_findings(&report.findings)
            .to_json()
            .pretty()
            + "\n";
        std::fs::write(&baseline_path, doc)
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        eprintln!(
            "wrote {} ({} finding(s) recorded)",
            baseline_path.display(),
            report.findings.len()
        );
        return Ok(());
    }

    if args.flag("json") {
        println!("{}", report.to_json().pretty());
    } else if !args.flag("quiet") {
        for finding in &report.findings {
            println!("{}", finding.render());
        }
    }
    eprintln!(
        "zatel-lint: {} finding(s), {} waived, {} baselined, {} files scanned",
        report.findings.len(),
        report.waived,
        report.baselined,
        report.files_scanned
    );

    if args.flag("check") && !report.findings.is_empty() {
        return Err(format!(
            "lint --check failed with {} finding(s)",
            report.findings.len()
        ));
    }
    Ok(())
}

fn cmd_heatmap(args: &Args) -> Result<(), String> {
    let (_, scene, seed) = scene_from(args)?;
    let res = args.get_parsed("res", 256u32).map_err(|e| e.to_string())?;
    let spp = args.get_parsed("spp", 2u32).map_err(|e| e.to_string())?;
    let out = std::path::PathBuf::from(args.get("out").unwrap_or("target/heatmaps"));
    std::fs::create_dir_all(&out).map_err(|e| format!("creating '{}': {e}", out.display()))?;
    let trace = TraceConfig {
        samples_per_pixel: spp,
        max_bounces: 4,
        seed,
    };
    let heatmap = zatel::heatmap::Heatmap::profile(&scene, res, res, &trace);
    let quantized = zatel::quantize::QuantizedHeatmap::quantize(&heatmap, 8, seed);
    heatmap
        .to_image()
        .save_ppm(out.join("heatmap.ppm"))
        .map_err(|e| e.to_string())?;
    quantized
        .to_image()
        .save_ppm(out.join("heatmap_quantized.ppm"))
        .map_err(|e| e.to_string())?;
    println!(
        "wrote {}/heatmap.ppm and heatmap_quantized.ppm ({} colours, mean temperature {:.3})",
        out.display(),
        quantized.cluster_count(),
        heatmap.mean_temperature()
    );
    Ok(())
}
