//! `zatel` — command-line front end for the Zatel prediction pipeline.
//!
//! ```text
//! zatel scenes
//! zatel configs
//! zatel predict --scene PARK --config mobile --res 192 [--reference]
//!               [--percent 0.4] [--cap 0.1] [--k 4 | --no-downscale]
//!               [--division fine|coarse] [--dist uniform|lintmp|exptmp]
//!               [--regression] [--json] [--seed 42] [--spp 2]
//!               [--trace-out trace.json] [--run-out run.json]
//! zatel report --run run.json [--history runs.jsonl] [--pgm heatmap.pgm]
//!              [--prom metrics.prom]
//! zatel heatmap --scene WKND --res 256 --out target/heatmaps
//! ```
//!
//! All progress and diagnostic output goes to **stderr**; stdout carries
//! only the result (tables, or JSON with `--json`), so piping into tools
//! is always safe.

mod args;

use std::process::ExitCode;

use args::Args;
use gpusim::{GpuConfig, Metric};
use minijson::{FromJson, ToJson};
use obs::ObserveOptions;
use rtcore::scenes::SceneId;
use rtcore::tracer::TraceConfig;
use zatel::{Distribution, DivisionMethod, DownscaleMode, Prediction, Reference, Zatel};

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        print_help();
        return ExitCode::SUCCESS;
    }
    match run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: Vec<String>) -> Result<(), String> {
    let args = Args::parse(argv).map_err(|e| e.to_string())?;
    match args.command.as_str() {
        "scenes" => cmd_scenes(),
        "configs" => cmd_configs(),
        "predict" => cmd_predict(&args),
        "report" => cmd_report(&args),
        "heatmap" => cmd_heatmap(&args),
        other => Err(format!("unknown subcommand '{other}'; try 'zatel help'")),
    }
}

fn print_help() {
    println!(
        "zatel — sample complexity-aware scale-model simulation for ray tracing\n\
         \n\
         USAGE:\n  zatel <scenes|configs|predict|report|heatmap|help> [options]\n\
         \n\
         predict options:\n\
           --scene NAME        benchmark scene (default PARK; see 'zatel scenes')\n\
           --config NAME|FILE  mobile | rtx2060 | path to a GpuConfig JSON (default mobile)\n\
           --res N             square image resolution (default 128)\n\
           --spp N             samples per pixel (default 2)\n\
           --seed N            master seed (default 42)\n\
           --percent F         fixed traced fraction in (0,1] instead of Eq.(1)\n\
           --cap F             upper bound applied after Eq.(1)\n\
           --k N               explicit downscale factor (default: gcd rule)\n\
           --no-downscale      single group on the full GPU\n\
           --division KIND     fine | coarse (default fine)\n\
           --dist KIND         uniform | lintmp | exptmp (default uniform)\n\
           --regression        extrapolate via 20/30/40%% exponential regression\n\
           --reference         also run the full simulation and report errors\n\
           --json              emit machine-readable JSON instead of tables\n\
           --jobs N            worker threads for group simulation (default: host cores)\n\
           --progress          per-group progress lines + engine trace counters (stderr)\n\
           --trace-out FILE    write a Perfetto/Chrome-trace JSON timeline of the run\n\
           --run-out FILE      persist a zatel-run-v1 record for 'zatel report'\n\
         \n\
         report options:\n\
           --run FILE          run record written by 'zatel predict --run-out'\n\
           --history FILE      append a one-line summary here (default runs.jsonl)\n\
           --pgm FILE          write the execution-time heatmap as a binary PGM\n\
           --prom FILE         write the metrics snapshot in Prometheus text format\n\
         \n\
         heatmap options:\n\
           --scene NAME --res N --out DIR   write heatmap/quantized PPM images"
    );
}

fn cmd_scenes() -> Result<(), String> {
    println!("{:<8} {:>10}  characteristics", "scene", "primitives");
    for id in SceneId::ALL {
        let scene = id.build(42);
        let tag = match id {
            SceneId::Park => "heaviest path-tracing load (evaluation headline scene)",
            SceneId::Ship => "coldest heatmap; mostly sky and water",
            SceneId::Wknd => "warm/cold split between cabin and meadow",
            SceneId::Bunny => "uniformly warm; dense fractal figure",
            SceneId::Sprng => "two objects; rays terminate early (underutilized GPU)",
            SceneId::Chsnt => "organic clutter around a single tree",
            SceneId::Spnza => "enclosed colonnade architecture",
            SceneId::Bath => "longest running; mirrors and glass interior",
        };
        println!("{:<8} {:>10}  {tag}", id.name(), scene.primitive_count());
    }
    Ok(())
}

fn cmd_configs() -> Result<(), String> {
    for config in [GpuConfig::mobile_soc(), GpuConfig::rtx_2060()] {
        println!("{}", config.to_json().pretty());
    }
    Ok(())
}

fn load_config(spec: &str) -> Result<GpuConfig, String> {
    match spec.to_ascii_lowercase().as_str() {
        "mobile" | "mobile_soc" | "mobile-soc" => Ok(GpuConfig::mobile_soc()),
        "rtx2060" | "rtx-2060" | "rtx_2060" | "turing" => Ok(GpuConfig::rtx_2060()),
        _ => {
            let text = std::fs::read_to_string(spec)
                .map_err(|e| format!("reading config file '{spec}': {e}"))?;
            let value = minijson::Value::parse(&text)
                .map_err(|e| format!("parsing config file '{spec}': {e}"))?;
            let config = GpuConfig::from_json(&value)
                .map_err(|e| format!("parsing config file '{spec}': {e}"))?;
            config
                .validate()
                .map_err(|e| format!("config file '{spec}': {e}"))?;
            Ok(config)
        }
    }
}

fn scene_from(args: &Args) -> Result<(SceneId, rtcore::scene::Scene, u64), String> {
    let seed = args.get_parsed("seed", 42u64).map_err(|e| e.to_string())?;
    let name = args.get("scene").unwrap_or("PARK");
    let id = SceneId::from_name(name)
        .ok_or_else(|| format!("unknown scene '{name}'; see 'zatel scenes'"))?;
    let scene = id.build(seed);
    Ok((id, scene, seed))
}

/// Simulated-cycle width of one `--progress` CPI-stack slice.
const PROGRESS_SLICE_CYCLES: u64 = 100_000;

fn cmd_predict(args: &Args) -> Result<(), String> {
    let (_, scene, seed) = scene_from(args)?;
    let config = load_config(args.get("config").unwrap_or("mobile"))?;
    let res = args.get_parsed("res", 128u32).map_err(|e| e.to_string())?;
    let spp = args.get_parsed("spp", 2u32).map_err(|e| e.to_string())?;
    let trace = TraceConfig {
        samples_per_pixel: spp,
        max_bounces: 4,
        seed,
    };

    let mut zatel = Zatel::new(&scene, config, res, res, trace);
    let opts = zatel.options_mut();
    if args.flag("no-downscale") {
        opts.downscale = DownscaleMode::NoDownscale;
    } else if let Some(k) = args.get("k") {
        let k: u32 = k
            .parse()
            .map_err(|_| format!("--k value '{k}' is not a number"))?;
        opts.downscale = DownscaleMode::Factor(k);
    }
    match args.get("division").unwrap_or("fine") {
        "fine" => opts.division = DivisionMethod::default_fine(),
        "coarse" => opts.division = DivisionMethod::Coarse,
        other => return Err(format!("unknown division '{other}' (fine|coarse)")),
    }
    match args.get("dist").unwrap_or("uniform") {
        "uniform" => opts.selection.distribution = Distribution::Uniform,
        "lintmp" => opts.selection.distribution = Distribution::LinTmp,
        "exptmp" => opts.selection.distribution = Distribution::ExpTmp,
        other => {
            return Err(format!(
                "unknown distribution '{other}' (uniform|lintmp|exptmp)"
            ))
        }
    }
    if let Some(p) = args.get("percent") {
        let p: f64 = p
            .parse()
            .map_err(|_| format!("--percent '{p}' is not a number"))?;
        opts.selection.percent_override = Some(p);
    }
    if let Some(c) = args.get("cap") {
        let c: f64 = c
            .parse()
            .map_err(|_| format!("--cap '{c}' is not a number"))?;
        opts.selection.percent_cap = Some(c);
    }
    if let Some(j) = args.get("jobs") {
        let j: usize = j
            .parse()
            .map_err(|_| format!("--jobs value '{j}' is not a number"))?;
        if j == 0 {
            return Err("--jobs must be at least 1".into());
        }
        opts.jobs = Some(j);
    }
    let progress = args.flag("progress");
    if progress {
        opts.trace_slice_cycles = Some(PROGRESS_SLICE_CYCLES);
    }
    let trace_out = args.get("trace-out");
    let run_out = args.get("run-out");
    let observing = trace_out.is_some() || run_out.is_some();
    if observing {
        opts.observe = Some(ObserveOptions {
            timeline: trace_out.is_some(),
            ..ObserveOptions::default()
        });
    }

    let mut prediction = if args.flag("regression") {
        zatel
            .run_with_regression([0.2, 0.3, 0.4])
            .map_err(|e| e.to_string())?
    } else {
        zatel.run().map_err(|e| e.to_string())?
    };

    let reference = args.flag("reference").then(|| zatel.run_reference());

    if progress {
        for g in &prediction.groups {
            eprint!(
                "  group {}/{}: {} px, traced {:>3.0}%, {} cycles, {:.3}s",
                g.index + 1,
                prediction.groups.len(),
                g.pixels,
                100.0 * g.traced_fraction,
                g.stats.cycles,
                g.wall.as_secs_f64(),
            );
            if let Some(trace) = &g.trace {
                let c = trace.counters();
                eprint!(
                    " | {} phases over {} slices, cpi c/m/r {}/{}/{}",
                    c.phases(),
                    trace.slices().len(),
                    c.compute_phases,
                    c.memory_phases,
                    c.rt_phases,
                );
            }
            eprintln!();
        }
        eprintln!(
            "  simulation wall {:.3}s",
            prediction.sim_wall.as_secs_f64()
        );
    }

    // Fold per-group observability into one registry + one trace, in
    // group order so repeat runs with the same seed are byte-identical.
    let mut registry = obs::MetricsRegistry::new();
    let mut timelines = Vec::new();
    if observing {
        for g in &mut prediction.groups {
            if let Some(o) = g.obs.as_mut() {
                o.export(&mut registry);
                if let Some(t) = o.take_timeline() {
                    timelines.push(t);
                }
            }
        }
        registry.gauge_set("k", f64::from(prediction.k));
        registry.gauge_set("groups", prediction.groups.len() as f64);
        registry.gauge_set(
            "traced_fraction_mean",
            prediction
                .groups
                .iter()
                .map(|g| g.traced_fraction)
                .sum::<f64>()
                / prediction.groups.len().max(1) as f64,
        );
    }
    if let Some(path) = trace_out {
        let trace = obs::merge_trace(std::mem::take(&mut timelines));
        let events = obs::validate_trace(&trace)
            .map_err(|e| format!("internal: generated trace is malformed: {e}"))?;
        std::fs::write(path, trace.to_string())
            .map_err(|e| format!("writing trace '{path}': {e}"))?;
        eprintln!("wrote {events} trace events to {path}");
    }
    if let Some(path) = run_out {
        let record = run_record(
            args,
            &scene,
            res,
            spp,
            seed,
            &prediction,
            &reference,
            &registry,
        );
        std::fs::write(path, record.pretty())
            .map_err(|e| format!("writing run record '{path}': {e}"))?;
        eprintln!("wrote run record to {path} (render with 'zatel report --run {path}')");
    }

    if args.flag("json") {
        let mut out = minijson::Map::new();
        out.insert("scene".into(), minijson::json!(scene.name()));
        out.insert("k".into(), minijson::json!(prediction.k));
        let mut metrics = minijson::Map::new();
        for m in Metric::ALL {
            metrics.insert(m.name().into(), minijson::json!(prediction.value(m)));
        }
        out.insert("prediction".into(), minijson::Value::Object(metrics));
        out.insert(
            "sim_wall_ms".into(),
            minijson::json!(prediction.sim_wall.as_secs_f64() * 1000.0),
        );
        let groups: Vec<minijson::Value> = prediction
            .groups
            .iter()
            .map(|g| {
                let mut gm = minijson::Map::new();
                gm.insert("index".into(), minijson::json!(g.index));
                gm.insert("pixels".into(), minijson::json!(g.pixels as u64));
                gm.insert("traced_fraction".into(), minijson::json!(g.traced_fraction));
                gm.insert("cycles".into(), minijson::json!(g.stats.cycles));
                gm.insert(
                    "wall_ms".into(),
                    minijson::json!(g.wall.as_secs_f64() * 1000.0),
                );
                if let Some(trace) = &g.trace {
                    gm.insert("trace".into(), trace.to_json());
                }
                minijson::Value::Object(gm)
            })
            .collect();
        out.insert("groups".into(), minijson::Value::Array(groups));
        out.insert(
            "spans".into(),
            minijson::Value::Array(prediction.spans.iter().map(ToJson::to_json).collect()),
        );
        if observing {
            out.insert("metrics".into(), registry.to_json());
        }
        if let Some(reference) = &reference {
            let mut refs = minijson::Map::new();
            for m in Metric::ALL {
                refs.insert(m.name().into(), minijson::json!(m.value(&reference.stats)));
            }
            out.insert("reference".into(), minijson::Value::Object(refs));
            out.insert(
                "mae".into(),
                minijson::json!(prediction.mae_vs(&reference.stats)),
            );
            out.insert(
                "speedup_concurrent".into(),
                minijson::json!(prediction.speedup_concurrent(reference)),
            );
        }
        println!("{}", minijson::Value::Object(out).pretty());
        return Ok(());
    }

    println!(
        "{} at {res}x{res}, K = {}, {} groups, traced {:.0}% of pixels",
        scene.name(),
        prediction.k,
        prediction.groups.len(),
        100.0
            * prediction
                .groups
                .iter()
                .map(|g| g.traced_fraction)
                .sum::<f64>()
            / prediction.groups.len() as f64
    );
    match &reference {
        Some(reference) => {
            println!(
                "{:<22} {:>14} {:>14} {:>8}",
                "metric", "Zatel", "reference", "error"
            );
            for (m, err) in prediction.errors_vs(&reference.stats) {
                println!(
                    "{:<22} {:>14.4} {:>14.4} {:>7.1}%",
                    m.name(),
                    prediction.value(m),
                    m.value(&reference.stats),
                    100.0 * err
                );
            }
            println!(
                "MAE = {:.1}%   speedup (1 core/group) = {:.1}x",
                100.0 * prediction.mae_vs(&reference.stats),
                prediction.speedup_concurrent(reference)
            );
            let stack = reference.stats.cpi_stack();
            println!(
                "reference CPI stack: {}",
                stack
                    .iter()
                    .map(|(n, v)| format!("{n} {:.0}%", 100.0 * v))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        None => {
            println!("{:<22} {:>14}", "metric", "Zatel");
            for m in Metric::ALL {
                println!("{:<22} {:>14.4}", m.name(), prediction.value(m));
            }
            println!("(add --reference to compare against the full simulation)");
        }
    }
    Ok(())
}

/// Builds the `zatel-run-v1` record persisted by `--run-out` and consumed
/// by `zatel report`. Wall-clock times live only in span/wall fields so
/// the `metrics` section stays byte-identical across repeat runs.
#[allow(clippy::too_many_arguments)]
fn run_record(
    args: &Args,
    scene: &rtcore::scene::Scene,
    res: u32,
    spp: u32,
    seed: u64,
    prediction: &Prediction,
    reference: &Option<Reference>,
    registry: &obs::MetricsRegistry,
) -> minijson::Value {
    let mut rec = minijson::Map::new();
    rec.insert("schema".into(), minijson::json!(obs::RUN_SCHEMA));
    rec.insert("scene".into(), minijson::json!(scene.name()));
    rec.insert(
        "config".into(),
        minijson::json!(args.get("config").unwrap_or("mobile")),
    );
    rec.insert("res".into(), minijson::json!(res));
    rec.insert("spp".into(), minijson::json!(spp));
    rec.insert("seed".into(), minijson::json!(seed));
    rec.insert("k".into(), minijson::json!(prediction.k));
    rec.insert(
        "division".into(),
        minijson::json!(args.get("division").unwrap_or("fine")),
    );
    rec.insert(
        "dist".into(),
        minijson::json!(args.get("dist").unwrap_or("uniform")),
    );
    let mut metrics = minijson::Map::new();
    for m in Metric::ALL {
        metrics.insert(m.name().into(), minijson::json!(prediction.value(m)));
    }
    rec.insert("prediction".into(), minijson::Value::Object(metrics));
    let groups: Vec<minijson::Value> = prediction
        .groups
        .iter()
        .map(|g| {
            let mut gm = minijson::Map::new();
            gm.insert("index".into(), minijson::json!(g.index));
            gm.insert("pixels".into(), minijson::json!(g.pixels as u64));
            gm.insert("traced_fraction".into(), minijson::json!(g.traced_fraction));
            gm.insert("target_percent".into(), minijson::json!(g.target_percent));
            gm.insert("cycles".into(), minijson::json!(g.stats.cycles));
            gm.insert(
                "wall_ms".into(),
                minijson::json!(g.wall.as_secs_f64() * 1000.0),
            );
            minijson::Value::Object(gm)
        })
        .collect();
    rec.insert("groups".into(), minijson::Value::Array(groups));
    rec.insert(
        "spans".into(),
        minijson::Value::Array(prediction.spans.iter().map(ToJson::to_json).collect()),
    );
    rec.insert("metrics".into(), registry.to_json());
    if let Some(heatmap) = &prediction.heatmap {
        rec.insert("heatmap".into(), heatmap_to_json(heatmap));
    }
    if let Some(reference) = reference {
        let mut refs = minijson::Map::new();
        for m in Metric::ALL {
            refs.insert(m.name().into(), minijson::json!(m.value(&reference.stats)));
        }
        rec.insert("reference".into(), minijson::Value::Object(refs));
        rec.insert(
            "mae".into(),
            minijson::json!(prediction.mae_vs(&reference.stats)),
        );
        rec.insert(
            "speedup_concurrent".into(),
            minijson::json!(prediction.speedup_concurrent(reference)),
        );
    }
    rec.insert(
        "sim_wall_ms".into(),
        minijson::json!(prediction.sim_wall.as_secs_f64() * 1000.0),
    );
    rec.insert(
        "preprocess_wall_ms".into(),
        minijson::json!(prediction.preprocess_wall.as_secs_f64() * 1000.0),
    );
    minijson::Value::Object(rec)
}

/// Normalizes the execution-time heatmap to 0..=255 greyscale bytes for
/// the run record (and, downstream, the `zatel report --pgm` image).
fn heatmap_to_json(heatmap: &zatel::heatmap::Heatmap) -> minijson::Value {
    let max = heatmap.values().iter().copied().fold(0.0f32, f32::max);
    let values: Vec<minijson::Value> = heatmap
        .values()
        .iter()
        .map(|&v| {
            let byte = if max > 0.0 {
                ((v / max) * 255.0).round() as u64
            } else {
                0
            };
            minijson::json!(byte)
        })
        .collect();
    let mut m = minijson::Map::new();
    m.insert("width".into(), minijson::json!(heatmap.width()));
    m.insert("height".into(), minijson::json!(heatmap.height()));
    m.insert("values".into(), minijson::Value::Array(values));
    minijson::Value::Object(m)
}

fn cmd_report(args: &Args) -> Result<(), String> {
    let path = args
        .get("run")
        .ok_or("report needs --run <run.json> (written by 'zatel predict --run-out')")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading run record '{path}': {e}"))?;
    let run =
        minijson::Value::parse(&text).map_err(|e| format!("parsing run record '{path}': {e}"))?;
    let report = obs::report::render(&run).map_err(|e| format!("run record '{path}': {e}"))?;
    print!("{report}");

    let history = args.get("history").unwrap_or("runs.jsonl");
    let line = obs::report::summary_line(&run)?;
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(history)
        .map_err(|e| format!("opening history '{history}': {e}"))?;
    writeln!(file, "{line}").map_err(|e| format!("appending to '{history}': {e}"))?;
    eprintln!("appended run summary to {history}");

    if let Some(pgm) = args.get("pgm") {
        let bytes = obs::report::heatmap_pgm(&run).map_err(|e| format!("--pgm: {e}"))?;
        std::fs::write(pgm, bytes).map_err(|e| format!("writing '{pgm}': {e}"))?;
        eprintln!("wrote execution-time heatmap to {pgm}");
    }
    if let Some(prom) = args.get("prom") {
        let metrics = run
            .get("metrics")
            .ok_or("--prom: run record has no 'metrics' section")?;
        let registry = obs::MetricsRegistry::from_json(metrics)
            .map_err(|e| format!("--prom: run record metrics: {e}"))?;
        std::fs::write(prom, registry.to_prometheus("zatel"))
            .map_err(|e| format!("writing '{prom}': {e}"))?;
        eprintln!("wrote Prometheus metrics to {prom}");
    }
    Ok(())
}

fn cmd_heatmap(args: &Args) -> Result<(), String> {
    let (_, scene, seed) = scene_from(args)?;
    let res = args.get_parsed("res", 256u32).map_err(|e| e.to_string())?;
    let spp = args.get_parsed("spp", 2u32).map_err(|e| e.to_string())?;
    let out = std::path::PathBuf::from(args.get("out").unwrap_or("target/heatmaps"));
    std::fs::create_dir_all(&out).map_err(|e| format!("creating '{}': {e}", out.display()))?;
    let trace = TraceConfig {
        samples_per_pixel: spp,
        max_bounces: 4,
        seed,
    };
    let heatmap = zatel::heatmap::Heatmap::profile(&scene, res, res, &trace);
    let quantized = zatel::quantize::QuantizedHeatmap::quantize(&heatmap, 8, seed);
    heatmap
        .to_image()
        .save_ppm(out.join("heatmap.ppm"))
        .map_err(|e| e.to_string())?;
    quantized
        .to_image()
        .save_ppm(out.join("heatmap_quantized.ppm"))
        .map_err(|e| e.to_string())?;
    println!(
        "wrote {}/heatmap.ppm and heatmap_quantized.ppm ({} colours, mean temperature {:.3})",
        out.display(),
        quantized.cluster_count(),
        heatmap.mean_temperature()
    );
    Ok(())
}
