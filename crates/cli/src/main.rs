//! `zatel` — command-line front end for the Zatel prediction pipeline.
//!
//! ```text
//! zatel scenes
//! zatel configs
//! zatel predict --scene PARK --config mobile --res 192 [--reference]
//!               [--percent 0.4] [--cap 0.1] [--k 4 | --no-downscale]
//!               [--division fine|coarse] [--dist uniform|lintmp|exptmp]
//!               [--regression] [--json] [--seed 42] [--spp 2]
//!               [--trace-out trace.json] [--run-out run.json]
//!               [--request-id ID] [--log-out FILE|-]
//! zatel sweep --scene PARK --config mobile --ks 1,2,4 --percents 0.1,0.3,0.6
//!             [--spec spec.json] [--cache-dir DIR] [--runs-out runs.jsonl]
//!             [--reference] [--json]
//! zatel serve [--addr 127.0.0.1:7878] [--workers 2] [--queue 64]
//!             [--sim-jobs N] [--deadline-ms N] [--cache-dir DIR]
//!             [--cache-budget-mb N] [--no-dedup] [--log-out FILE|-]
//! zatel loadgen --record trace.jsonl [--requests 32] [--unique 4]
//!               [--scenes SPRNG,PARK] [--res 32] [--spp 1] [--qps 50]
//! zatel loadgen --replay trace.jsonl --url http://host:7878
//!               [--concurrency 4] [--qps N] [--bench-out FILE]
//! zatel predict --url http://host:7878 ...   # same output, computed remotely
//! zatel sweep --url http://host:7878 ...
//! zatel report --run run.json [--history runs.jsonl] [--pgm heatmap.pgm]
//!              [--prom metrics.prom]
//! zatel report [--history runs.jsonl]      # summarize recorded history
//! zatel heatmap --scene WKND --res 256 --out target/heatmaps
//! zatel lint [--check] [--json] [--root DIR] [--baseline FILE]
//!            [--no-baseline] [--write-baseline] [--quiet]
//! ```
//!
//! All progress and diagnostic output goes to **stderr**; stdout carries
//! only the result (tables, or JSON with `--json`), so piping into tools
//! is always safe.

mod args;

use std::process::ExitCode;

use args::Args;
use gpusim::{GpuConfig, Metric};
use minijson::{FromJson, ToJson};
use obs::ObserveOptions;
use rtcore::scenes::SceneId;
use rtcore::tracer::TraceConfig;
use zatel::{Distribution, DivisionMethod, DownscaleMode, Prediction, Reference};
use zatel_proto::{ConfigRef, PredictRequest, PredictResponse, SweepRequest, SweepResponse};
use zatel_serve::server::{ServeConfig, Server};
use zatel_serve::HttpClient;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        print_help();
        return ExitCode::SUCCESS;
    }
    match run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: Vec<String>) -> Result<(), String> {
    let args = Args::parse(argv).map_err(|e| e.to_string())?;
    match args.command.as_str() {
        "scenes" => cmd_scenes(),
        "configs" => cmd_configs(),
        "predict" => cmd_predict(&args),
        "sweep" => cmd_sweep(&args),
        "serve" => cmd_serve(&args),
        "loadgen" => cmd_loadgen(&args),
        "report" => cmd_report(&args),
        "heatmap" => cmd_heatmap(&args),
        "lint" => cmd_lint(&args),
        other => Err(format!("unknown subcommand '{other}'; try 'zatel help'")),
    }
}

fn print_help() {
    println!(
        "zatel — sample complexity-aware scale-model simulation for ray tracing\n\
         \n\
         USAGE:\n  zatel <scenes|configs|predict|sweep|serve|loadgen|report|heatmap|lint|help> [options]\n\
         \n\
         predict options:\n\
           --scene NAME        benchmark scene (default PARK; see 'zatel scenes')\n\
           --config NAME|FILE  mobile | rtx2060 | path to a GpuConfig JSON (default mobile)\n\
           --res N             square image resolution (default 128)\n\
           --spp N             samples per pixel (default 2)\n\
           --seed N            master seed (default 42)\n\
           --percent F         fixed traced fraction in (0,1] instead of Eq.(1)\n\
           --cap F             upper bound applied after Eq.(1)\n\
           --k N               explicit downscale factor (default: gcd rule)\n\
           --no-downscale      single group on the full GPU\n\
           --division KIND     fine | coarse (default fine)\n\
           --dist KIND         uniform | lintmp | exptmp (default uniform)\n\
           --regression        extrapolate via 20/30/40%% exponential regression\n\
           --reference         also run the full simulation and report errors\n\
           --json              emit machine-readable JSON instead of tables\n\
           --jobs N            worker threads for group simulation (default: host cores)\n\
           --sim-threads N     engine threads inside each group simulation;\n\
                               results are bit-identical for every N (default:\n\
                               ZATEL_SIM_THREADS, else 1 = serial engine)\n\
           --timing-threads N  memory-partition timing threads inside each\n\
                               simulation; composes with --sim-threads and is\n\
                               bit-identical for every N (default:\n\
                               ZATEL_TIMING_THREADS, else 1 = inline timing)\n\
           --progress          per-group progress lines + engine trace counters (stderr)\n\
           --trace-out FILE    write a Perfetto/Chrome-trace JSON timeline of the run\n\
           --run-out FILE      persist a zatel-run-v1 record for 'zatel report'\n\
           --request-id ID     tag the run with a caller-chosen request ID\n\
                               (default: a generated req-... ID); with --url the\n\
                               ID travels as the x-zatel-request-id header\n\
           --log-out DEST      emit one zatel-log-v1 JSONL line for the run to\n\
                               DEST ('-' or 'stderr' for stderr, else a file)\n\
           --url URL           send the request to a 'zatel serve' instance at\n\
                               http://host:port instead of running locally; the\n\
                               output is identical to local mode\n\
         \n\
         sweep options (scene/config/res/spp/seed/division/dist/jobs as for predict):\n\
           --ks LIST           comma-separated downscale factors, e.g. 1,2,4\n\
           --percents LIST     comma-separated traced fractions, e.g. 0.1,0.3,0.6\n\
           --spec FILE         sweep-spec JSON instead of the --ks/--percents matrix\n\
           --cache-dir DIR     persist stage artifacts on disk (warm reruns skip\n\
                               heatmap profiling and quantization)\n\
           --runs-out FILE     append one zatel-sweep-v1 JSON line per point\n\
           --reference         also run the full simulation and report errors\n\
           --json              emit machine-readable JSON instead of tables\n\
           --url URL           run the sweep on a 'zatel serve' instance\n\
         \n\
         serve options (long-running prediction service; see DESIGN.md):\n\
           --addr HOST:PORT    listen address (default 127.0.0.1:7878; port 0\n\
                               picks an ephemeral port, logged on stderr)\n\
           --workers N         worker shards; requests route to shards by a\n\
                               scene+config affinity hash, each shard owns a\n\
                               private memory cache tier (default 2)\n\
           --queue N           admission queue depth; beyond it requests are\n\
                               refused with 429 + a computed Retry-After\n\
                               (default 64)\n\
           --no-dedup          disable single-flight dedup of identical\n\
                               concurrent requests (responses are identical\n\
                               either way; useful for A/B load tests)\n\
           --sim-jobs N        per-request simulation thread cap, when the\n\
                               request does not set options.jobs itself\n\
           --sim-threads N     global intra-sim engine-thread budget, split\n\
                               evenly across workers (each request defaults to\n\
                               max(1, N/workers) engine threads per simulation;\n\
                               results are bit-identical for every N)\n\
           --timing-threads N  global timing-thread budget, split evenly\n\
                               across workers like --sim-threads; results\n\
                               are bit-identical for every N\n\
           --deadline-ms N     default deadline for requests that carry none;\n\
                               requests queued past it answer 504\n\
           --cache-dir DIR     persist stage artifacts on disk across restarts\n\
                               (the disk tier is shared by every shard)\n\
           --cache-budget-mb N evict least-recently-used disk-tier entries\n\
                               once the cache dir outgrows N MiB\n\
           --log-out DEST      zatel-log-v1 JSONL event log destination: one\n\
                               line per request plus a drain summary (default\n\
                               stderr; '-'/'stderr' or a file path)\n\
         \n\
         loadgen options (record/replay load against 'zatel serve'):\n\
           --record FILE       write a deterministic zatel-loadtrace-v1 JSONL\n\
                               trace (no server needed)\n\
           --requests N        trace length (default 32)\n\
           --unique N          distinct request shapes the trace cycles\n\
                               through — duplicates exercise the cache and\n\
                               single-flight paths (default 4)\n\
           --scenes LIST       comma-separated scene rotation (default SPRNG)\n\
           --res N / --spp N   recorded request size (defaults 32 / 1)\n\
           --qps F             pacing: recorded offsets are spaced 1000/F ms;\n\
                               with --replay it re-paces the trace (default 50)\n\
           --replay FILE       fire a recorded trace at --url and report\n\
                               throughput, latency percentiles and the\n\
                               server's cache/coalesce deltas from /metrics\n\
           --url URL           the 'zatel serve' instance to replay against\n\
           --concurrency N     replay client threads (default 4)\n\
           --bench-out FILE    write the zatel-bench-serve-fleet-v1 JSON report\n\
         \n\
         report options:\n\
           --run FILE          run record written by 'zatel predict --run-out';\n\
                               without --run, summarizes the recorded history\n\
           --history FILE      append a one-line summary here (default runs.jsonl)\n\
           --pgm FILE          write the execution-time heatmap as a binary PGM\n\
           --prom FILE         write the metrics snapshot in Prometheus text format\n\
         \n\
         heatmap options:\n\
           --scene NAME --res N --out DIR   write heatmap/quantized PPM images\n\
         \n\
         lint options (workspace static analysis; see DESIGN.md):\n\
           --check             exit non-zero when any active finding remains\n\
           --json              emit zatel-lint-v1 JSON diagnostics on stdout\n\
           --sarif             emit SARIF 2.1.0 diagnostics on stdout\n\
           --concmap           emit the zatel-concmap-v1 concurrency map and exit\n\
           --root DIR          workspace root (default: discovered from cwd)\n\
           --baseline FILE     baseline file (default: <root>/lint-baseline.json)\n\
           --no-baseline       ignore the baseline; show all findings\n\
           --write-baseline    snapshot current findings into the baseline\n\
           --quiet             suppress the per-finding text output"
    );
}

fn cmd_scenes() -> Result<(), String> {
    println!("{:<8} {:>10}  characteristics", "scene", "primitives");
    for id in rtcore::scenes::all() {
        let scene = id.build(42);
        println!(
            "{:<8} {:>10}  {}",
            id.name(),
            scene.primitive_count(),
            id.description()
        );
    }
    Ok(())
}

fn cmd_configs() -> Result<(), String> {
    for config in [GpuConfig::mobile_soc(), GpuConfig::rtx_2060()] {
        println!("{}", config.to_json().pretty());
    }
    Ok(())
}

/// Resolves `--config`: preset names become a [`ConfigRef::Preset`] (so
/// the wire request stays a short label); anything else is read as a
/// `GpuConfig` JSON file and inlined into the request.
fn config_ref(spec: &str) -> Result<ConfigRef, String> {
    match spec.to_ascii_lowercase().as_str() {
        "mobile" | "mobile_soc" | "mobile-soc" | "rtx2060" | "rtx-2060" | "rtx_2060" | "turing" => {
            Ok(ConfigRef::preset(spec))
        }
        _ => {
            let text = std::fs::read_to_string(spec)
                .map_err(|e| format!("reading config file '{spec}': {e}"))?;
            let value = minijson::Value::parse(&text)
                .map_err(|e| format!("parsing config file '{spec}': {e}"))?;
            let config = GpuConfig::from_json(&value)
                .map_err(|e| format!("parsing config file '{spec}': {e}"))?;
            config
                .validate()
                .map_err(|e| format!("config file '{spec}': {e}"))?;
            Ok(ConfigRef::inline(config))
        }
    }
}

fn scene_from(args: &Args) -> Result<(SceneId, rtcore::scene::Scene, u64), String> {
    let seed = args.get_parsed("seed", 42u64).map_err(|e| e.to_string())?;
    let name = args.get("scene").unwrap_or("PARK");
    let id = rtcore::scenes::by_name(name)
        .ok_or_else(|| format!("unknown scene '{name}'; see 'zatel scenes'"))?;
    let scene = id.build(seed);
    Ok((id, scene, seed))
}

/// Simulated-cycle width of one `--progress` CPI-stack slice.
const PROGRESS_SLICE_CYCLES: u64 = 100_000;

/// Applies the pipeline options shared by `predict` and `sweep`
/// (`--k`/`--no-downscale`, `--division`, `--dist`, `--percent`, `--cap`,
/// `--jobs`) onto `opts`.
fn apply_options(args: &Args, opts: &mut zatel::ZatelOptions) -> Result<(), String> {
    if args.flag("no-downscale") {
        opts.downscale = DownscaleMode::NoDownscale;
    } else if let Some(k) = args.get("k") {
        let k: u32 = k
            .parse()
            .map_err(|_| format!("--k value '{k}' is not a number"))?;
        opts.downscale = DownscaleMode::Factor(k);
    }
    match args.get("division").unwrap_or("fine") {
        "fine" => opts.division = DivisionMethod::default_fine(),
        "coarse" => opts.division = DivisionMethod::Coarse,
        other => return Err(format!("unknown division '{other}' (fine|coarse)")),
    }
    match args.get("dist").unwrap_or("uniform") {
        "uniform" => opts.selection.distribution = Distribution::Uniform,
        "lintmp" => opts.selection.distribution = Distribution::LinTmp,
        "exptmp" => opts.selection.distribution = Distribution::ExpTmp,
        other => {
            return Err(format!(
                "unknown distribution '{other}' (uniform|lintmp|exptmp)"
            ))
        }
    }
    if let Some(p) = args.get("percent") {
        let p: f64 = p
            .parse()
            .map_err(|_| format!("--percent '{p}' is not a number"))?;
        opts.selection.percent_override = Some(p);
    }
    if let Some(c) = args.get("cap") {
        let c: f64 = c
            .parse()
            .map_err(|_| format!("--cap '{c}' is not a number"))?;
        opts.selection.percent_cap = Some(c);
    }
    if let Some(j) = args.get("jobs") {
        let j: usize = j
            .parse()
            .map_err(|_| format!("--jobs value '{j}' is not a number"))?;
        if j == 0 {
            return Err("--jobs must be at least 1".into());
        }
        opts.jobs = Some(j);
    }
    if let Some(t) = args.get("sim-threads") {
        let t: usize = t
            .parse()
            .map_err(|_| format!("--sim-threads value '{t}' is not a number"))?;
        if t == 0 {
            return Err("--sim-threads must be at least 1".into());
        }
        opts.sim_threads = Some(t);
    }
    if let Some(t) = args.get("timing-threads") {
        let t: usize = t
            .parse()
            .map_err(|_| format!("--timing-threads value '{t}' is not a number"))?;
        if t == 0 {
            return Err("--timing-threads must be at least 1".into());
        }
        opts.timing_threads = Some(t);
    }
    Ok(())
}

/// Builds the wire request shared by local and `--url` prediction from
/// the command line.
fn predict_request(args: &Args) -> Result<PredictRequest, String> {
    let mut request = PredictRequest::new(
        args.get("scene").unwrap_or("PARK"),
        config_ref(args.get("config").unwrap_or("mobile"))?,
    );
    request.res = args.get_parsed("res", 128u32).map_err(|e| e.to_string())?;
    request.spp = args.get_parsed("spp", 2u32).map_err(|e| e.to_string())?;
    request.seed = args.get_parsed("seed", 42u64).map_err(|e| e.to_string())?;
    let mut options = zatel::ZatelOptions::default();
    apply_options(args, &mut options)?;
    request.options = Some(options);
    if args.flag("regression") {
        request.regression = Some([0.2, 0.3, 0.4]);
    }
    request.reference = args.flag("reference");
    Ok(request)
}

fn cmd_predict(args: &Args) -> Result<(), String> {
    let mut request = predict_request(args)?;
    let progress = args.flag("progress");
    let trace_out = args.get("trace-out");
    let run_out = args.get("run-out");
    // Every prediction is traceable: the caller's --request-id or a
    // generated req-... ID, threaded into the span sheet, the optional
    // --log-out line and the --run-out record.
    let request_id = args
        .get("request-id")
        .map(str::to_owned)
        .unwrap_or_else(obs::log::request_id);

    // `--url`: ship the request to a `zatel serve` instance. The server
    // runs the same `execute_predict` seam this process would, so the
    // rendered output is identical; the request ID travels as the
    // x-zatel-request-id header and comes back echoed.
    if let Some(url) = args.get("url") {
        if progress || trace_out.is_some() || run_out.is_some() {
            return Err(
                "--progress/--trace-out/--run-out observe the local pipeline; \
                 drop them when predicting against --url"
                    .into(),
            );
        }
        let started = std::time::Instant::now();
        let reply = HttpClient::new(url)?.post_json_with_headers(
            "/v1/predict",
            &request.to_json(),
            &[("x-zatel-request-id", &request_id)],
        )?;
        if reply.status != 200 {
            return Err(format!(
                "server answered {}: {}",
                reply.status,
                reply.body.trim()
            ));
        }
        let response = PredictResponse::from_json(&reply.json()?)
            .map_err(|e| format!("server response: {}", e.message))?;
        emit_predict_log_line(
            args,
            &request_id,
            &response,
            started.elapsed().as_secs_f64() * 1000.0,
        )?;
        return render_predict(args, &response);
    }

    let options = request.options.get_or_insert_with(Default::default);
    if progress {
        options.trace_slice_cycles = Some(PROGRESS_SLICE_CYCLES);
    }
    if trace_out.is_some() || run_out.is_some() {
        options.observe = Some(ObserveOptions {
            timeline: trace_out.is_some(),
            ..ObserveOptions::default()
        });
    }
    let cache = zatel::ArtifactCache::in_memory();
    let started = std::time::Instant::now();
    let mut output = zatel_serve::execute_predict_traced(&request, &cache, Some(&request_id))
        .map_err(|e| e.to_string())?;
    emit_predict_log_line(
        args,
        &request_id,
        &output.response,
        started.elapsed().as_secs_f64() * 1000.0,
    )?;

    if progress {
        let prediction = &output.prediction;
        for g in &prediction.groups {
            eprint!(
                "  group {}/{}: {} px, traced {:>3.0}%, {} cycles, {:.3}s",
                g.index + 1,
                prediction.groups.len(),
                g.pixels,
                100.0 * g.traced_fraction,
                g.stats.cycles,
                g.wall.as_secs_f64(),
            );
            if let Some(trace) = &g.trace {
                let c = trace.counters();
                eprint!(
                    " | {} phases over {} slices, cpi c/m/r {}/{}/{}",
                    c.phases(),
                    trace.slices().len(),
                    c.compute_phases,
                    c.memory_phases,
                    c.rt_phases,
                );
            }
            eprintln!();
        }
        eprintln!(
            "  simulation wall {:.3}s",
            prediction.sim_wall.as_secs_f64()
        );
    }

    if let Some(path) = trace_out {
        let trace = obs::merge_trace(std::mem::take(&mut output.timelines));
        let events = obs::validate_trace(&trace)
            .map_err(|e| format!("internal: generated trace is malformed: {e}"))?;
        std::fs::write(path, trace.to_string())
            .map_err(|e| format!("writing trace '{path}': {e}"))?;
        eprintln!("wrote {events} trace events to {path}");
    }
    if let Some(path) = run_out {
        let record = run_record(
            args,
            &output.response.scene,
            request.res,
            request.spp,
            request.seed,
            &output.prediction,
            &output.reference,
            &output.registry,
        );
        std::fs::write(path, record.pretty())
            .map_err(|e| format!("writing run record '{path}': {e}"))?;
        eprintln!("wrote run record to {path} (render with 'zatel report --run {path}')");
    }

    render_predict(args, &output.response)
}

/// When `--log-out` was given, appends one `zatel-log-v1` JSONL line
/// describing the completed prediction (observational wall-clock only —
/// the rendered result never depends on it).
fn emit_predict_log_line(
    args: &Args,
    request_id: &str,
    response: &PredictResponse,
    wall_ms: f64,
) -> Result<(), String> {
    let Some(dest) = args.get("log-out") else {
        return Ok(());
    };
    let logger = obs::Logger::for_destination(Some(dest), obs::LogLevel::Info)
        .map_err(|e| format!("opening --log-out '{dest}': {e}"))?;
    let cache_hits = response
        .cache
        .iter()
        .filter(|record| {
            matches!(
                record.get("outcome").and_then(minijson::Value::as_str),
                Some("memory" | "disk")
            )
        })
        .count() as u64;
    let mut fields = minijson::Map::new();
    fields.insert("request_id".into(), minijson::json!(request_id));
    fields.insert("scene".into(), minijson::json!(response.scene.as_str()));
    fields.insert("res".into(), minijson::json!(response.res));
    fields.insert("spp".into(), minijson::json!(response.spp));
    fields.insert("seed".into(), minijson::json!(response.seed));
    fields.insert("wall_ms".into(), minijson::json!(wall_ms));
    fields.insert("cache_hits".into(), minijson::json!(cache_hits));
    fields.insert(
        "cache_stages".into(),
        minijson::json!(response.cache.len() as u64),
    );
    logger.log(obs::LogLevel::Info, "predict", fields);
    Ok(())
}

/// Renders a predict response — the one renderer both the local path and
/// `--url` mode go through, so their stdout is identical.
fn render_predict(args: &Args, response: &PredictResponse) -> Result<(), String> {
    if args.flag("json") {
        println!("{}", response.to_json().pretty());
        return Ok(());
    }

    let res = response.res;
    println!(
        "{} at {res}x{res}, K = {}, {} groups, traced {:.0}% of pixels",
        response.scene,
        response.k,
        response.groups.len(),
        100.0
            * response
                .groups
                .iter()
                .map(|g| g.traced_fraction)
                .sum::<f64>()
            / response.groups.len().max(1) as f64
    );
    match &response.reference {
        Some(reference) => {
            println!(
                "{:<22} {:>14} {:>14} {:>8}",
                "metric", "Zatel", "reference", "error"
            );
            for m in Metric::ALL {
                let predicted = response.prediction.value(m);
                let expected = reference.metrics.value(m);
                println!(
                    "{:<22} {:>14.4} {:>14.4} {:>7.1}%",
                    m.name(),
                    predicted,
                    expected,
                    100.0 * zatel::metrics::abs_error(predicted, expected)
                );
            }
            println!(
                "MAE = {:.1}%   speedup (1 core/group) = {:.1}x",
                100.0 * response.mae.unwrap_or(f64::NAN),
                response.speedup_concurrent.unwrap_or(f64::NAN)
            );
            println!(
                "reference CPI stack: {}",
                reference
                    .cpi_stack
                    .iter()
                    .map(|(n, v)| format!("{n} {:.0}%", 100.0 * v))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
        None => {
            println!("{:<22} {:>14}", "metric", "Zatel");
            for m in Metric::ALL {
                println!("{:<22} {:>14.4}", m.name(), response.prediction.value(m));
            }
            println!("(add --reference to compare against the full simulation)");
        }
    }
    Ok(())
}

/// Parses a comma-separated `--ks`/`--percents` list.
fn parse_list<T: std::str::FromStr>(key: &str, raw: Option<&str>) -> Result<Vec<T>, String> {
    let Some(raw) = raw else {
        return Ok(Vec::new());
    };
    raw.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse()
                .map_err(|_| format!("--{key}: '{s}' is not a number"))
        })
        .collect()
}

/// The sweep matrix, from `--spec FILE` or the `--ks`/`--percents` axes.
fn sweep_spec(args: &Args) -> Result<zatel::SweepSpec, String> {
    if let Some(path) = args.get("spec") {
        if args.get("ks").is_some() || args.get("percents").is_some() {
            return Err("--spec replaces --ks/--percents; give one or the other".into());
        }
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("reading sweep spec '{path}': {e}"))?;
        let value = minijson::Value::parse(&text)
            .map_err(|e| format!("parsing sweep spec '{path}': {e}"))?;
        return zatel::SweepSpec::from_json(&value)
            .map_err(|e| format!("parsing sweep spec '{path}': {e}"));
    }
    let ks: Vec<u32> = parse_list("ks", args.get("ks"))?;
    let percents: Vec<f64> = parse_list("percents", args.get("percents"))?;
    if ks.is_empty() && percents.is_empty() {
        return Err(
            "sweep needs its matrix: --ks 1,2,4 and/or --percents 0.1,0.3,0.6, \
             or a --spec spec.json"
                .into(),
        );
    }
    Ok(zatel::SweepSpec::matrix(&ks, &percents))
}

/// Builds the wire request shared by local and `--url` sweeps.
fn sweep_request(args: &Args) -> Result<SweepRequest, String> {
    let mut request = SweepRequest::new(
        args.get("scene").unwrap_or("PARK"),
        config_ref(args.get("config").unwrap_or("mobile"))?,
        sweep_spec(args)?,
    );
    request.res = args.get_parsed("res", 128u32).map_err(|e| e.to_string())?;
    request.spp = args.get_parsed("spp", 2u32).map_err(|e| e.to_string())?;
    request.seed = args.get_parsed("seed", 42u64).map_err(|e| e.to_string())?;
    let mut options = zatel::ZatelOptions::default();
    apply_options(args, &mut options)?;
    request.options = Some(options);
    request.reference = args.flag("reference");
    Ok(request)
}

fn cmd_sweep(args: &Args) -> Result<(), String> {
    let request = sweep_request(args)?;

    let response = if let Some(url) = args.get("url") {
        if args.get("cache-dir").is_some() {
            return Err(
                "--cache-dir configures the local pipeline; with --url the server \
                 owns its cache (see 'zatel serve --cache-dir')"
                    .into(),
            );
        }
        let reply = HttpClient::new(url)?.post_json("/v1/sweep", &request.to_json())?;
        if reply.status != 200 {
            return Err(format!(
                "server answered {}: {}",
                reply.status,
                reply.body.trim()
            ));
        }
        SweepResponse::from_json(&reply.json()?)
            .map_err(|e| format!("server response: {}", e.message))?
    } else {
        let cache = match args.get("cache-dir") {
            Some(dir) => {
                std::fs::create_dir_all(dir)
                    .map_err(|e| format!("creating cache dir '{dir}': {e}"))?;
                std::sync::Arc::new(zatel::ArtifactCache::with_disk(dir))
            }
            None => std::sync::Arc::new(zatel::ArtifactCache::in_memory()),
        };
        zatel_serve::execute_sweep(&request, &cache)
            .map_err(|e| e.to_string())?
            .response
    };

    let stat = |key: &str| {
        response
            .cache_stats
            .get(key)
            .and_then(minijson::Value::as_u64)
            .unwrap_or(0)
    };
    eprintln!(
        "{} points; artifact cache: {} misses, {} memory hits, {} disk hits",
        response.points.len(),
        stat("misses"),
        stat("memory_hits"),
        stat("disk_hits")
    );

    if let Some(path) = args.get("runs-out") {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| format!("opening '{path}': {e}"))?;
        for record in &response.points {
            writeln!(file, "{record}").map_err(|e| format!("appending to '{path}': {e}"))?;
        }
        eprintln!(
            "appended {} sweep records to {path} (summarize with 'zatel report --history {path}')",
            response.points.len()
        );
    }

    render_sweep(args, &response)
}

/// Renders a sweep response — shared by the local path and `--url` mode.
fn render_sweep(args: &Args, response: &SweepResponse) -> Result<(), String> {
    if args.flag("json") {
        println!("{}", response.to_json().pretty());
        return Ok(());
    }

    let with_ref = response.points.iter().any(|p| p.get("mae").is_some());
    print!(
        "{:<24} {:>4} {:>14} {:>10}",
        "point", "K", "cycles", "sim ms"
    );
    if with_ref {
        print!(" {:>8} {:>9}", "MAE", "speedup");
    }
    println!(" {:>18}", "cache");
    for point in &response.points {
        let num = |key: &str| {
            point
                .get(key)
                .and_then(minijson::Value::as_f64)
                .unwrap_or(f64::NAN)
        };
        let (hits, total) = point
            .get("cache")
            .and_then(minijson::Value::as_array)
            .map_or((0, 0), |records| {
                let hits = records
                    .iter()
                    .filter(|r| r.get("outcome").and_then(minijson::Value::as_str) != Some("miss"))
                    .count();
                (hits, records.len())
            });
        print!(
            "{:<24} {:>4} {:>14.0} {:>10.2}",
            point
                .get("label")
                .and_then(minijson::Value::as_str)
                .unwrap_or("?"),
            point
                .get("k")
                .and_then(minijson::Value::as_u64)
                .unwrap_or(0),
            point
                .get("prediction")
                .and_then(|p| p.get(Metric::SimCycles.name()))
                .and_then(minijson::Value::as_f64)
                .unwrap_or(f64::NAN),
            num("sim_wall_ms")
        );
        if with_ref {
            print!(
                " {:>7.1}% {:>8.1}x",
                100.0 * num("mae"),
                num("speedup_concurrent")
            );
        }
        println!(" {:>12} hits/{}", hits, total);
    }
    Ok(())
}

/// `zatel serve` — boots the long-running prediction service and blocks
/// until a drain (SIGINT/SIGTERM or `POST /v1/shutdown`) completes.
fn cmd_serve(args: &Args) -> Result<(), String> {
    let mut config = ServeConfig::default();
    if let Some(addr) = args.get("addr") {
        config.addr = addr.to_owned();
    }
    config.workers = args
        .get_parsed("workers", config.workers)
        .map_err(|e| e.to_string())?;
    config.queue = args
        .get_parsed("queue", config.queue)
        .map_err(|e| e.to_string())?;
    if args.get("sim-jobs").is_some() {
        config.sim_jobs = Some(
            args.get_parsed("sim-jobs", 1usize)
                .map_err(|e| e.to_string())?,
        );
    }
    if args.get("sim-threads").is_some() {
        let budget = args
            .get_parsed("sim-threads", 1usize)
            .map_err(|e| e.to_string())?;
        if budget == 0 {
            return Err("--sim-threads must be at least 1".into());
        }
        config.sim_threads = Some(budget);
    }
    if args.get("timing-threads").is_some() {
        let budget = args
            .get_parsed("timing-threads", 1usize)
            .map_err(|e| e.to_string())?;
        if budget == 0 {
            return Err("--timing-threads must be at least 1".into());
        }
        config.timing_threads = Some(budget);
    }
    if args.get("deadline-ms").is_some() {
        config.default_deadline_ms = Some(
            args.get_parsed("deadline-ms", 0u64)
                .map_err(|e| e.to_string())?,
        );
    }
    if let Some(dir) = args.get("cache-dir") {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating cache dir '{dir}': {e}"))?;
        config.cache_dir = Some(dir.to_owned());
    }
    if args.get("cache-budget-mb").is_some() {
        let budget = args
            .get_parsed("cache-budget-mb", 0u64)
            .map_err(|e| e.to_string())?;
        if budget == 0 {
            return Err("--cache-budget-mb must be at least 1".into());
        }
        if config.cache_dir.is_none() {
            return Err("--cache-budget-mb needs --cache-dir".into());
        }
        config.cache_budget_mb = Some(budget);
    }
    config.dedup = !args.flag("no-dedup");
    if let Some(dest) = args.get("log-out") {
        config.log_out = Some(dest.to_owned());
    }

    zatel_serve::signal::install();
    let server = Server::bind(config)?;
    eprintln!(
        "zatel serve: listening on http://{} (drain with SIGINT/SIGTERM or POST /v1/shutdown)",
        server.local_addr()?
    );
    let report = server.run()?;
    eprintln!(
        "zatel serve: drained; {} request(s) admitted, {} refused at the queue, \
         {} still in flight when the drain began, {} coalesced; \
         responses {} 2xx / {} 4xx / {} 5xx, peak queue depth {}",
        report.admitted,
        report.refused,
        report.drained_in_flight,
        report.coalesced,
        report.responses_2xx,
        report.responses_4xx,
        report.responses_5xx,
        report.peak_queue_depth
    );
    Ok(())
}

/// `zatel loadgen`: record a deterministic `zatel-loadtrace-v1` trace
/// and/or replay one against a running `zatel serve` instance.
fn cmd_loadgen(args: &Args) -> Result<(), String> {
    let mut config = zatel_serve::LoadgenConfig::default();
    config.requests = args
        .get_parsed("requests", config.requests)
        .map_err(|e| e.to_string())?;
    config.unique = args
        .get_parsed("unique", config.unique)
        .map_err(|e| e.to_string())?;
    if let Some(scenes) = args.get("scenes") {
        config.scenes = scenes
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_owned)
            .collect();
    }
    config.res = args
        .get_parsed("res", config.res)
        .map_err(|e| e.to_string())?;
    config.spp = args
        .get_parsed("spp", config.spp)
        .map_err(|e| e.to_string())?;
    let qps_given = args.get("qps").is_some();
    config.qps = args
        .get_parsed("qps", config.qps)
        .map_err(|e| e.to_string())?;
    config.concurrency = args
        .get_parsed("concurrency", config.concurrency)
        .map_err(|e| e.to_string())?;

    let record = args.get("record");
    let replay = args.get("replay");
    if record.is_none() && replay.is_none() {
        return Err("loadgen needs --record FILE, --replay FILE or both".into());
    }
    if let Some(path) = record {
        let entries = zatel_serve::loadgen::build_trace(&config)?;
        zatel_serve::loadgen::write_trace(path, &entries)?;
        eprintln!(
            "zatel loadgen: recorded {} request(s) over {} scene(s) to {path}",
            entries.len(),
            config.scenes.len()
        );
    }
    let Some(path) = replay else {
        return Ok(());
    };
    let url = args
        .get("url")
        .ok_or("--replay needs --url http://host:port")?;
    let entries = zatel_serve::loadgen::read_trace(path)?;
    // Replaying what was just recorded honors the trace's own pacing
    // unless --qps explicitly re-paces it.
    let qps_override = qps_given.then_some(config.qps);
    let report = zatel_serve::loadgen::replay_trace(url, &entries, &config, qps_override)?;
    print!("{}", report.render_text());
    if let Some(out) = args.get("bench-out") {
        std::fs::write(out, format!("{}\n", report.to_json().pretty()))
            .map_err(|e| format!("writing bench report '{out}': {e}"))?;
        eprintln!("zatel loadgen: wrote bench report to {out}");
    }
    Ok(())
}

/// Builds the `zatel-run-v1` record persisted by `--run-out` and consumed
/// by `zatel report`. Wall-clock times live only in span/wall fields so
/// the `metrics` section stays byte-identical across repeat runs.
#[allow(clippy::too_many_arguments)]
fn run_record(
    args: &Args,
    scene: &str,
    res: u32,
    spp: u32,
    seed: u64,
    prediction: &Prediction,
    reference: &Option<Reference>,
    registry: &obs::MetricsRegistry,
) -> minijson::Value {
    let mut rec = minijson::Map::new();
    rec.insert("schema".into(), minijson::json!(obs::RUN_SCHEMA));
    rec.insert("scene".into(), minijson::json!(scene));
    rec.insert(
        "config".into(),
        minijson::json!(args.get("config").unwrap_or("mobile")),
    );
    rec.insert("res".into(), minijson::json!(res));
    rec.insert("spp".into(), minijson::json!(spp));
    rec.insert("seed".into(), minijson::json!(seed));
    rec.insert("k".into(), minijson::json!(prediction.k));
    rec.insert(
        "division".into(),
        minijson::json!(args.get("division").unwrap_or("fine")),
    );
    rec.insert(
        "dist".into(),
        minijson::json!(args.get("dist").unwrap_or("uniform")),
    );
    let mut metrics = minijson::Map::new();
    for m in Metric::ALL {
        metrics.insert(m.name().into(), minijson::json!(prediction.value(m)));
    }
    rec.insert("prediction".into(), minijson::Value::Object(metrics));
    let groups: Vec<minijson::Value> = prediction
        .groups
        .iter()
        .map(|g| {
            let mut gm = minijson::Map::new();
            gm.insert("index".into(), minijson::json!(g.index));
            gm.insert("pixels".into(), minijson::json!(g.pixels as u64));
            gm.insert("traced_fraction".into(), minijson::json!(g.traced_fraction));
            gm.insert("target_percent".into(), minijson::json!(g.target_percent));
            gm.insert("cycles".into(), minijson::json!(g.stats.cycles));
            gm.insert(
                "wall_ms".into(),
                minijson::json!(g.wall.as_secs_f64() * 1000.0),
            );
            minijson::Value::Object(gm)
        })
        .collect();
    rec.insert("groups".into(), minijson::Value::Array(groups));
    rec.insert(
        "spans".into(),
        minijson::Value::Array(prediction.spans.iter().map(ToJson::to_json).collect()),
    );
    rec.insert("metrics".into(), registry.to_json());
    // Observational tracing/concurrency sections, deliberately separate
    // from the deterministic "metrics" registry: the request ID and the
    // sharded engine's wall-clock telemetry vary run to run.
    if let Some(id) = &prediction.request_id {
        rec.insert("request_id".into(), minijson::json!(id.as_str()));
    }
    if let Some(telemetry) = &prediction.concurrency {
        let mut conc = obs::MetricsRegistry::new();
        obs::export_telemetry(telemetry, &mut conc);
        rec.insert("concurrency".into(), conc.to_json());
    }
    if let Some(heatmap) = &prediction.heatmap {
        rec.insert("heatmap".into(), heatmap_to_json(heatmap));
    }
    if let Some(reference) = reference {
        let mut refs = minijson::Map::new();
        for m in Metric::ALL {
            refs.insert(m.name().into(), minijson::json!(m.value(&reference.stats)));
        }
        rec.insert("reference".into(), minijson::Value::Object(refs));
        rec.insert(
            "mae".into(),
            minijson::json!(prediction.mae_vs(&reference.stats)),
        );
        rec.insert(
            "speedup_concurrent".into(),
            minijson::json!(prediction.speedup_concurrent(reference)),
        );
    }
    rec.insert(
        "sim_wall_ms".into(),
        minijson::json!(prediction.sim_wall.as_secs_f64() * 1000.0),
    );
    rec.insert(
        "preprocess_wall_ms".into(),
        minijson::json!(prediction.preprocess_wall.as_secs_f64() * 1000.0),
    );
    minijson::Value::Object(rec)
}

/// Normalizes the execution-time heatmap to 0..=255 greyscale bytes for
/// the run record (and, downstream, the `zatel report --pgm` image).
fn heatmap_to_json(heatmap: &zatel::heatmap::Heatmap) -> minijson::Value {
    let max = heatmap.values().iter().copied().fold(0.0f32, f32::max);
    let values: Vec<minijson::Value> = heatmap
        .values()
        .iter()
        .map(|&v| {
            let byte = if max > 0.0 {
                ((v / max) * 255.0).round() as u64
            } else {
                0
            };
            minijson::json!(byte)
        })
        .collect();
    let mut m = minijson::Map::new();
    m.insert("width".into(), minijson::json!(heatmap.width()));
    m.insert("height".into(), minijson::json!(heatmap.height()));
    m.insert("values".into(), minijson::Value::Array(values));
    minijson::Value::Object(m)
}

fn cmd_report(args: &Args) -> Result<(), String> {
    let Some(path) = args.get("run") else {
        return cmd_report_history(args);
    };
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("reading run record '{path}': {e}"))?;
    let run =
        minijson::Value::parse(&text).map_err(|e| format!("parsing run record '{path}': {e}"))?;
    let report = obs::report::render(&run).map_err(|e| format!("run record '{path}': {e}"))?;
    print!("{report}");

    let history = args.get("history").unwrap_or("runs.jsonl");
    let line = obs::report::summary_line(&run)?;
    use std::io::Write as _;
    let mut file = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(history)
        .map_err(|e| format!("opening history '{history}': {e}"))?;
    writeln!(file, "{line}").map_err(|e| format!("appending to '{history}': {e}"))?;
    eprintln!("appended run summary to {history}");

    if let Some(pgm) = args.get("pgm") {
        let bytes = obs::report::heatmap_pgm(&run).map_err(|e| format!("--pgm: {e}"))?;
        std::fs::write(pgm, bytes).map_err(|e| format!("writing '{pgm}': {e}"))?;
        eprintln!("wrote execution-time heatmap to {pgm}");
    }
    if let Some(prom) = args.get("prom") {
        let metrics = run
            .get("metrics")
            .ok_or("--prom: run record has no 'metrics' section")?;
        let registry = obs::MetricsRegistry::from_json(metrics)
            .map_err(|e| format!("--prom: run record metrics: {e}"))?;
        std::fs::write(prom, registry.to_prometheus("zatel"))
            .map_err(|e| format!("writing '{prom}': {e}"))?;
        eprintln!("wrote Prometheus metrics to {prom}");
    }
    Ok(())
}

/// `zatel report` without `--run`: summarize the recorded run history
/// (`zatel report --run` summary lines and `zatel sweep --runs-out`
/// records share one file).
fn cmd_report_history(args: &Args) -> Result<(), String> {
    let history = args.get("history").unwrap_or("runs.jsonl");
    let runs =
        zatel::sweep::load_history(std::path::Path::new(history)).map_err(|e| e.to_string())?;
    println!("{} recorded runs in {history}", runs.len());
    println!(
        "{:<8} {:<24} {:>4} {:>14} {:>8} {:>10}",
        "scene", "point", "K", "cycles", "MAE", "sim ms"
    );
    for run in &runs {
        let text = |key: &str, default: &str| -> String {
            run.get(key)
                .and_then(minijson::Value::as_str)
                .unwrap_or(default)
                .to_owned()
        };
        // Sweep records carry cycles under prediction.<metric>; predict
        // summary lines hoist them to a top-level "cycles".
        let cycles = run
            .get("prediction")
            .and_then(|p| p.get(Metric::SimCycles.name()))
            .or_else(|| run.get("cycles"))
            .and_then(minijson::Value::as_f64);
        let num = |v: Option<f64>, scale: f64, unit: &str| -> String {
            v.map_or_else(|| "-".into(), |v| format!("{:.1}{unit}", v * scale))
        };
        println!(
            "{:<8} {:<24} {:>4} {:>14} {:>8} {:>10}",
            text("scene", "?"),
            text("label", "predict"),
            run.get("k")
                .and_then(minijson::Value::as_u64)
                .map_or_else(|| "-".into(), |k| k.to_string()),
            num(cycles, 1.0, ""),
            num(run.get("mae").and_then(minijson::Value::as_f64), 100.0, "%"),
            num(
                run.get("sim_wall_ms").and_then(minijson::Value::as_f64),
                1.0,
                ""
            ),
        );
    }
    Ok(())
}

/// `zatel lint` — the workspace static-analysis gate, sharing its engine
/// (and therefore its findings, waivers and baseline semantics) with the
/// standalone `zatel-lint` binary and CI's `lint-gate` job.
fn cmd_lint(args: &Args) -> Result<(), String> {
    let root = match args.get("root") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::current_dir()
            .ok()
            .and_then(|d| zatel_lint::find_workspace_root(&d))
            .ok_or("could not locate a workspace root; pass --root")?,
    };
    let config = zatel_lint::LintConfig::zatel_workspace(&root);

    if args.flag("concmap") {
        let doc = zatel_lint::concmap(&config).map_err(|e| e.to_string())?;
        println!("{}", doc.pretty());
        return Ok(());
    }

    let baseline_path = args
        .get("baseline")
        .map_or_else(|| root.join("lint-baseline.json"), std::path::PathBuf::from);

    let baseline = if args.flag("no-baseline") || args.flag("write-baseline") {
        zatel_lint::Baseline::empty()
    } else {
        match std::fs::read_to_string(&baseline_path) {
            Ok(text) => zatel_lint::Baseline::parse(&text)
                .map_err(|e| format!("{}: {e}", baseline_path.display()))?,
            Err(_) => zatel_lint::Baseline::empty(),
        }
    };

    let report = zatel_lint::run(&config, &baseline).map_err(|e| e.to_string())?;

    if args.flag("write-baseline") {
        let doc = zatel_lint::Baseline::from_findings(&report.findings)
            .to_json()
            .pretty()
            + "\n";
        std::fs::write(&baseline_path, doc)
            .map_err(|e| format!("writing {}: {e}", baseline_path.display()))?;
        eprintln!(
            "wrote {} ({} finding(s) recorded)",
            baseline_path.display(),
            report.findings.len()
        );
        return Ok(());
    }

    if args.flag("sarif") {
        println!("{}", zatel_lint::sarif::to_sarif(&report).pretty());
    } else if args.flag("json") {
        println!("{}", report.to_json().pretty());
    } else if !args.flag("quiet") {
        for finding in &report.findings {
            println!("{}", finding.render());
        }
    }
    eprintln!(
        "zatel-lint: {} finding(s), {} waived, {} baselined, {} files scanned",
        report.findings.len(),
        report.waived,
        report.baselined,
        report.files_scanned
    );

    if args.flag("check") && !report.findings.is_empty() {
        return Err(format!(
            "lint --check failed with {} finding(s)",
            report.findings.len()
        ));
    }
    Ok(())
}

fn cmd_heatmap(args: &Args) -> Result<(), String> {
    let (_, scene, seed) = scene_from(args)?;
    let res = args.get_parsed("res", 256u32).map_err(|e| e.to_string())?;
    let spp = args.get_parsed("spp", 2u32).map_err(|e| e.to_string())?;
    let out = std::path::PathBuf::from(args.get("out").unwrap_or("target/heatmaps"));
    std::fs::create_dir_all(&out).map_err(|e| format!("creating '{}': {e}", out.display()))?;
    let trace = TraceConfig {
        samples_per_pixel: spp,
        max_bounces: 4,
        seed,
    };
    let heatmap = zatel::heatmap::Heatmap::profile(&scene, res, res, &trace);
    let quantized = zatel::quantize::QuantizedHeatmap::quantize(&heatmap, 8, seed);
    heatmap
        .to_image()
        .save_ppm(out.join("heatmap.ppm"))
        .map_err(|e| e.to_string())?;
    quantized
        .to_image()
        .save_ppm(out.join("heatmap_quantized.ppm"))
        .map_err(|e| e.to_string())?;
    println!(
        "wrote {}/heatmap.ppm and heatmap_quantized.ppm ({} colours, mean temperature {:.3})",
        out.display(),
        quantized.cluster_count(),
        heatmap.mean_temperature()
    );
    Ok(())
}
