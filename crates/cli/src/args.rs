//! Hand-rolled argument parsing for the `zatel` binary (kept
//! dependency-free; the grammar is small and fully unit-tested).

use std::collections::HashMap;

/// A parsed command line: subcommand, `--key value` options and flags.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    /// The subcommand (first non-flag argument).
    pub command: String,
    /// `--key value` pairs.
    options: HashMap<String, String>,
    /// Bare `--flag` switches.
    flags: Vec<String>,
}

/// Error produced when the command line cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseArgsError(pub String);

impl std::fmt::Display for ParseArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid arguments: {}", self.0)
    }
}

impl std::error::Error for ParseArgsError {}

/// Option keys that take a value; everything else with a `--` prefix is a
/// boolean flag.
const VALUE_KEYS: [&str; 44] = [
    "scene",
    "config",
    "res",
    "spp",
    "seed",
    "percent",
    "cap",
    "k",
    "division",
    "dist",
    "out",
    "jobs",
    "sim-threads",
    "timing-threads",
    "trace-out",
    "run-out",
    "run",
    "history",
    "pgm",
    "prom",
    "percents",
    "ks",
    "spec",
    "cache-dir",
    "runs-out",
    "root",
    "baseline",
    "url",
    "addr",
    "workers",
    "queue",
    "sim-jobs",
    "deadline-ms",
    "log-out",
    "request-id",
    "cache-budget-mb",
    "record",
    "replay",
    "requests",
    "unique",
    "scenes",
    "qps",
    "concurrency",
    "bench-out",
];

impl Args {
    /// Parses the given argument list (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] on a missing subcommand, a value key
    /// without a value, or repeated keys.
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, ParseArgsError> {
        let mut it = argv.into_iter().peekable();
        let command = it
            .next()
            .filter(|c| !c.starts_with("--"))
            .ok_or_else(|| ParseArgsError("expected a subcommand first".into()))?;
        let mut args = Args {
            command,
            ..Args::default()
        };
        while let Some(token) = it.next() {
            let Some(key) = token.strip_prefix("--") else {
                return Err(ParseArgsError(format!(
                    "unexpected positional argument '{token}'"
                )));
            };
            if VALUE_KEYS.contains(&key) {
                let value = it
                    .next()
                    .ok_or_else(|| ParseArgsError(format!("--{key} requires a value")))?;
                if args.options.insert(key.to_owned(), value).is_some() {
                    return Err(ParseArgsError(format!("--{key} given twice")));
                }
            } else {
                args.flags.push(key.to_owned());
            }
        }
        Ok(args)
    }

    /// Raw string value of `--key`, if present.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Whether a boolean `--flag` was given.
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// Parses `--key` as `T`, with a default when absent.
    ///
    /// # Errors
    ///
    /// Returns [`ParseArgsError`] when the value does not parse.
    pub fn get_parsed<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, ParseArgsError> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| ParseArgsError(format!("--{key} value '{v}' is not valid"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ParseArgsError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_options_and_flags() {
        let a = parse("predict --scene PARK --res 128 --reference --json").unwrap();
        assert_eq!(a.command, "predict");
        assert_eq!(a.get("scene"), Some("PARK"));
        assert_eq!(a.get_parsed("res", 0u32).unwrap(), 128);
        assert!(a.flag("reference"));
        assert!(a.flag("json"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn jobs_takes_a_value_and_progress_is_a_flag() {
        let a = parse("predict --jobs 3 --progress").unwrap();
        assert_eq!(a.get_parsed("jobs", 0usize).unwrap(), 3);
        assert!(a.flag("progress"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse("predict").unwrap();
        assert_eq!(a.get_parsed("res", 96u32).unwrap(), 96);
        assert_eq!(a.get("scene"), None);
    }

    #[test]
    fn missing_subcommand_is_error() {
        assert!(parse("").is_err());
        assert!(parse("--scene PARK").is_err());
    }

    #[test]
    fn value_key_without_value_is_error() {
        assert!(parse("predict --scene").is_err());
    }

    #[test]
    fn duplicate_key_is_error() {
        assert!(parse("predict --scene A --scene B").is_err());
    }

    #[test]
    fn bad_number_is_error() {
        let a = parse("predict --res twelve").unwrap();
        assert!(a.get_parsed("res", 0u32).is_err());
    }

    #[test]
    fn positional_after_command_is_error() {
        assert!(parse("predict PARK").is_err());
    }
}
