//! End-to-end tests of the `zatel` binary: spawn the real executable and
//! check its output and exit codes.

use std::process::Command;

fn zatel(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_zatel"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(args: &[&str]) -> String {
    let out = zatel(args);
    assert!(
        out.status.success(),
        "zatel {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn help_lists_subcommands() {
    let text = stdout(&["help"]);
    for needle in [
        "predict",
        "report",
        "heatmap",
        "scenes",
        "configs",
        "--reference",
        "--trace-out",
        "--run-out",
    ] {
        assert!(text.contains(needle), "help missing '{needle}'");
    }
}

#[test]
fn scenes_lists_all_eight() {
    let text = stdout(&["scenes"]);
    for name in [
        "PARK", "SHIP", "WKND", "BUNNY", "SPRNG", "CHSNT", "SPNZA", "BATH",
    ] {
        assert!(text.contains(name), "scenes missing {name}");
    }
}

#[test]
fn configs_emit_valid_json() {
    let text = stdout(&["configs"]);
    assert!(text.contains("Mobile SoC"));
    assert!(text.contains("RTX 2060"));
    // Two pretty-printed JSON documents, one per preset.
    let chunks: Vec<&str> = text.split("}\n{").collect();
    assert_eq!(chunks.len(), 2, "two config documents");
}

#[test]
fn predict_prints_all_metrics() {
    let text = stdout(&["predict", "--scene", "SPRNG", "--res", "32", "--spp", "1"]);
    for metric in [
        "GPU IPC",
        "GPU Sim Cycles",
        "L1D Miss Rate",
        "L2 Miss Rate",
        "RT Avg Efficiency",
        "DRAM Efficiency",
        "BW Utilization",
    ] {
        assert!(text.contains(metric), "predict missing '{metric}'");
    }
    assert!(text.contains("K = 4"), "Mobile SoC natural factor");
}

#[test]
fn predict_json_is_parseable() {
    let text = stdout(&[
        "predict",
        "--scene",
        "SPRNG",
        "--res",
        "32",
        "--spp",
        "1",
        "--json",
        "--reference",
    ]);
    let v = minijson::Value::parse(&text).expect("valid JSON");
    assert_eq!(
        v.get("scene").and_then(minijson::Value::as_str),
        Some("SPRNG")
    );
    let metric = |section: &str| {
        v.get(section)
            .and_then(|s| s.get("GPU Sim Cycles"))
            .and_then(minijson::Value::as_f64)
            .unwrap()
    };
    assert!(metric("prediction") > 0.0);
    assert!(metric("reference") > 0.0);
    assert!(v.get("mae").and_then(minijson::Value::as_f64).is_some());
    assert!(
        v.get("speedup_concurrent")
            .and_then(minijson::Value::as_f64)
            .unwrap()
            > 0.0
    );
}

#[test]
fn predict_accepts_custom_config_file() {
    let dir = std::env::temp_dir().join("zatel-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tiny.json");
    let mut config = gpusim::GpuConfig::mobile_soc();
    config.name = "Tiny".into();
    config.num_sms = 2;
    config.num_mem_partitions = 2;
    config.l2.bytes = 1024 * 1024;
    std::fs::write(&path, minijson::ToJson::to_json(&config).to_string()).unwrap();
    let text = stdout(&[
        "predict",
        "--scene",
        "SPRNG",
        "--res",
        "32",
        "--spp",
        "1",
        "--config",
        path.to_str().unwrap(),
    ]);
    assert!(
        text.contains("K = 2"),
        "gcd(2,2)=2 for the custom config: {text}"
    );
}

#[test]
fn predict_progress_prints_group_lines_on_stderr() {
    let out = zatel(&[
        "predict",
        "--scene",
        "SPRNG",
        "--res",
        "32",
        "--spp",
        "1",
        "--jobs",
        "2",
        "--progress",
    ]);
    assert!(out.status.success());
    let err = String::from_utf8(out.stderr).expect("utf8 stderr");
    assert!(err.contains("group 1/"), "per-group progress line: {err}");
    assert!(err.contains("phases over"), "trace counters shown: {err}");
    assert!(
        err.contains("simulation wall"),
        "total sim wall shown: {err}"
    );
    // Progress is diagnostic output: none of it may leak into stdout.
    let text = String::from_utf8(out.stdout).expect("utf8 stdout");
    for leaked in ["group 1/", "phases over", "simulation wall"] {
        assert!(!text.contains(leaked), "'{leaked}' leaked to stdout");
    }
}

#[test]
fn predict_json_with_progress_keeps_stdout_pure_json() {
    let out = zatel(&[
        "predict",
        "--scene",
        "SPRNG",
        "--res",
        "32",
        "--spp",
        "1",
        "--json",
        "--progress",
    ]);
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).expect("utf8 stdout");
    minijson::Value::parse(&text).expect("stdout is a single valid JSON document");
    assert!(String::from_utf8_lossy(&out.stderr).contains("group 1/"));
}

#[test]
fn predict_json_reports_group_wall_times() {
    let text = stdout(&[
        "predict",
        "--scene",
        "SPRNG",
        "--res",
        "32",
        "--spp",
        "1",
        "--json",
        "--progress",
    ]);
    let v = minijson::Value::parse(&text).expect("valid JSON");
    assert!(
        v.get("sim_wall_ms")
            .and_then(minijson::Value::as_f64)
            .unwrap()
            >= 0.0
    );
    let groups = v
        .get("groups")
        .and_then(minijson::Value::as_array)
        .expect("groups array");
    assert!(!groups.is_empty());
    for g in groups {
        assert!(g.get("wall_ms").and_then(minijson::Value::as_f64).unwrap() >= 0.0);
        assert!(g.get("cycles").and_then(minijson::Value::as_u64).unwrap() > 0);
        let counters = g
            .get("trace")
            .and_then(|t| t.get("counters"))
            .expect("trace attached");
        assert!(
            counters
                .get("warps_launched")
                .and_then(minijson::Value::as_u64)
                .unwrap()
                > 0
        );
    }
}

#[test]
fn predict_rejects_zero_jobs() {
    let out = zatel(&["predict", "--scene", "SPRNG", "--res", "32", "--jobs", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs"));
}

#[test]
fn predict_no_downscale_and_percent() {
    let text = stdout(&[
        "predict",
        "--scene",
        "SPRNG",
        "--res",
        "32",
        "--spp",
        "1",
        "--no-downscale",
        "--percent",
        "0.5",
    ]);
    assert!(text.contains("K = 1"));
    assert!(
        text.contains("traced 5") || text.contains("traced 4"),
        "≈50%: {text}"
    );
}

#[test]
fn unknown_scene_fails_cleanly() {
    let out = zatel(&["predict", "--scene", "NOPE"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown scene"), "stderr: {err}");
}

#[test]
fn unknown_subcommand_fails_cleanly() {
    let out = zatel(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn bad_config_file_fails_cleanly() {
    let out = zatel(&["predict", "--config", "/nonexistent/cfg.json"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("reading config file"));
}

#[test]
fn predict_json_includes_pipeline_spans() {
    let text = stdout(&[
        "predict", "--scene", "SPRNG", "--res", "32", "--spp", "1", "--json",
    ]);
    let v = minijson::Value::parse(&text).expect("valid JSON");
    let spans = v
        .get("spans")
        .and_then(minijson::Value::as_array)
        .expect("spans array");
    let names: Vec<&str> = spans
        .iter()
        .filter_map(|s| s.get("name").and_then(minijson::Value::as_str))
        .collect();
    for phase in [
        "heatmap",
        "quantize",
        "select",
        "simulate-groups",
        "extrapolate",
    ] {
        assert!(names.contains(&phase), "missing span '{phase}': {names:?}");
    }
    assert!(
        names.iter().any(|n| n.starts_with("group ")),
        "per-job group spans recorded: {names:?}"
    );
}

#[test]
fn trace_out_is_deterministic_and_schema_valid() {
    let dir = std::env::temp_dir().join("zatel-cli-trace");
    std::fs::create_dir_all(&dir).unwrap();
    let run = |name: &str| {
        let path = dir.join(name);
        stdout(&[
            "predict",
            "--scene",
            "SPRNG",
            "--res",
            "32",
            "--spp",
            "1",
            "--seed",
            "7",
            "--trace-out",
            path.to_str().unwrap(),
        ]);
        std::fs::read(&path).expect("trace written")
    };
    let a = run("a.json");
    let b = run("b.json");
    assert_eq!(a, b, "fixed-seed traces are byte-identical");

    // Chrome trace format: an array of objects, each with at least
    // name / ph / ts / pid / tid.
    let trace = minijson::Value::parse(std::str::from_utf8(&a).unwrap()).expect("valid JSON");
    let events = trace.as_array().expect("top-level array");
    assert!(!events.is_empty());
    for ev in events {
        assert!(ev.as_object().is_some(), "event is an object");
        assert!(ev.get("name").and_then(minijson::Value::as_str).is_some());
        let ph = ev.get("ph").and_then(minijson::Value::as_str).unwrap();
        assert_eq!(ph.chars().count(), 1, "ph is a single phase character");
        for key in ["ts", "pid", "tid"] {
            assert!(ev.get(key).and_then(|v| v.as_f64()).is_some(), "{key}");
        }
    }
    // At least one SM duration slice and one metadata record.
    assert!(events
        .iter()
        .any(|e| e.get("ph").and_then(minijson::Value::as_str) == Some("X")));
    assert!(events
        .iter()
        .any(|e| e.get("ph").and_then(minijson::Value::as_str) == Some("M")));
}

#[test]
fn run_out_metrics_are_deterministic() {
    let dir = std::env::temp_dir().join("zatel-cli-run-det");
    std::fs::create_dir_all(&dir).unwrap();
    let run = |name: &str| {
        let path = dir.join(name);
        stdout(&[
            "predict",
            "--scene",
            "SPRNG",
            "--res",
            "32",
            "--spp",
            "1",
            "--seed",
            "7",
            "--run-out",
            path.to_str().unwrap(),
        ]);
        let text = std::fs::read_to_string(&path).expect("run record written");
        let run = minijson::Value::parse(&text).expect("valid JSON");
        run.get("metrics").expect("metrics section").to_string()
    };
    assert_eq!(
        run("a.json"),
        run("b.json"),
        "fixed-seed metrics snapshots are byte-identical"
    );
}

#[test]
fn report_renders_run_record_and_appends_history() {
    let dir = std::env::temp_dir().join("zatel-cli-report");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let run_path = dir.join("run.json");
    let history = dir.join("runs.jsonl");
    let pgm = dir.join("heatmap.pgm");
    let prom = dir.join("metrics.prom");
    stdout(&[
        "predict",
        "--scene",
        "SPRNG",
        "--res",
        "32",
        "--spp",
        "1",
        "--reference",
        "--run-out",
        run_path.to_str().unwrap(),
    ]);

    let report = |args: &[&str]| {
        stdout(
            &[
                &[
                    "report",
                    "--run",
                    run_path.to_str().unwrap(),
                    "--history",
                    history.to_str().unwrap(),
                ],
                args,
            ]
            .concat(),
        )
    };
    let text = report(&[
        "--pgm",
        pgm.to_str().unwrap(),
        "--prom",
        prom.to_str().unwrap(),
    ]);
    assert!(text.contains("zatel run: scene SPRNG"));
    assert!(text.contains("per-group results"));
    assert!(text.contains("pipeline spans"));
    assert!(text.contains("simulation metrics"));
    assert!(text.contains("mem_read_latency_cycles"));
    assert!(text.contains("predicted vs reference"));
    assert!(text.contains("MAE ="));

    // Each report invocation appends exactly one summary line.
    report(&[]);
    let lines: Vec<String> = std::fs::read_to_string(&history)
        .expect("history written")
        .lines()
        .map(str::to_owned)
        .collect();
    assert_eq!(lines.len(), 2);
    for line in &lines {
        let v = minijson::Value::parse(line).expect("history line is JSON");
        assert_eq!(
            v.get("scene").and_then(minijson::Value::as_str),
            Some("SPRNG")
        );
    }

    let pgm_bytes = std::fs::read(&pgm).expect("pgm written");
    assert!(
        pgm_bytes.starts_with(b"P5\n32 32\n255\n"),
        "full-res execution-time heatmap as PGM"
    );
    assert_eq!(pgm_bytes.len(), b"P5\n32 32\n255\n".len() + 32 * 32);

    let prom_text = std::fs::read_to_string(&prom).expect("prom written");
    assert!(prom_text.contains("# TYPE zatel_warps_launched counter"));
    assert!(prom_text.contains("zatel_mem_read_latency_cycles_count"));
}

#[test]
fn report_rejects_missing_and_malformed_records() {
    let out = zatel(&["report"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--run"));

    let dir = std::env::temp_dir().join("zatel-cli-report-bad");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{\"schema\": \"not-a-run\"}").unwrap();
    let out = zatel(&["report", "--run", bad.to_str().unwrap()]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unsupported run schema"));
}

#[test]
fn sweep_matrix_appends_runs_and_warm_cache_agrees() {
    let dir = std::env::temp_dir().join("zatel-cli-sweep");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let cache = dir.join("cache");
    let runs = dir.join("runs.jsonl");
    let sweep = || {
        stdout(&[
            "sweep",
            "--scene",
            "SPRNG",
            "--res",
            "32",
            "--spp",
            "1",
            "--seed",
            "7",
            "--ks",
            "1,2",
            "--percents",
            "0.5",
            "--json",
            "--cache-dir",
            cache.to_str().unwrap(),
            "--runs-out",
            runs.to_str().unwrap(),
        ])
    };
    let cold = minijson::Value::parse(&sweep()).expect("valid JSON");
    let warm = minijson::Value::parse(&sweep()).expect("valid JSON");

    let points = |v: &minijson::Value| -> Vec<minijson::Value> {
        v.get("points")
            .and_then(minijson::Value::as_array)
            .expect("points array")
            .to_vec()
    };
    let (cold_pts, warm_pts) = (points(&cold), points(&warm));
    assert_eq!(cold_pts.len(), 2, "K=1,2 × p=0.5 matrix");
    for (c, w) in cold_pts.iter().zip(&warm_pts) {
        assert_eq!(
            c.get("schema").and_then(minijson::Value::as_str),
            Some("zatel-sweep-v1")
        );
        // The warm run serves preprocessing from the on-disk cache yet
        // predicts byte-identical statistics.
        assert_eq!(
            c.get("prediction").unwrap().to_string(),
            w.get("prediction").unwrap().to_string(),
            "warm-cache predictions identical"
        );
        assert_eq!(
            c.get("label").and_then(minijson::Value::as_str),
            w.get("label").and_then(minijson::Value::as_str)
        );
    }
    let heatmap_outcome = |v: &minijson::Value| -> String {
        v.get("cache")
            .and_then(minijson::Value::as_array)
            .expect("cache records")
            .iter()
            .find(|r| r.get("stage").and_then(minijson::Value::as_str) == Some("heatmap"))
            .and_then(|r| r.get("outcome").and_then(minijson::Value::as_str))
            .expect("heatmap outcome")
            .to_owned()
    };
    // Within a run the driver pre-warms, so points see memory hits; the
    // warm process never recomputes (its pre-warm loads from disk).
    assert_eq!(heatmap_outcome(&cold_pts[0]), "memory");
    assert_eq!(heatmap_outcome(&warm_pts[0]), "memory");

    let lines: Vec<String> = std::fs::read_to_string(&runs)
        .expect("runs.jsonl written")
        .lines()
        .map(str::to_owned)
        .collect();
    assert_eq!(lines.len(), 4, "two sweeps × two points");
    for line in &lines {
        let v = minijson::Value::parse(line).expect("runs line is JSON");
        assert_eq!(
            v.get("scene").and_then(minijson::Value::as_str),
            Some("SPRNG")
        );
    }

    let history = stdout(&["report", "--history", runs.to_str().unwrap()]);
    assert!(history.contains("4 recorded runs"), "{history}");
    assert!(history.contains("K=1 p=50%"), "{history}");
}

#[test]
fn sweep_accepts_spec_file_and_rejects_missing_matrix() {
    let dir = std::env::temp_dir().join("zatel-cli-sweep-spec");
    std::fs::create_dir_all(&dir).unwrap();
    let spec = dir.join("spec.json");
    std::fs::write(&spec, r#"{"points": [{"label": "half", "percent": 0.5}]}"#).unwrap();
    let text = stdout(&[
        "sweep",
        "--scene",
        "SPRNG",
        "--res",
        "32",
        "--spp",
        "1",
        "--spec",
        spec.to_str().unwrap(),
        "--json",
    ]);
    let v = minijson::Value::parse(&text).expect("valid JSON");
    let points = v.get("points").and_then(minijson::Value::as_array).unwrap();
    assert_eq!(points.len(), 1);
    assert_eq!(
        points[0].get("label").and_then(minijson::Value::as_str),
        Some("half")
    );

    let out = zatel(&["sweep", "--scene", "SPRNG", "--res", "32"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--ks"), "stderr names the matrix flags: {err}");
}

/// Boots an in-process `zatel serve` on an ephemeral port and returns
/// the `--url` value plus a drain handle / join handle pair.
fn boot_server() -> (
    String,
    zatel_serve::server::ServeHandle,
    std::thread::JoinHandle<Result<zatel_serve::server::ServeReport, String>>,
) {
    let config = zatel_serve::server::ServeConfig {
        addr: "127.0.0.1:0".into(),
        ..zatel_serve::server::ServeConfig::default()
    };
    let server = zatel_serve::server::Server::bind(config).expect("bind");
    let url = format!("http://{}", server.local_addr().expect("addr"));
    let handle = server.handle();
    let join = std::thread::spawn(move || server.run());
    (url, handle, join)
}

#[test]
fn predict_url_output_is_identical_to_local() {
    let (url, handle, join) = boot_server();
    let base = [
        "predict", "--scene", "SPRNG", "--res", "32", "--spp", "1", "--seed", "7",
    ];
    // Without --reference the text table carries no wall-clock-derived
    // numbers, so local and served output must match to the byte.
    let local = stdout(&base);
    let remote = stdout(&[&base, &["--url", url.as_str()][..]].concat());
    assert_eq!(
        local, remote,
        "text output must be byte-identical between local and --url mode"
    );

    // JSON + --reference: compare the deterministic subset (wall clocks
    // and the speedup derived from them legitimately differ).
    let with_ref = [&base, &["--reference"][..]].concat();
    let local_json = stdout(&[&with_ref, &["--json"][..]].concat());
    let remote_json = stdout(&[&with_ref, &["--json", "--url", url.as_str()][..]].concat());
    let deterministic = |text: &str| {
        let v = minijson::Value::parse(text).expect("valid JSON");
        <zatel_proto::PredictResponse as minijson::FromJson>::from_json(&v)
            .expect("zatel-api-v1 response")
            .deterministic_json()
            .to_string()
    };
    assert_eq!(deterministic(&local_json), deterministic(&remote_json));

    handle.shutdown();
    join.join().expect("server thread").expect("clean run");
}

#[test]
fn sweep_url_matches_local_points() {
    let (url, handle, join) = boot_server();
    let base = [
        "sweep",
        "--scene",
        "SPRNG",
        "--res",
        "32",
        "--spp",
        "1",
        "--seed",
        "7",
        "--ks",
        "1,2",
        "--percents",
        "0.5",
        "--json",
    ];
    let prediction_of = |text: &str| -> Vec<String> {
        minijson::Value::parse(text)
            .expect("valid JSON")
            .get("points")
            .and_then(minijson::Value::as_array)
            .expect("points")
            .iter()
            .map(|p| p.get("prediction").expect("prediction").to_string())
            .collect()
    };
    let local = prediction_of(&stdout(&base));
    let remote = prediction_of(&stdout(&[&base, &["--url", url.as_str()][..]].concat()));
    assert_eq!(local, remote, "served sweep predictions match local ones");

    handle.shutdown();
    join.join().expect("server thread").expect("clean run");
}

#[test]
fn predict_url_rejects_local_only_flags_and_bad_urls() {
    let out = zatel(&[
        "predict",
        "--scene",
        "SPRNG",
        "--url",
        "http://127.0.0.1:1",
        "--progress",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--progress"));

    let out = zatel(&["predict", "--scene", "SPRNG", "--url", "ftp://nope"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("http://"));
}

#[test]
fn serve_rejects_zero_workers() {
    let out = zatel(&["serve", "--addr", "127.0.0.1:0", "--workers", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("worker"));
}

#[test]
fn help_mentions_serve_and_url() {
    let text = stdout(&["help"]);
    for needle in ["serve", "--url", "--workers", "--queue", "--deadline-ms"] {
        assert!(text.contains(needle), "help missing '{needle}'");
    }
}

#[test]
fn heatmap_writes_ppm_files() {
    let dir = std::env::temp_dir().join("zatel-cli-heatmaps");
    let _ = std::fs::remove_dir_all(&dir);
    let text = stdout(&[
        "heatmap",
        "--scene",
        "SPRNG",
        "--res",
        "24",
        "--spp",
        "1",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(text.contains("wrote"));
    for f in ["heatmap.ppm", "heatmap_quantized.ppm"] {
        let p = dir.join(f);
        let bytes = std::fs::read(&p).unwrap_or_else(|_| panic!("{f} missing"));
        assert!(
            bytes.starts_with(b"P6\n24 24\n255\n"),
            "{f} has a valid PPM header"
        );
    }
}
