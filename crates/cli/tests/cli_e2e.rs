//! End-to-end tests of the `zatel` binary: spawn the real executable and
//! check its output and exit codes.

use std::process::Command;

fn zatel(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_zatel"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(args: &[&str]) -> String {
    let out = zatel(args);
    assert!(
        out.status.success(),
        "zatel {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("utf8 output")
}

#[test]
fn help_lists_subcommands() {
    let text = stdout(&["help"]);
    for needle in ["predict", "heatmap", "scenes", "configs", "--reference"] {
        assert!(text.contains(needle), "help missing '{needle}'");
    }
}

#[test]
fn scenes_lists_all_eight() {
    let text = stdout(&["scenes"]);
    for name in [
        "PARK", "SHIP", "WKND", "BUNNY", "SPRNG", "CHSNT", "SPNZA", "BATH",
    ] {
        assert!(text.contains(name), "scenes missing {name}");
    }
}

#[test]
fn configs_emit_valid_json() {
    let text = stdout(&["configs"]);
    assert!(text.contains("Mobile SoC"));
    assert!(text.contains("RTX 2060"));
    // Two pretty-printed JSON documents, one per preset.
    let chunks: Vec<&str> = text.split("}\n{").collect();
    assert_eq!(chunks.len(), 2, "two config documents");
}

#[test]
fn predict_prints_all_metrics() {
    let text = stdout(&["predict", "--scene", "SPRNG", "--res", "32", "--spp", "1"]);
    for metric in [
        "GPU IPC",
        "GPU Sim Cycles",
        "L1D Miss Rate",
        "L2 Miss Rate",
        "RT Avg Efficiency",
        "DRAM Efficiency",
        "BW Utilization",
    ] {
        assert!(text.contains(metric), "predict missing '{metric}'");
    }
    assert!(text.contains("K = 4"), "Mobile SoC natural factor");
}

#[test]
fn predict_json_is_parseable() {
    let text = stdout(&[
        "predict",
        "--scene",
        "SPRNG",
        "--res",
        "32",
        "--spp",
        "1",
        "--json",
        "--reference",
    ]);
    let v = minijson::Value::parse(&text).expect("valid JSON");
    assert_eq!(
        v.get("scene").and_then(minijson::Value::as_str),
        Some("SPRNG")
    );
    let metric = |section: &str| {
        v.get(section)
            .and_then(|s| s.get("GPU Sim Cycles"))
            .and_then(minijson::Value::as_f64)
            .unwrap()
    };
    assert!(metric("prediction") > 0.0);
    assert!(metric("reference") > 0.0);
    assert!(v.get("mae").and_then(minijson::Value::as_f64).is_some());
    assert!(
        v.get("speedup_concurrent")
            .and_then(minijson::Value::as_f64)
            .unwrap()
            > 0.0
    );
}

#[test]
fn predict_accepts_custom_config_file() {
    let dir = std::env::temp_dir().join("zatel-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("tiny.json");
    let mut config = gpusim::GpuConfig::mobile_soc();
    config.name = "Tiny".into();
    config.num_sms = 2;
    config.num_mem_partitions = 2;
    config.l2.bytes = 1024 * 1024;
    std::fs::write(&path, minijson::ToJson::to_json(&config).to_string()).unwrap();
    let text = stdout(&[
        "predict",
        "--scene",
        "SPRNG",
        "--res",
        "32",
        "--spp",
        "1",
        "--config",
        path.to_str().unwrap(),
    ]);
    assert!(
        text.contains("K = 2"),
        "gcd(2,2)=2 for the custom config: {text}"
    );
}

#[test]
fn predict_progress_prints_group_lines() {
    let text = stdout(&[
        "predict",
        "--scene",
        "SPRNG",
        "--res",
        "32",
        "--spp",
        "1",
        "--jobs",
        "2",
        "--progress",
    ]);
    assert!(text.contains("group 1/"), "per-group progress line: {text}");
    assert!(text.contains("phases over"), "trace counters shown: {text}");
    assert!(
        text.contains("simulation wall"),
        "total sim wall shown: {text}"
    );
}

#[test]
fn predict_json_reports_group_wall_times() {
    let text = stdout(&[
        "predict",
        "--scene",
        "SPRNG",
        "--res",
        "32",
        "--spp",
        "1",
        "--json",
        "--progress",
    ]);
    let v = minijson::Value::parse(&text).expect("valid JSON");
    assert!(
        v.get("sim_wall_ms")
            .and_then(minijson::Value::as_f64)
            .unwrap()
            >= 0.0
    );
    let groups = v
        .get("groups")
        .and_then(minijson::Value::as_array)
        .expect("groups array");
    assert!(!groups.is_empty());
    for g in groups {
        assert!(g.get("wall_ms").and_then(minijson::Value::as_f64).unwrap() >= 0.0);
        assert!(g.get("cycles").and_then(minijson::Value::as_u64).unwrap() > 0);
        let counters = g
            .get("trace")
            .and_then(|t| t.get("counters"))
            .expect("trace attached");
        assert!(
            counters
                .get("warps_launched")
                .and_then(minijson::Value::as_u64)
                .unwrap()
                > 0
        );
    }
}

#[test]
fn predict_rejects_zero_jobs() {
    let out = zatel(&["predict", "--scene", "SPRNG", "--res", "32", "--jobs", "0"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs"));
}

#[test]
fn predict_no_downscale_and_percent() {
    let text = stdout(&[
        "predict",
        "--scene",
        "SPRNG",
        "--res",
        "32",
        "--spp",
        "1",
        "--no-downscale",
        "--percent",
        "0.5",
    ]);
    assert!(text.contains("K = 1"));
    assert!(
        text.contains("traced 5") || text.contains("traced 4"),
        "≈50%: {text}"
    );
}

#[test]
fn unknown_scene_fails_cleanly() {
    let out = zatel(&["predict", "--scene", "NOPE"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("unknown scene"), "stderr: {err}");
}

#[test]
fn unknown_subcommand_fails_cleanly() {
    let out = zatel(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn bad_config_file_fails_cleanly() {
    let out = zatel(&["predict", "--config", "/nonexistent/cfg.json"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("reading config file"));
}

#[test]
fn heatmap_writes_ppm_files() {
    let dir = std::env::temp_dir().join("zatel-cli-heatmaps");
    let _ = std::fs::remove_dir_all(&dir);
    let text = stdout(&[
        "heatmap",
        "--scene",
        "SPRNG",
        "--res",
        "24",
        "--spp",
        "1",
        "--out",
        dir.to_str().unwrap(),
    ]);
    assert!(text.contains("wrote"));
    for f in ["heatmap.ppm", "heatmap_quantized.ppm"] {
        let p = dir.join(f);
        let bytes = std::fs::read(&p).unwrap_or_else(|_| panic!("{f} missing"));
        assert!(
            bytes.starts_with(b"P6\n24 24\n255\n"),
            "{f} has a valid PPM header"
        );
    }
}
