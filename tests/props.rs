//! Property-based tests over the suite's core data structures and
//! invariants.

use proptest::prelude::*;

use rtcore::bvh::Bvh;
use rtcore::geom::{Primitive, Sphere, Triangle};
use rtcore::material::MaterialId;
use rtcore::math::{Aabb, Pcg, Ray, Vec3};
use zatel::extrapolate::ExpRegression;
use zatel::heatmap::{coolness_of, heat_color};
use zatel::metrics::fit_power_law;
use zatel::partition::{divide, DivisionMethod};
use zatel::quantize::kmeans;

fn vec3_strategy(range: f32) -> impl Strategy<Value = Vec3> {
    (-range..range, -range..range, -range..range).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn primitive_strategy() -> impl Strategy<Value = Primitive> {
    prop_oneof![
        (vec3_strategy(10.0), 0.05f32..2.0)
            .prop_map(|(c, r)| { Primitive::Sphere(Sphere::new(c, r, MaterialId(0))) }),
        (vec3_strategy(10.0), vec3_strategy(2.0), vec3_strategy(2.0)).prop_map(|(a, d1, d2)| {
            Primitive::Triangle(Triangle::new(
                a,
                a + d1 + Vec3::splat(0.01),
                a + d2 - Vec3::splat(0.01),
                MaterialId(0),
            ))
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// BVH closest-hit always agrees with brute force.
    #[test]
    fn bvh_matches_brute_force(
        prims in prop::collection::vec(primitive_strategy(), 1..80),
        origin in vec3_strategy(15.0),
        dir in vec3_strategy(1.0),
    ) {
        prop_assume!(dir.length() > 0.1);
        let ray = Ray::new(origin, dir.normalized());
        let bvh = Bvh::build(&prims);
        let (hit, _) = bvh.intersect(&ray, &prims);
        let brute = prims
            .iter()
            .filter_map(|p| p.hit(&ray))
            .fold(f32::INFINITY, f32::min);
        match hit {
            Some(h) => prop_assert!((h.t - brute).abs() < 1e-3 * brute.max(1.0)),
            None => prop_assert!(brute.is_infinite()),
        }
    }

    /// Occlusion queries agree with closest-hit existence.
    #[test]
    fn occlusion_agrees_with_intersection(
        prims in prop::collection::vec(primitive_strategy(), 1..40),
        origin in vec3_strategy(15.0),
        dir in vec3_strategy(1.0),
        t_max in 0.5f32..50.0,
    ) {
        prop_assume!(dir.length() > 0.1);
        let ray = Ray::segment(origin, dir.normalized(), t_max);
        let bvh = Bvh::build(&prims);
        let (occluded, _) = bvh.occluded(&ray, &prims);
        let (hit, _) = bvh.intersect(&ray, &prims);
        prop_assert_eq!(occluded, hit.is_some());
    }

    /// AABB union contains both operands' corners.
    #[test]
    fn aabb_union_contains_operands(
        a0 in vec3_strategy(10.0), a1 in vec3_strategy(10.0),
        b0 in vec3_strategy(10.0), b1 in vec3_strategy(10.0),
    ) {
        let a = Aabb::from_corners(a0, a1);
        let b = Aabb::from_corners(b0, b1);
        let u = a.union(&b);
        for p in [a.min, a.max, b.min, b.max] {
            prop_assert!(u.contains_point(p));
        }
        prop_assert!(u.surface_area() + 1e-4 >= a.surface_area().max(b.surface_area()));
    }

    /// A ray that hits a box also hits every union containing it.
    #[test]
    fn aabb_hit_monotone_under_union(
        c0 in vec3_strategy(5.0), c1 in vec3_strategy(5.0),
        o in vec3_strategy(12.0), d in vec3_strategy(1.0),
        e0 in vec3_strategy(8.0), e1 in vec3_strategy(8.0),
    ) {
        prop_assume!(d.length() > 0.1);
        let ray = Ray::new(o, d.normalized());
        let inv = ray.inv_dir();
        let small = Aabb::from_corners(c0, c1);
        let big = small.union(&Aabb::from_corners(e0, e1));
        if small.hit(&ray, inv).is_some() {
            prop_assert!(big.hit(&ray, inv).is_some());
        }
    }

    /// Image division is always an exact partition.
    #[test]
    fn division_is_partition(
        w in 1u32..120, h in 1u32..120, k in 1u32..9,
        fine in any::<bool>(), cw in 1u32..40, ch in 1u32..8,
    ) {
        let method = if fine {
            DivisionMethod::Fine { chunk_width: cw, chunk_height: ch }
        } else {
            DivisionMethod::Coarse
        };
        let groups = divide(w, h, k, method);
        prop_assert_eq!(groups.len(), k as usize);
        let mut seen = std::collections::HashSet::new();
        for g in &groups {
            for p in &g.pixels {
                prop_assert!(p.x < w && p.y < h);
                prop_assert!(seen.insert((p.x, p.y)));
            }
        }
        prop_assert_eq!(seen.len() as u64, w as u64 * h as u64);
    }

    /// K-means assigns every point to its nearest surviving centroid.
    #[test]
    fn kmeans_assigns_nearest_centroid(
        raw in prop::collection::vec((0f32..1.0, 0f32..1.0, 0f32..1.0), 2..120),
        k in 1usize..8, seed in any::<u64>(),
    ) {
        let points: Vec<Vec3> = raw.into_iter().map(|(x, y, z)| Vec3::new(x, y, z)).collect();
        let (assign, cents) = kmeans(&points, k, seed);
        prop_assert_eq!(assign.len(), points.len());
        for (p, &a) in points.iter().zip(&assign) {
            let d_assigned = (*p - cents[a as usize]).length_squared();
            for c in &cents {
                prop_assert!(d_assigned <= (*p - *c).length_squared() + 1e-5);
            }
        }
    }

    /// The heat gradient's coolness is consistent: hotter temperature never
    /// yields a (much) cooler colour.
    #[test]
    fn heat_gradient_coolness_antimonotone(t1 in 0f32..1.0, t2 in 0f32..1.0) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        prop_assume!(hi - lo > 0.15);
        let c_lo = coolness_of(heat_color(lo));
        let c_hi = coolness_of(heat_color(hi));
        prop_assert!(c_hi <= c_lo + 0.13, "t={lo}->{hi}: coolness {c_lo}->{c_hi}");
    }

    /// Power-law fits exactly recover synthetic power laws.
    #[test]
    fn power_law_roundtrip(a in 0.5f64..500.0, b in -2.0f64..-0.1) {
        let pts: Vec<(f64, f64)> = (1..=6).map(|i| {
            let x = i as f64 * 13.0;
            (x, a * x.powf(b))
        }).collect();
        let fit = fit_power_law(&pts);
        prop_assert!((fit.a - a).abs() / a < 1e-6);
        prop_assert!((fit.b - b).abs() < 1e-9);
    }

    /// Exponential regression exactly recovers synthetic exponentials.
    #[test]
    fn exp_regression_roundtrip(a in -10f64..10.0, b in 0.1f64..5.0, c in -6f64..-0.1) {
        let model = ExpRegression { a, b, c };
        let pts = [
            (0.2, model.predict(0.2)),
            (0.3, model.predict(0.3)),
            (0.4, model.predict(0.4)),
        ];
        let fit = ExpRegression::fit(&pts).expect("synthetic data fits");
        prop_assert!((fit.predict(1.0) - model.predict(1.0)).abs() < 1e-5 * model.predict(1.0).abs().max(1.0));
    }

    /// The deterministic RNG's shuffle is a permutation for any seed.
    #[test]
    fn shuffle_is_permutation(seed in any::<u64>(), n in 1usize..200) {
        let mut rng = Pcg::new(seed);
        let mut v: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }
}
