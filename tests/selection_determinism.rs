//! Determinism regression tests for representative-pixel selection.
//!
//! PR 4 converted the selector's hash maps to `BTreeMap`s drained in
//! raster tile order, making the chosen pixel *set* a pure function of
//! (pixel set, quantized heatmap, options) — independent of the order the
//! group happens to list its pixels in. These tests pin that contract:
//! the property test permutes the insertion order, and the fingerprint
//! test pins the exact selection so a future refactor that silently
//! changes block ordering (and with it every downstream simulation) shows
//! up as a diff here, not as an unexplained drift in paper figures.

use std::collections::BTreeSet;

use proptest::prelude::*;
use rtcore::fingerprint::Fnv64;
use rtcore::math::Pcg;
use rtcore::tracer::CostMap;
use rtworkload::Pixel;
use zatel::heatmap::Heatmap;
use zatel::partition::{divide, DivisionMethod, Group};
use zatel::quantize::QuantizedHeatmap;
use zatel::select::{select_pixels, Selection, SelectionOptions};

const W: u32 = 64;
const H: u32 = 32;

/// A deterministic non-uniform cost field: cost grows along x with a few
/// hot rows, so quantization produces several clusters.
fn gradient_map() -> QuantizedHeatmap {
    let mut costs = CostMap::new(W, H);
    for y in 0..H {
        for x in 0..W {
            let hot_row = u64::from(y % 8 == 0) * 40;
            costs.set(x, y, 5 + (x as u64 * 90) / u64::from(W) + hot_row);
        }
    }
    QuantizedHeatmap::quantize(&Heatmap::from_costs(&costs), 4, 3)
}

fn group_of(pixels: Vec<Pixel>) -> Group {
    Group { index: 0, pixels }
}

/// The selected pixel coordinates, as an order-free set.
fn selected_set(group: &Group, sel: &Selection) -> BTreeSet<(u32, u32)> {
    group
        .pixels
        .iter()
        .zip(&sel.mask)
        .filter(|(_, &m)| m)
        .map(|(p, _)| (p.x, p.y))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The selected pixel set is invariant under any permutation of the
    /// group's pixel-insertion order.
    #[test]
    fn selection_invariant_under_pixel_insertion_order(
        coords in prop::collection::vec((0..W, 0..H), 1..400),
        shuffle_seed in any::<u64>(),
        seed in any::<u64>(),
    ) {
        let quantized = gradient_map();
        // Dedup into a canonical set, then derive a permuted ordering.
        let set: BTreeSet<(u32, u32)> = coords.into_iter().collect();
        let canonical: Vec<Pixel> = set.iter().map(|&(x, y)| Pixel::new(x, y)).collect();
        let mut permuted = canonical.clone();
        Pcg::new(shuffle_seed).shuffle(&mut permuted);

        // percent_override keeps Eq. (1) out of the picture: the mean
        // coolness is an f64 sum over pixels in listed order, which is a
        // different (documented) order sensitivity than block selection.
        let mut options = SelectionOptions::default();
        options.percent_override = Some(0.3);
        options.seed = seed;
        let ga = group_of(canonical);
        let gb = group_of(permuted);
        let sa = select_pixels(&ga, &quantized, &options);
        let sb = select_pixels(&gb, &quantized, &options);

        prop_assert_eq!(selected_set(&ga, &sa), selected_set(&gb, &sb));
        prop_assert_eq!(sa.target_percent, sb.target_percent);
        prop_assert!((sa.fraction - sb.fraction).abs() < 1e-12);
    }
}

/// FNV1a fingerprint of a selection outcome over the full frame.
fn selection_fingerprint(sel: &Selection) -> u64 {
    let mut h = Fnv64::new();
    h.write_u64(sel.mask.len() as u64);
    for &m in &sel.mask {
        h.write_u8(u8::from(m));
    }
    h.write_f64(sel.target_percent);
    h.write_f64(sel.fraction);
    h.finish()
}

/// Pins the exact selection for a fixed scenario, byte for byte.
///
/// If an intentional change to the selector moves this value, rerun with
/// `--nocapture` via `selection_fingerprint_print` below and update the
/// constant — and expect downstream golden stats to move too.
#[test]
fn selection_fingerprint_is_pinned() {
    const PINNED: u64 = 0x4B1D_3800_E949_5FB8;
    let quantized = gradient_map();
    let groups = divide(W, H, 1, DivisionMethod::default_fine());
    let sel = select_pixels(&groups[0], &quantized, &SelectionOptions::default());
    assert_eq!(
        selection_fingerprint(&sel),
        PINNED,
        "selection changed for a fixed (scene, options) input"
    );
}

/// Regeneration helper: `cargo test --test selection_determinism -- --ignored --nocapture`.
#[test]
#[ignore = "prints the current fingerprint for updating the pinned constant"]
fn selection_fingerprint_print() {
    let quantized = gradient_map();
    let groups = divide(W, H, 1, DivisionMethod::default_fine());
    let sel = select_pixels(&groups[0], &quantized, &SelectionOptions::default());
    println!(
        "selection fingerprint: {:#018X}",
        selection_fingerprint(&sel)
    );
}
