//! Integration tests of the timing simulator's architectural behaviour on
//! real ray-tracing workloads (rtcore scenes through rtworkload).

use zatel_suite::prelude::*;

fn trace() -> TraceConfig {
    TraceConfig {
        samples_per_pixel: 1,
        max_bounces: 2,
        seed: 31,
    }
}

#[test]
fn rtx_outperforms_mobile_on_heavy_scene() {
    let scene = SceneId::Park.build(1);
    let w = RtWorkload::full_frame(&scene, 96, 96, trace());
    let mobile = Simulator::new(GpuConfig::mobile_soc()).run(&w);
    let rtx = Simulator::new(GpuConfig::rtx_2060()).run(&w);
    assert!(
        rtx.cycles < mobile.cycles,
        "RTX ({}) should beat Mobile ({}) on PARK",
        rtx.cycles,
        mobile.cycles
    );
    assert!(
        rtx.ipc() > mobile.ipc(),
        "more SMs retire more instructions per cycle"
    );
    assert_eq!(
        rtx.instructions, mobile.instructions,
        "same workload, same instructions"
    );
}

#[test]
fn sprng_underutilizes_the_gpu() {
    // SPRNG's rays terminate early: the RTX 2060 barely outperforms the
    // Mobile SoC, unlike on PARK.
    let park = SceneId::Park.build(1);
    let sprng = SceneId::Sprng.build(1);
    let speedup = |scene: &rtcore::scene::Scene| {
        let w = RtWorkload::full_frame(scene, 96, 96, trace());
        let m = Simulator::new(GpuConfig::mobile_soc()).run(&w);
        let r = Simulator::new(GpuConfig::rtx_2060()).run(&w);
        m.cycles as f64 / r.cycles as f64
    };
    let park_speedup = speedup(&park);
    let sprng_speedup = speedup(&sprng);
    assert!(
        park_speedup > sprng_speedup,
        "PARK should benefit more from the bigger GPU ({park_speedup:.2} vs {sprng_speedup:.2})"
    );
}

#[test]
fn bandwidth_utilization_higher_on_heavier_scene() {
    // PARK streams a 12 MB scene through a 3 MB L2; WKND's working set is
    // a tenth of that. (SPRNG is excluded: its run is so short that
    // framebuffer write-back dominates its bandwidth.)
    let park = SceneId::Park.build(2);
    let wknd = SceneId::Wknd.build(2);
    let bw = |scene: &rtcore::scene::Scene| {
        let w = RtWorkload::full_frame(scene, 64, 64, trace());
        Simulator::new(GpuConfig::mobile_soc())
            .run(&w)
            .bandwidth_utilization()
    };
    assert!(
        bw(&park) > bw(&wknd),
        "PARK should press DRAM harder than WKND"
    );
}

#[test]
fn rt_efficiency_within_physical_bounds() {
    for id in [SceneId::Park, SceneId::Sprng, SceneId::Bath, SceneId::Ship] {
        let scene = id.build(3);
        let w = RtWorkload::full_frame(&scene, 64, 64, trace());
        let s = Simulator::new(GpuConfig::mobile_soc()).run(&w);
        let eff = s.rt_efficiency();
        assert!(
            eff > 0.0 && eff <= 32.0,
            "{id}: RT efficiency {eff} out of [0,32]"
        );
        assert!(s.l1_miss_rate() >= 0.0 && s.l1_miss_rate() <= 1.0);
        assert!(s.l2_miss_rate() >= 0.0 && s.l2_miss_rate() <= 1.0);
        assert!(s.dram_efficiency() >= 0.0 && s.dram_efficiency() <= 1.0);
        assert!(s.bandwidth_utilization() >= 0.0 && s.bandwidth_utilization() <= 1.0);
    }
}

#[test]
fn divergent_scene_has_lower_rt_efficiency_than_coherent() {
    // BUNNY's fractal geometry makes neighbouring rays terminate at wildly
    // different traversal depths, draining warps early; BATH's enclosed
    // flat walls keep neighbouring rays in lockstep. RT efficiency (active
    // rays per warp phase) must reflect that divergence gap.
    let bath = SceneId::Bath.build(4);
    let bunny = SceneId::Bunny.build(4);
    let eff = |scene: &rtcore::scene::Scene| {
        let w = RtWorkload::full_frame(scene, 64, 64, trace());
        Simulator::new(GpuConfig::mobile_soc())
            .run(&w)
            .rt_efficiency()
    };
    assert!(
        eff(&bath) > eff(&bunny),
        "coherent BATH ({:.1}) should keep warps fuller than fractal BUNNY ({:.1})",
        eff(&bath),
        eff(&bunny)
    );
}

#[test]
fn halving_resolution_roughly_quarters_work() {
    let scene = SceneId::Chsnt.build(5);
    let sim = Simulator::new(GpuConfig::mobile_soc());
    let big = sim.run(&RtWorkload::full_frame(&scene, 96, 96, trace()));
    let small = sim.run(&RtWorkload::full_frame(&scene, 48, 48, trace()));
    let ratio = big.instructions as f64 / small.instructions as f64;
    assert!(
        (2.5..6.0).contains(&ratio),
        "4x pixels should be ~4x instructions, got {ratio:.2}"
    );
}

#[test]
fn downscaled_config_preserves_miss_rate_better_than_cycles() {
    // Ratio metrics are more robust to downscaling than absolute ones —
    // the reason Zatel only extrapolates SimCycles.
    let scene = SceneId::Spnza.build(6);
    let w = RtWorkload::full_frame(&scene, 64, 64, trace());
    let full = Simulator::new(GpuConfig::mobile_soc()).run(&w);
    let down = Simulator::new(GpuConfig::mobile_soc().downscaled(4).unwrap()).run(&w);
    let l1_gap = (full.l1_miss_rate() - down.l1_miss_rate()).abs() / full.l1_miss_rate();
    let cyc_gap = (full.cycles as f64 - down.cycles as f64).abs() / full.cycles as f64;
    assert!(
        l1_gap < cyc_gap,
        "L1 miss rate gap ({l1_gap:.3}) should be smaller than cycles gap ({cyc_gap:.3})"
    );
}
