//! Cross-crate invariants about combining rules, pixel filtering and
//! workload partitioning.

use zatel::partition::{divide, DivisionMethod};
use zatel_suite::prelude::*;

fn trace() -> TraceConfig {
    TraceConfig {
        samples_per_pixel: 1,
        max_bounces: 2,
        seed: 23,
    }
}

#[test]
fn groups_cover_the_frame_and_instructions_add_up() {
    // Simulating the K groups at 100% on any config must execute exactly
    // the instructions of the full frame (plus nothing, minus nothing):
    // division is a partition and per-pixel work is context-free.
    let scene = SceneId::Wknd.build(3);
    let (w, h) = (64u32, 64u32);
    let full = RtWorkload::full_frame(&scene, w, h, trace());
    let down = GpuConfig::mobile_soc().downscaled(4).unwrap();
    let full_stats = Simulator::new(GpuConfig::mobile_soc()).run(&full);

    let groups = divide(w, h, 4, DivisionMethod::default_fine());
    let mut group_insts = 0u64;
    for g in &groups {
        let wl = RtWorkload::new(&scene, w, h, trace(), g.pixels.clone());
        let s = Simulator::new(down.clone()).run(&wl);
        group_insts += s.instructions;
    }
    assert_eq!(
        group_insts, full_stats.instructions,
        "group instruction counts must exactly tile the full frame"
    );
}

#[test]
fn fine_groups_have_similar_instruction_counts() {
    // Section III-H's premise: fine-grained groups sample the scene
    // homogeneously, so their instruction counts are close.
    let scene = SceneId::Park.build(4);
    let (w, h) = (64u32, 64u32);
    let down = GpuConfig::mobile_soc().downscaled(4).unwrap();
    let groups = divide(w, h, 4, DivisionMethod::default_fine());
    let counts: Vec<u64> = groups
        .iter()
        .map(|g| {
            let wl = RtWorkload::new(&scene, w, h, trace(), g.pixels.clone());
            Simulator::new(down.clone()).run(&wl).instructions
        })
        .collect();
    let max = *counts.iter().max().unwrap() as f64;
    let min = *counts.iter().min().unwrap() as f64;
    assert!(
        max / min < 1.25,
        "fine-grained groups should be balanced, got {counts:?}"
    );
}

#[test]
fn coarse_groups_are_less_balanced_than_fine_on_skewed_scenes() {
    // WKND's complexity is concentrated on the left half: coarse groups
    // inherit the skew, fine groups do not.
    let scene = SceneId::Wknd.build(4);
    let (w, h) = (64u32, 64u32);
    let down = GpuConfig::mobile_soc().downscaled(4).unwrap();
    let spread = |method: DivisionMethod| -> f64 {
        let groups = divide(w, h, 4, method);
        let counts: Vec<u64> = groups
            .iter()
            .map(|g| {
                let wl = RtWorkload::new(&scene, w, h, trace(), g.pixels.clone());
                Simulator::new(down.clone()).run(&wl).instructions
            })
            .collect();
        let max = *counts.iter().max().unwrap() as f64;
        let min = *counts.iter().min().unwrap() as f64;
        max / min
    };
    let fine = spread(DivisionMethod::default_fine());
    let coarse = spread(DivisionMethod::Coarse);
    assert!(
        coarse > fine,
        "coarse spread ({coarse:.2}) should exceed fine spread ({fine:.2}) on WKND"
    );
}

#[test]
fn filtered_pixels_add_negligible_work() {
    // The paper's Listing-1 claim: filtered-out shaders' impact on the
    // final statistics is negligible.
    let scene = SceneId::Chsnt.build(5);
    let (w, h) = (64u32, 64u32);
    let sim = Simulator::new(GpuConfig::mobile_soc());
    // 25% of pixels selected in *randomly chosen* 32-wide (warp-aligned)
    // blocks — the shape every real Zatel selection has: section blocks
    // are 32 pixels wide precisely so filtered warps die whole, and block
    // choice is randomized, which also spreads live warps across SMs.
    let n = (w * h) as usize;
    let n_blocks = n / 32;
    let mut rng = rtcore::math::Pcg::new(99);
    let mut block_ids: Vec<usize> = (0..n_blocks).collect();
    rng.shuffle(&mut block_ids);
    let mut block_on = vec![false; n_blocks];
    for &b in block_ids.iter().take(n_blocks / 4) {
        block_on[b] = true;
    }
    let sel: Vec<bool> = (0..n).map(|i| block_on[i / 32]).collect();
    let filtered = RtWorkload::full_frame(&scene, w, h, trace()).with_selection(sel.clone());
    let s_filtered = sim.run(&filtered);

    // The same 25% of pixels as a standalone workload (no filtered threads).
    let pixels: Vec<rtworkload::Pixel> = filtered
        .pixels()
        .iter()
        .zip(&sel)
        .filter(|(_, &keep)| keep)
        .map(|(p, _)| *p)
        .collect();
    let bare = RtWorkload::new(&scene, w, h, trace(), pixels);
    let s_bare = sim.run(&bare);

    let inst_overhead = s_filtered.instructions as f64 / s_bare.instructions as f64;
    assert!(
        inst_overhead < 1.05,
        "filter threads added {:.1}% instructions",
        (inst_overhead - 1.0) * 100.0
    );
    let cyc_ratio = s_filtered.cycles as f64 / s_bare.cycles as f64;
    assert!(
        cyc_ratio < 1.3,
        "filter threads inflated cycles by {:.2}x",
        cyc_ratio
    );
}

#[test]
fn combine_rules_match_hand_computation() {
    // Build two synthetic group stats and verify the pipeline-level
    // combination (through the public Metric API).
    let a = SimStats {
        cycles: 1000,
        instructions: 2000,
        ..Default::default()
    };
    let b = SimStats {
        cycles: 3000,
        instructions: 3000,
        ..Default::default()
    };
    let ipc = Metric::Ipc.combine(&[a.ipc(), b.ipc()]);
    assert_eq!(ipc, 2.0 + 1.0);
    let cycles = Metric::SimCycles.combine(&[
        Metric::SimCycles.extrapolate(1000.0, 0.5),
        Metric::SimCycles.extrapolate(3000.0, 0.5),
    ]);
    assert_eq!(cycles, (2000.0 + 6000.0) / 2.0);
}

#[test]
fn division_methods_partition_for_many_shapes() {
    for (w, h, k) in [(64u32, 64u32, 4u32), (96, 48, 6), (33, 17, 3), (32, 2, 2)] {
        for method in [DivisionMethod::Coarse, DivisionMethod::default_fine()] {
            let groups = divide(w, h, k, method);
            let total: usize = groups.iter().map(|g| g.pixels.len()).sum();
            assert_eq!(
                total as u64,
                w as u64 * h as u64,
                "{w}x{h} k={k} {method:?}"
            );
        }
    }
}
