//! Interleaving-exploration harness for the sharded engine
//! (`--cfg zatel_schedule_test` builds only).
//!
//! The engine's bit-identity claim — sharded stats and hook streams equal
//! the serial engine's regardless of thread scheduling — is normally
//! exercised against whatever interleavings the OS happens to produce.
//! This harness removes the "happens to": under `zatel_schedule_test` the
//! engine's sync facade routes every seam acquisition and condvar park
//! through [`gpusim::schedule`], a seeded cooperative scheduler that
//! *chooses* the thread order. Sweeping seeds replays over a thousand
//! provably distinct interleavings (distinct election-trace hashes) and
//! asserts bit-identical [`SimStats`] and `TraceHooks` streams on every
//! one.
//!
//! Run with: `RUSTFLAGS='--cfg zatel_schedule_test' cargo test --test
//! schedule_explore`.

#![cfg(zatel_schedule_test)]

use std::collections::HashSet;

use gpusim::schedule;
use gpusim::workload::{Op, ScriptedWorkload};
use gpusim::{GpuConfig, Simulator, TraceHooks};

/// Small but branchy: enough warps per shard that publishes, seam takes
/// and epoch advances genuinely race, small enough that one scheduled
/// run stays in the low milliseconds.
fn workload() -> ScriptedWorkload {
    ScriptedWorkload::per_thread(256, |i| {
        vec![
            Op::RtNode {
                addr: (i % 53) * 32,
            },
            Op::Load {
                addr: i * 64,
                bytes: 16,
            },
            Op::Compute {
                cycles: (i % 5) as u32 + 1,
                insts: 2,
            },
            Op::Store {
                addr: i * 16,
                bytes: 16,
            },
        ]
    })
}

fn sharded_cfg() -> GpuConfig {
    let mut cfg = GpuConfig::mobile_soc();
    cfg.sim_threads = 4; // 3 decode shards + the commit loop
    cfg
}

fn scheduled_run(seed: u64) -> (gpusim::stats::SimStats, TraceHooks, schedule::ScheduleTrace) {
    let w = workload();
    schedule::install(seed);
    let mut hooks = TraceHooks::new(400);
    let stats = Simulator::new(sharded_cfg()).run_with_hooks(&w, &mut hooks);
    let trace = schedule::uninstall().expect("scheduler was installed");
    (stats, hooks, trace)
}

#[test]
fn a_thousand_distinct_interleavings_stay_bit_identical() {
    let w = workload();
    let mut serial_hooks = TraceHooks::new(400);
    let serial = Simulator::new(GpuConfig::mobile_soc()).run_with_hooks(&w, &mut serial_hooks);

    let mut hashes = HashSet::new();
    let mut seeds_run = 0u64;
    for seed in 0..1100u64 {
        let (stats, hooks, trace) = scheduled_run(seed);
        assert_eq!(serial, stats, "seed {seed}: stats must be bit-identical");
        assert_eq!(
            serial_hooks.counters(),
            hooks.counters(),
            "seed {seed}: hook counters must be bit-identical"
        );
        assert_eq!(
            serial_hooks.slices(),
            hooks.slices(),
            "seed {seed}: trace slices must replay in exact serial order"
        );
        assert!(
            trace.steps > 0,
            "seed {seed}: the run must pass through schedule points"
        );
        hashes.insert(trace.hash);
        seeds_run += 1;
        if hashes.len() >= 1000 {
            break;
        }
    }
    assert!(
        hashes.len() >= 1000,
        "only {} distinct interleavings in {} seeded runs — the seam has \
         lost its scheduling freedom or the trace hash collapsed",
        hashes.len(),
        seeds_run
    );
}

#[test]
fn the_same_seed_replays_the_same_interleaving() {
    let (stats_a, hooks_a, trace_a) = scheduled_run(0xA11CE);
    let (stats_b, hooks_b, trace_b) = scheduled_run(0xA11CE);
    assert_eq!(trace_a, trace_b, "equal seeds must replay equal schedules");
    assert_eq!(stats_a, stats_b);
    assert_eq!(hooks_a.counters(), hooks_b.counters());
    assert_eq!(hooks_a.slices(), hooks_b.slices());
}

#[test]
fn different_seeds_explore_different_schedules() {
    let (_, _, trace_a) = scheduled_run(1);
    let (_, _, trace_b) = scheduled_run(2);
    assert_ne!(
        trace_a.hash, trace_b.hash,
        "two seeds electing identical schedules is vanishingly unlikely \
         with racing shards — the scheduler is ignoring its seed"
    );
}
