//! The sharded engine's headline contract, pinned end to end: for every
//! scene and every `sim_threads` count, simulated statistics, serialized
//! stats JSON, hook event streams and stage-cache fingerprints are
//! **bit-identical** to the serial engine. `sim_threads` is an execution
//! knob, never a result knob — these tests are what the `thread-seam` lint
//! allowance for the engine's epoch driver leans on.

use proptest::prelude::*;

use gpusim::workload::{Op, ScriptedWorkload};
use minijson::ToJson;
use zatel::{ArtifactCache, RunContext};
use zatel_suite::prelude::*;

fn trace() -> TraceConfig {
    TraceConfig {
        samples_per_pixel: 1,
        max_bounces: 2,
        seed: 7,
    }
}

const ALL_SCENES: [SceneId; 8] = [
    SceneId::Park,
    SceneId::Ship,
    SceneId::Wknd,
    SceneId::Bunny,
    SceneId::Sprng,
    SceneId::Chsnt,
    SceneId::Spnza,
    SceneId::Bath,
];

fn full_frame_stats(id: SceneId, sim_threads: u32) -> SimStats {
    let scene = id.build(1);
    let workload = RtWorkload::full_frame(&scene, 32, 32, trace());
    let mut config = GpuConfig::mobile_soc();
    config.sim_threads = sim_threads;
    Simulator::new(config).run(&workload)
}

/// The acceptance criterion verbatim: all eight scenes, `sim_threads`
/// in {1, 2, 4}, bit-identical `SimStats` *and* byte-identical stats
/// JSON.
#[test]
fn all_scenes_bit_identical_across_thread_counts() {
    for id in ALL_SCENES {
        let serial = full_frame_stats(id, 1);
        let serial_json = serial.to_json().pretty();
        for sim_threads in [2, 4] {
            let sharded = full_frame_stats(id, sim_threads);
            assert_eq!(
                serial,
                sharded,
                "{}: sim_threads={sim_threads} drifted from serial",
                id.name()
            );
            assert_eq!(
                serial_json,
                sharded.to_json().pretty(),
                "{}: serialized stats must be byte-identical",
                id.name()
            );
        }
    }
}

/// Hook streams replay in exact serial order under the sharded engine:
/// same counters, same per-slice trace, on a real RT workload.
#[test]
fn hook_event_stream_identical_under_threaded_sim() {
    let scene = SceneId::Wknd.build(3);
    let workload = RtWorkload::full_frame(&scene, 32, 32, trace());

    let mut serial_hooks = TraceHooks::new(10_000);
    let serial =
        Simulator::new(GpuConfig::mobile_soc()).run_with_hooks(&workload, &mut serial_hooks);

    let mut config = GpuConfig::mobile_soc();
    config.sim_threads = 4;
    let mut sharded_hooks = TraceHooks::new(10_000);
    let sharded = Simulator::new(config).run_with_hooks(&workload, &mut sharded_hooks);

    assert_eq!(serial, sharded);
    assert_eq!(serial_hooks.counters(), sharded_hooks.counters());
    assert_eq!(
        serial_hooks.slices(),
        sharded_hooks.slices(),
        "trace slices must replay in exact serial order"
    );
}

/// The whole pipeline — prediction values, per-group stats and every
/// stage-cache fingerprint — is unchanged by `sim_threads`, so cached
/// artifacts stay valid when the thread count changes between runs.
#[test]
fn pipeline_values_and_fingerprints_identical_under_threaded_sim() {
    let scene = SceneId::Sprng.build(1);
    let run_with = |sim_threads: usize| {
        let mut z = Zatel::new(&scene, GpuConfig::mobile_soc(), 64, 64, trace());
        z.options_mut().parallel = false;
        z.options_mut().sim_threads = Some(sim_threads);
        let cache = ArtifactCache::in_memory();
        z.execute(&RunContext::new().with_cache(&cache))
            .expect("pipeline runs")
    };
    let serial = run_with(1);
    for sim_threads in [2, 4] {
        let sharded = run_with(sim_threads);
        for m in Metric::ALL {
            assert_eq!(
                serial.value(m),
                sharded.value(m),
                "sim_threads={sim_threads}: prediction for {m:?} drifted"
            );
        }
        assert_eq!(serial.groups.len(), sharded.groups.len());
        for (s, p) in serial.groups.iter().zip(&sharded.groups) {
            assert_eq!(s.stats, p.stats, "group {} stats drifted", s.index);
        }
        assert_eq!(
            serial.cache.len(),
            sharded.cache.len(),
            "same stage sequence"
        );
        for (s, p) in serial.cache.iter().zip(&sharded.cache) {
            assert_eq!(s.stage, p.stage);
            assert_eq!(
                s.fingerprint, p.fingerprint,
                "sim_threads={sim_threads}: `{}` fingerprint moved — the knob \
                 leaked into a cache key",
                s.stage
            );
        }
    }
}

/// Concurrency instrumentation is observational only: `run_instrumented`
/// returns byte-identical `SimStats` (and stats JSON) to the plain `run`
/// at every thread count, and telemetry appears exactly when the engine
/// is sharded.
#[test]
fn instrumentation_never_changes_stats_or_their_json() {
    let scene = SceneId::Bunny.build(1);
    let workload = RtWorkload::full_frame(&scene, 32, 32, trace());
    for sim_threads in [1u32, 4] {
        let mut config = GpuConfig::mobile_soc();
        config.sim_threads = sim_threads;
        let plain = Simulator::new(config.clone()).run(&workload);
        let mut hooks = gpusim::NullHooks;
        let (instrumented, telemetry) =
            Simulator::new(config).run_instrumented(&workload, &mut hooks);
        assert_eq!(
            plain, instrumented,
            "sim_threads={sim_threads}: instrumentation leaked into SimStats"
        );
        assert_eq!(
            plain.to_json().pretty(),
            instrumented.to_json().pretty(),
            "sim_threads={sim_threads}: stats JSON must stay byte-identical"
        );
        assert_eq!(
            telemetry.is_some(),
            sim_threads > 1,
            "telemetry is a sharded-engine record only"
        );
        if let Some(t) = telemetry {
            assert!(!t.shards.is_empty(), "sharded run records per-shard rows");
        }
    }
}

/// A stride-striped scripted workload exercising every op kind, sized by
/// the proptest case.
fn scripted(threads: u64, salt: u64) -> ScriptedWorkload {
    ScriptedWorkload::per_thread(threads, move |i| {
        let i = i.wrapping_add(salt);
        vec![
            Op::RtNode {
                addr: (i % 89) * 32,
            },
            Op::Load {
                addr: i * 48,
                bytes: (i % 3) as u32 * 16 + 4,
            },
            Op::Compute {
                cycles: (i % 5) as u32 + 1,
                insts: (i % 4) as u32 + 1,
            },
            Op::Store {
                addr: i * 24,
                bytes: 8,
            },
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random grid sizes and random shard counts never change `SimStats`.
    #[test]
    fn random_shard_counts_never_change_stats(
        threads in 0u64..600,
        salt in 0u64..1000,
        sim_threads in 2u32..12,
    ) {
        let w = scripted(threads, salt);
        let serial = Simulator::new(GpuConfig::mobile_soc()).run(&w);
        let mut config = GpuConfig::mobile_soc();
        config.sim_threads = sim_threads;
        let sharded = Simulator::new(config).run(&w);
        prop_assert_eq!(serial, sharded);
    }
}
