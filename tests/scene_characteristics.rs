//! Validates that the procedural scenes reproduce the workload
//! characteristics the paper attributes to their LumiBench counterparts —
//! the core claim of the scene substitution documented in DESIGN.md.

use rtcore::scenes::SceneId;
use rtcore::tracer::{profile_costs, TraceConfig};
use zatel::heatmap::Heatmap;

fn cfg() -> TraceConfig {
    TraceConfig {
        samples_per_pixel: 1,
        max_bounces: 3,
        seed: 77,
    }
}

fn heatmap(id: SceneId) -> Heatmap {
    let scene = id.build(77);
    Heatmap::from_costs(&profile_costs(&scene, 48, 48, &cfg()))
}

/// Mean normalized temperature of a scene's heatmap.
fn mean_temp(id: SceneId) -> f32 {
    heatmap(id).mean_temperature()
}

#[test]
fn ship_is_the_coldest_scene() {
    let ship = mean_temp(SceneId::Ship);
    for other in [
        SceneId::Park,
        SceneId::Bunny,
        SceneId::Bath,
        SceneId::Spnza,
        SceneId::Chsnt,
    ] {
        assert!(
            ship < mean_temp(other),
            "SHIP ({ship:.3}) must be colder than {other} ({:.3})",
            mean_temp(other)
        );
    }
}

#[test]
fn bunny_is_warm_and_uniform() {
    // Paper Fig. 12/Table III: BUNNY is the warmest of the tuning trio and
    // uniformly so.
    let trio = [SceneId::Ship, SceneId::Wknd, SceneId::Bunny];
    let temps: Vec<f32> = trio.iter().map(|&id| mean_temp(id)).collect();
    assert!(temps[2] > temps[1], "BUNNY warmer than WKND");
    assert!(temps[1] > temps[0], "WKND warmer than SHIP");
}

#[test]
fn wknd_is_bimodal_warm_cold_mix() {
    // A warm/cold mix = substantial mass at BOTH temperature extremes:
    // the meadow/sky half is cold, the cabin half is hot. BUNNY, by
    // contrast, is warm nearly everywhere (small cold share).
    let shares = |id: SceneId| {
        let hm = heatmap(id);
        let n = hm.values().len() as f64;
        let cold = hm.values().iter().filter(|&&v| v < 0.05).count() as f64 / n;
        let hot = hm.values().iter().filter(|&&v| v > 0.5).count() as f64 / n;
        (cold, hot)
    };
    let (wknd_cold, wknd_hot) = shares(SceneId::Wknd);
    let (bunny_cold, _) = shares(SceneId::Bunny);
    assert!(
        wknd_cold > 0.2,
        "WKND cold share {wknd_cold:.2} too small for a mix"
    );
    assert!(
        wknd_hot > 0.01,
        "WKND hot share {wknd_hot:.3} too small for a mix"
    );
    assert!(
        wknd_cold > bunny_cold + 0.1,
        "WKND ({wknd_cold:.2}) must be far colder-shared than uniform BUNNY ({bunny_cold:.2})"
    );
}

#[test]
fn park_has_no_large_cold_region() {
    // PARK saturates the GPU "like a real-world 1080p workload": the
    // fraction of near-zero-cost pixels must be small.
    let hm = heatmap(SceneId::Park);
    let cold = hm.values().iter().filter(|&&v| v < 0.02).count() as f64 / hm.values().len() as f64;
    assert!(
        cold < 0.05,
        "PARK has {:.0}% near-idle pixels",
        cold * 100.0
    );
}

#[test]
fn sprng_work_is_tiny_compared_to_park() {
    let total = |id: SceneId| {
        let scene = id.build(77);
        profile_costs(&scene, 48, 48, &cfg())
            .values()
            .iter()
            .sum::<u64>()
    };
    let park = total(SceneId::Park);
    let sprng = total(SceneId::Sprng);
    assert!(
        park > sprng * 20,
        "PARK ({park}) should dwarf SPRNG ({sprng}) in total work"
    );
}

#[test]
fn bath_is_the_heaviest_per_pixel_interior() {
    // BATH is the paper's longest-running scene; among the enclosed or
    // object-focused scenes its mean per-pixel cost should rank at the
    // top once path length (bounces against mirrors/glass) is counted.
    let cost = |id: SceneId| {
        let scene = id.build(77);
        let costs = profile_costs(&scene, 48, 48, &cfg());
        costs.values().iter().sum::<u64>() as f64 / costs.values().len() as f64
    };
    let bath = cost(SceneId::Bath);
    assert!(bath > cost(SceneId::Ship), "BATH must out-cost SHIP");
    assert!(bath > cost(SceneId::Sprng), "BATH must out-cost SPRNG");
    assert!(bath > cost(SceneId::Wknd), "BATH must out-cost WKND");
}

#[test]
fn representative_subset_saturates_better_than_the_rest() {
    // Fig. 17 uses the "representative subset" precisely because those
    // scenes still stress a downscaled GPU; their mean temperature should
    // beat the remaining scenes' average.
    let rep: f32 = SceneId::REPRESENTATIVE
        .iter()
        .map(|&id| mean_temp(id))
        .sum::<f32>()
        / SceneId::REPRESENTATIVE.len() as f32;
    let rest: Vec<SceneId> = SceneId::ALL
        .into_iter()
        .filter(|id| !SceneId::REPRESENTATIVE.contains(id))
        .collect();
    let rest_mean: f32 = rest.iter().map(|&id| mean_temp(id)).sum::<f32>() / rest.len() as f32;
    assert!(
        rep > rest_mean,
        "representative subset ({rep:.3}) should run warmer than the rest ({rest_mean:.3})"
    );
}
