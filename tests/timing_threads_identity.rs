//! The timing-sharded commit loop's headline contract, pinned end to
//! end: for every scene and every `timing_threads` × `sim_threads`
//! combination, simulated statistics, serialized stats JSON, hook event
//! streams and stage-cache fingerprints are **bit-identical** to the
//! fully serial engine. `timing_threads` is an execution knob, never a
//! result knob — cross-partition traffic exchanged at epoch seams lands
//! in the documented `(time, sequence, shard-rank, slot)` total order no
//! matter how the OS schedules the partition workers.
//!
//! The interleaving sweep at the bottom (`zatel_schedule_test` builds
//! only) replays the partition seam-exchange protocol over 500+ provably
//! distinct schedules; see `tests/schedule_explore.rs` for the harness.

use proptest::prelude::*;

use gpusim::workload::{Op, ScriptedWorkload};
use minijson::ToJson;
use zatel::{ArtifactCache, RunContext};
use zatel_suite::prelude::*;

fn trace() -> TraceConfig {
    TraceConfig {
        samples_per_pixel: 1,
        max_bounces: 2,
        seed: 7,
    }
}

const ALL_SCENES: [SceneId; 8] = [
    SceneId::Park,
    SceneId::Ship,
    SceneId::Wknd,
    SceneId::Bunny,
    SceneId::Sprng,
    SceneId::Chsnt,
    SceneId::Spnza,
    SceneId::Bath,
];

fn full_frame_stats(id: SceneId, timing_threads: u32, sim_threads: u32) -> SimStats {
    let scene = id.build(1);
    let workload = RtWorkload::full_frame(&scene, 32, 32, trace());
    let mut config = GpuConfig::mobile_soc();
    config.timing_threads = timing_threads;
    config.sim_threads = sim_threads;
    Simulator::new(config).run(&workload)
}

/// The acceptance criterion verbatim: all eight scenes, every
/// `timing_threads` in {1, 2, 4} crossed with `sim_threads` in {1, 4},
/// bit-identical `SimStats` *and* byte-identical stats JSON.
#[test]
fn all_scenes_bit_identical_across_timing_thread_counts() {
    for id in ALL_SCENES {
        let serial = full_frame_stats(id, 1, 1);
        let serial_json = serial.to_json().pretty();
        for sim_threads in [1, 4] {
            for timing_threads in [1, 2, 4] {
                if timing_threads == 1 && sim_threads == 1 {
                    continue; // that run *is* the baseline
                }
                let sharded = full_frame_stats(id, timing_threads, sim_threads);
                assert_eq!(
                    serial,
                    sharded,
                    "{}: timing_threads={timing_threads} sim_threads={sim_threads} \
                     drifted from serial",
                    id.name()
                );
                assert_eq!(
                    serial_json,
                    sharded.to_json().pretty(),
                    "{}: serialized stats must be byte-identical \
                     (timing_threads={timing_threads}, sim_threads={sim_threads})",
                    id.name()
                );
            }
        }
    }
}

/// Hook streams replay in exact serial order under the timing-sharded
/// commit loop: same counters, same per-slice trace, on a real RT
/// workload — including when decode sharding is stacked on top.
#[test]
fn hook_event_stream_identical_under_timing_sharded_commit() {
    let scene = SceneId::Wknd.build(3);
    let workload = RtWorkload::full_frame(&scene, 32, 32, trace());

    let mut serial_hooks = TraceHooks::new(10_000);
    let serial =
        Simulator::new(GpuConfig::mobile_soc()).run_with_hooks(&workload, &mut serial_hooks);

    for (timing_threads, sim_threads) in [(2, 1), (4, 1), (4, 4)] {
        let mut config = GpuConfig::mobile_soc();
        config.timing_threads = timing_threads;
        config.sim_threads = sim_threads;
        let mut sharded_hooks = TraceHooks::new(10_000);
        let sharded = Simulator::new(config).run_with_hooks(&workload, &mut sharded_hooks);

        assert_eq!(serial, sharded);
        assert_eq!(serial_hooks.counters(), sharded_hooks.counters());
        assert_eq!(
            serial_hooks.slices(),
            sharded_hooks.slices(),
            "timing_threads={timing_threads} sim_threads={sim_threads}: trace \
             slices must replay in exact serial order"
        );
    }
}

/// The whole pipeline — prediction values, per-group stats and every
/// stage-cache fingerprint — is unchanged by `timing_threads`, so cached
/// artifacts stay valid when the knob changes between runs.
#[test]
fn pipeline_values_and_fingerprints_identical_under_timing_sharding() {
    let scene = SceneId::Sprng.build(1);
    let run_with = |timing_threads: usize, sim_threads: usize| {
        let mut z = Zatel::new(&scene, GpuConfig::mobile_soc(), 64, 64, trace());
        z.options_mut().parallel = false;
        z.options_mut().sim_threads = Some(sim_threads);
        z.options_mut().timing_threads = Some(timing_threads);
        let cache = ArtifactCache::in_memory();
        z.execute(&RunContext::new().with_cache(&cache))
            .expect("pipeline runs")
    };
    let serial = run_with(1, 1);
    for (timing_threads, sim_threads) in [(2, 1), (4, 1), (2, 4), (4, 4)] {
        let sharded = run_with(timing_threads, sim_threads);
        for m in Metric::ALL {
            assert_eq!(
                serial.value(m),
                sharded.value(m),
                "timing_threads={timing_threads}: prediction for {m:?} drifted"
            );
        }
        assert_eq!(serial.groups.len(), sharded.groups.len());
        for (s, p) in serial.groups.iter().zip(&sharded.groups) {
            assert_eq!(s.stats, p.stats, "group {} stats drifted", s.index);
        }
        assert_eq!(
            serial.cache.len(),
            sharded.cache.len(),
            "same stage sequence"
        );
        for (s, p) in serial.cache.iter().zip(&sharded.cache) {
            assert_eq!(s.stage, p.stage);
            assert_eq!(
                s.fingerprint, p.fingerprint,
                "timing_threads={timing_threads}: `{}` fingerprint moved — the \
                 knob leaked into a cache key",
                s.stage
            );
        }
    }
}

/// Timing telemetry is observational only: `run_instrumented` returns
/// byte-identical `SimStats` to the plain `run`, and the timing record
/// appears exactly when the commit loop is sharded.
#[test]
fn timing_telemetry_never_changes_stats_or_their_json() {
    let scene = SceneId::Bunny.build(1);
    let workload = RtWorkload::full_frame(&scene, 32, 32, trace());
    for timing_threads in [1u32, 4] {
        let mut config = GpuConfig::mobile_soc();
        config.timing_threads = timing_threads;
        let plain = Simulator::new(config.clone()).run(&workload);
        let mut hooks = gpusim::NullHooks;
        let (instrumented, telemetry) =
            Simulator::new(config).run_instrumented(&workload, &mut hooks);
        assert_eq!(
            plain, instrumented,
            "timing_threads={timing_threads}: instrumentation leaked into SimStats"
        );
        assert_eq!(
            plain.to_json().pretty(),
            instrumented.to_json().pretty(),
            "timing_threads={timing_threads}: stats JSON must stay byte-identical"
        );
        let timing = telemetry.as_ref().and_then(|t| t.timing.as_ref());
        assert_eq!(
            timing.is_some(),
            timing_threads > 1,
            "timing telemetry is a sharded-commit record only"
        );
        if let Some(t) = timing {
            assert!(t.worker_count > 0, "sharded run records its worker pool");
            assert!(!t.workers.is_empty(), "sharded run records per-worker rows");
            assert!(
                t.workers.iter().any(|w| !w.partitions.is_empty()),
                "workers record the partitions they own"
            );
        }
    }
}

/// A stride-striped scripted workload exercising every op kind, sized by
/// the proptest case.
fn scripted(threads: u64, salt: u64) -> ScriptedWorkload {
    ScriptedWorkload::per_thread(threads, move |i| {
        let i = i.wrapping_add(salt);
        vec![
            Op::RtNode {
                addr: (i % 89) * 32,
            },
            Op::Load {
                addr: i * 48,
                bytes: (i % 3) as u32 * 16 + 4,
            },
            Op::Compute {
                cycles: (i % 5) as u32 + 1,
                insts: (i % 4) as u32 + 1,
            },
            Op::Store {
                addr: i * 24,
                bytes: 8,
            },
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random grid sizes and random timing/decode shard counts never
    /// change `SimStats`.
    #[test]
    fn random_timing_shard_counts_never_change_stats(
        threads in 0u64..600,
        salt in 0u64..1000,
        timing_threads in 2u32..12,
        sim_threads in 1u32..6,
    ) {
        let w = scripted(threads, salt);
        let serial = Simulator::new(GpuConfig::mobile_soc()).run(&w);
        let mut config = GpuConfig::mobile_soc();
        config.timing_threads = timing_threads;
        config.sim_threads = sim_threads;
        let sharded = Simulator::new(config).run(&w);
        prop_assert_eq!(serial, sharded);
    }
}

/// Interleaving exploration for the partition seam-exchange protocol
/// (`--cfg zatel_schedule_test` builds only): the cooperative scheduler
/// elects the timing workers' order at every seam acquisition, and 500+
/// provably distinct schedules (distinct election-trace hashes) all
/// produce bit-identical stats and hook streams.
///
/// Run with: `RUSTFLAGS='--cfg zatel_schedule_test' cargo test --test
/// timing_threads_identity`.
#[cfg(zatel_schedule_test)]
mod seam_exchange_schedules {
    use std::collections::HashSet;

    use gpusim::schedule;
    use gpusim::workload::{Op, ScriptedWorkload};
    use gpusim::{GpuConfig, Simulator, TraceHooks};

    /// Memory-heavy and branchy: enough loads/stores per partition that
    /// seam exchanges, deferred-request flushes and worker wake-ups
    /// genuinely race, small enough that one scheduled run stays fast.
    fn workload() -> ScriptedWorkload {
        ScriptedWorkload::per_thread(192, |i| {
            vec![
                Op::Load {
                    addr: i * 128,
                    bytes: 32,
                },
                Op::RtNode {
                    addr: (i % 47) * 32,
                },
                Op::Store {
                    addr: i * 96,
                    bytes: 16,
                },
                Op::Load {
                    addr: (i % 31) * 4096,
                    bytes: 16,
                },
            ]
        })
    }

    fn timing_sharded_cfg() -> GpuConfig {
        let mut cfg = GpuConfig::mobile_soc();
        cfg.timing_threads = 4; // commit loop + 3 partition workers
        cfg
    }

    fn scheduled_run(seed: u64) -> (gpusim::stats::SimStats, TraceHooks, schedule::ScheduleTrace) {
        let w = workload();
        schedule::install(seed);
        let mut hooks = TraceHooks::new(400);
        let stats = Simulator::new(timing_sharded_cfg()).run_with_hooks(&w, &mut hooks);
        let trace = schedule::uninstall().expect("scheduler was installed");
        (stats, hooks, trace)
    }

    #[test]
    fn five_hundred_distinct_seam_interleavings_stay_bit_identical() {
        let w = workload();
        let mut serial_hooks = TraceHooks::new(400);
        let serial = Simulator::new(GpuConfig::mobile_soc()).run_with_hooks(&w, &mut serial_hooks);

        let mut hashes = HashSet::new();
        let mut seeds_run = 0u64;
        for seed in 0..600u64 {
            let (stats, hooks, trace) = scheduled_run(seed);
            assert_eq!(serial, stats, "seed {seed}: stats must be bit-identical");
            assert_eq!(
                serial_hooks.counters(),
                hooks.counters(),
                "seed {seed}: hook counters must be bit-identical"
            );
            assert_eq!(
                serial_hooks.slices(),
                hooks.slices(),
                "seed {seed}: trace slices must replay in exact serial order"
            );
            assert!(
                trace.steps > 0,
                "seed {seed}: the run must pass through schedule points"
            );
            hashes.insert(trace.hash);
            seeds_run += 1;
            if hashes.len() >= 500 {
                break;
            }
        }
        assert!(
            hashes.len() >= 500,
            "only {} distinct interleavings in {} seeded runs — the seam \
             exchange has lost its scheduling freedom or the trace hash \
             collapsed",
            hashes.len(),
            seeds_run
        );
    }

    #[test]
    fn seam_exchange_replays_deterministically_per_seed() {
        let (stats_a, hooks_a, trace_a) = scheduled_run(0x5EA0);
        let (stats_b, hooks_b, trace_b) = scheduled_run(0x5EA0);
        assert_eq!(trace_a, trace_b, "equal seeds must replay equal schedules");
        assert_eq!(stats_a, stats_b);
        assert_eq!(hooks_a.counters(), hooks_b.counters());
        assert_eq!(hooks_a.slices(), hooks_b.slices());
    }

    #[test]
    fn timing_and_decode_sharding_survive_scheduling_together() {
        let w = workload();
        let mut serial_hooks = TraceHooks::new(400);
        let serial = Simulator::new(GpuConfig::mobile_soc()).run_with_hooks(&w, &mut serial_hooks);
        let mut cfg = timing_sharded_cfg();
        cfg.sim_threads = 3; // 2 decode shards stacked on 3 timing workers
        for seed in [1u64, 7, 42] {
            schedule::install(seed);
            let mut hooks = TraceHooks::new(400);
            let stats = Simulator::new(cfg.clone()).run_with_hooks(&w, &mut hooks);
            let trace = schedule::uninstall().expect("scheduler was installed");
            assert!(trace.steps > 0);
            assert_eq!(serial, stats, "seed {seed}: stacked sharding drifted");
            assert_eq!(serial_hooks.counters(), hooks.counters());
            assert_eq!(serial_hooks.slices(), hooks.slices());
        }
    }
}
