//! Integration tests guarding the componentized engine and the shared
//! executor layer (C-ENGINE):
//!
//! * group simulation must produce **bit-identical** `SimStats` whether it
//!   runs serially or on any number of `sim_executor` workers;
//! * the `SimHooks` seam must be observation-only: `NullHooks` and
//!   `TraceHooks` runs match a plain run exactly;
//! * a golden-stats table over all eight scenes anchors the engine's
//!   timing behaviour against silent drift in future refactors.

use zatel_suite::prelude::*;

fn trace() -> TraceConfig {
    TraceConfig {
        samples_per_pixel: 1,
        max_bounces: 2,
        seed: 7,
    }
}

#[test]
fn serial_and_parallel_group_stats_are_bit_identical() {
    let scene = SceneId::Sprng.build(1);
    let run_with = |parallel: bool, jobs: Option<usize>| {
        let mut z = Zatel::new(&scene, GpuConfig::mobile_soc(), 64, 64, trace());
        z.options_mut().parallel = parallel;
        z.options_mut().jobs = jobs;
        z.run().expect("pipeline runs")
    };
    let serial = run_with(false, None);
    assert_eq!(serial.groups.len(), 4, "mobile SoC natural K");
    for variant in [
        run_with(true, None),
        run_with(true, Some(2)),
        run_with(true, Some(16)),
    ] {
        assert_eq!(serial.groups.len(), variant.groups.len());
        for (s, p) in serial.groups.iter().zip(&variant.groups) {
            assert_eq!(s.index, p.index);
            assert_eq!(
                s.stats, p.stats,
                "group {} SimStats must be bit-identical",
                s.index
            );
        }
        for m in Metric::ALL {
            assert_eq!(serial.value(m), variant.value(m));
        }
    }
}

#[test]
fn null_hooks_run_matches_plain_run_exactly() {
    let scene = SceneId::Wknd.build(3);
    let workload = RtWorkload::full_frame(&scene, 32, 32, trace());
    let sim = Simulator::new(GpuConfig::mobile_soc());
    let plain = sim.run(&workload);
    let hooked = sim.run_with_hooks(&workload, &mut NullHooks);
    assert_eq!(
        plain, hooked,
        "NullHooks must add zero counters and zero perturbation"
    );
    let mut tracing = TraceHooks::new(50_000);
    let traced = sim.run_with_hooks(&workload, &mut tracing);
    assert_eq!(plain, traced, "TraceHooks must observe without perturbing");
    assert_eq!(tracing.counters().phases(), plain.warp_issues);
}

/// Engine fingerprint of a scene: a cross-section of counters that any
/// change to scheduling, caching, DRAM or RT timing would move.
fn fingerprint(id: SceneId) -> [u64; 8] {
    let scene = id.build(1);
    let workload = RtWorkload::full_frame(&scene, 32, 32, trace());
    let s = Simulator::new(GpuConfig::mobile_soc()).run(&workload);
    [
        s.cycles,
        s.instructions,
        s.warp_issues,
        s.l1_accesses,
        s.l1_misses,
        s.l2_misses,
        s.dram_transactions,
        s.rt_active_rays,
    ]
}

/// Golden engine fingerprints for all eight scenes (32×32, 1 spp,
/// 2 bounces, seed 7, Mobile SoC). Captured from the componentized engine;
/// regenerate with `cargo test -q golden_stats -- --ignored --nocapture`
/// after an *intentional* timing-model change.
const GOLDEN: [(SceneId, [u64; 8]); 8] = [
    (
        SceneId::Park,
        [77355, 508818, 10966, 124463, 36491, 10705, 11685, 156474],
    ),
    (
        SceneId::Ship,
        [16357, 136592, 2734, 12743, 1247, 585, 1012, 33382],
    ),
    (
        SceneId::Wknd,
        [68224, 300270, 8781, 64585, 9383, 3957, 4634, 89193],
    ),
    (
        SceneId::Bunny,
        [62313, 572887, 11515, 136356, 29046, 7938, 8944, 175693],
    ),
    (SceneId::Sprng, [898, 27765, 227, 136, 24, 3, 199, 1356]),
    (
        SceneId::Chsnt,
        [51891, 279164, 7795, 62584, 10940, 4263, 5033, 82009],
    ),
    (
        SceneId::Spnza,
        [55537, 574940, 10300, 121225, 13894, 3181, 4163, 172765],
    ),
    (
        SceneId::Bath,
        [25414, 544003, 7908, 84694, 4333, 1614, 2600, 158333],
    ),
];

#[test]
fn golden_stats_all_eight_scenes() {
    for (id, expected) in GOLDEN {
        let got = fingerprint(id);
        assert_eq!(
            got,
            expected,
            "{}: engine fingerprint drifted — if the timing model changed \
             intentionally, regenerate the goldens (see GOLDEN docs)",
            id.name()
        );
    }
}

#[test]
#[ignore = "golden regeneration helper; run with --ignored --nocapture"]
fn golden_stats_print() {
    for (id, _) in GOLDEN {
        println!("    (SceneId::{id:?}, {:?}),", fingerprint(id));
    }
}
