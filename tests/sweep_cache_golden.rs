//! Golden test for the artifact cache: a sweep served from a warm cache
//! (memory or disk) must be *byte-identical* to cold per-point runs — the
//! cache may only change where artifacts come from, never what they are.

use std::sync::Arc;

use zatel::{ArtifactCache, CacheOutcome, SweepDriver, SweepSpec, Zatel};
use zatel_suite::prelude::*;

const SEED: u64 = 7;
const RES: u32 = 48;

fn base_zatel(scene: &rtcore::scene::Scene) -> Zatel<'_> {
    let trace = TraceConfig {
        samples_per_pixel: 1,
        max_bounces: 4,
        seed: SEED,
    };
    Zatel::new(scene, GpuConfig::mobile_soc(), RES, RES, trace)
}

fn spec() -> SweepSpec {
    SweepSpec::matrix(&[1, 2], &[0.3, 0.6])
}

/// The bit-exact signature of a prediction: every predicted metric (as raw
/// f64 bits) plus every group's full `SimStats`.
fn signature(pred: &zatel::Prediction) -> (Vec<u64>, Vec<gpusim::SimStats>) {
    let metrics = Metric::ALL
        .iter()
        .map(|&m| pred.value(m).to_bits())
        .collect();
    let stats = pred.groups.iter().map(|g| g.stats).collect();
    (metrics, stats)
}

#[test]
fn warm_memory_cache_matches_cold_per_point_runs() {
    let scene = SceneId::Sprng.build(SEED);

    // Cold baseline: each point is a standalone pipeline run with its own
    // private cache (every stage computed from scratch).
    let driver = SweepDriver::new(base_zatel(&scene));
    let cold: Vec<_> = driver
        .run(&spec())
        .expect("cold sweep runs")
        .iter()
        .map(|o| signature(&o.prediction))
        .collect();

    // Warm run: same driver shape, but the cache was already filled by a
    // first pass.
    let cache = Arc::new(ArtifactCache::in_memory());
    let warm_driver = SweepDriver::new(base_zatel(&scene)).with_cache(Arc::clone(&cache));
    warm_driver.run(&spec()).expect("priming sweep runs");
    let outcomes = warm_driver.run(&spec()).expect("warm sweep runs");

    for (outcome, cold_sig) in outcomes.iter().zip(&cold) {
        assert_eq!(
            &signature(&outcome.prediction),
            cold_sig,
            "warm-cache point '{}' diverged from its cold run",
            outcome.point.label
        );
        // The warm pass recomputes nothing cacheable.
        for record in &outcome.prediction.cache {
            assert!(
                record.outcome.is_hit() || record.outcome == CacheOutcome::Uncacheable,
                "stage '{}' recomputed on a warm cache",
                record.stage
            );
        }
    }
}

#[test]
fn disk_cache_round_trips_identically_across_processes() {
    let scene = SceneId::Sprng.build(SEED);
    let dir = std::env::temp_dir().join("zatel-sweep-cache-golden");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // First "process": cold, fills the on-disk layer.
    let first =
        SweepDriver::new(base_zatel(&scene)).with_cache(Arc::new(ArtifactCache::with_disk(&dir)));
    let cold: Vec<_> = first
        .run(&spec())
        .expect("cold sweep runs")
        .iter()
        .map(|o| signature(&o.prediction))
        .collect();
    assert_eq!(first.cache().stats().disk_hits, 0, "first run is cold");

    // Second "process": a fresh cache object over the same directory —
    // nothing in memory, everything deserialized from disk.
    let second =
        SweepDriver::new(base_zatel(&scene)).with_cache(Arc::new(ArtifactCache::with_disk(&dir)));
    let outcomes = second.run(&spec()).expect("warm sweep runs");
    assert!(
        second.cache().stats().disk_hits > 0,
        "second run loads artifacts from disk: {:?}",
        second.cache().stats()
    );

    for (outcome, cold_sig) in outcomes.iter().zip(&cold) {
        assert_eq!(
            &signature(&outcome.prediction),
            cold_sig,
            "disk-cache point '{}' diverged after serialization round trip",
            outcome.point.label
        );
    }
}
