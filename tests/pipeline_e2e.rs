//! End-to-end integration tests: the full Zatel pipeline against the full
//! reference simulation, across crates.

use zatel_suite::prelude::*;

fn trace() -> TraceConfig {
    TraceConfig {
        samples_per_pixel: 1,
        max_bounces: 3,
        seed: 17,
    }
}

#[test]
fn zatel_beats_reference_on_simulated_work() {
    // Zatel's whole point: fewer simulated cycles of work per group.
    let scene = SceneId::Park.build(5);
    let z = Zatel::new(&scene, GpuConfig::mobile_soc(), 64, 64, trace());
    let pred = z.run().expect("pipeline runs");
    let reference = z.run_reference();
    // Each group simulates far less than the full frame.
    for g in &pred.groups {
        assert!(
            g.stats.cycles < reference.stats.cycles,
            "group {} simulated {} cycles, reference {}",
            g.index,
            g.stats.cycles,
            reference.stats.cycles
        );
        assert!(g.traced_fraction > 0.0 && g.traced_fraction <= 1.0);
    }
}

#[test]
fn prediction_is_deterministic_end_to_end() {
    let scene = SceneId::Wknd.build(6);
    let z = Zatel::new(&scene, GpuConfig::mobile_soc(), 64, 64, trace());
    let a = z.run().expect("first run");
    let b = z.run().expect("second run");
    for m in Metric::ALL {
        assert_eq!(a.value(m), b.value(m), "{m} must be reproducible");
    }
    // Group stats identical too.
    for (ga, gb) in a.groups.iter().zip(&b.groups) {
        assert_eq!(ga.stats, gb.stats);
    }
}

#[test]
fn bunny_cycles_error_within_paper_ballpark() {
    // BUNNY is the paper's best-case scene (uniformly warm). At small test
    // resolution we accept a loose bound; see EXPERIMENTS.md for the
    // at-scale numbers.
    let scene = SceneId::Bunny.build(7);
    let z = Zatel::new(&scene, GpuConfig::mobile_soc(), 96, 96, trace());
    let pred = z.run().expect("pipeline runs");
    let reference = z.run_reference();
    let err =
        zatel::metrics::abs_error(pred.value(Metric::SimCycles), reference.stats.cycles as f64);
    assert!(err < 0.5, "BUNNY cycles error {err} out of bounds");
}

#[test]
fn sprng_low_percentage_overestimates_cycles() {
    // The paper's Fig. 13 special case: SPRNG underutilizes the GPU, so
    // tracing 10% and linearly extrapolating grossly overestimates.
    let scene = SceneId::Sprng.build(8);
    let mut z = Zatel::new(&scene, GpuConfig::rtx_2060(), 96, 96, trace());
    z.options_mut().downscale = DownscaleMode::NoDownscale;
    z.options_mut().selection.percent_override = Some(0.1);
    let pred = z.run().expect("pipeline runs");
    let reference = z.run_reference();
    let predicted = pred.value(Metric::SimCycles);
    let actual = reference.stats.cycles as f64;
    assert!(
        predicted > actual * 1.5,
        "expected gross overestimate: predicted {predicted}, actual {actual}"
    );
}

#[test]
fn speedup_grows_as_fraction_shrinks() {
    let scene = SceneId::Chsnt.build(9);
    let mut z = Zatel::new(&scene, GpuConfig::mobile_soc(), 96, 96, trace());
    z.options_mut().downscale = DownscaleMode::NoDownscale;
    let mut walls = Vec::new();
    for p in [0.2, 0.8] {
        z.options_mut().selection.percent_override = Some(p);
        let pred = z.run().expect("pipeline runs");
        walls.push(pred.sim_wall);
    }
    assert!(
        walls[0] < walls[1],
        "20% trace ({:?}) must be faster than 80% ({:?})",
        walls[0],
        walls[1]
    );
}

#[test]
fn regression_and_linear_both_predict_same_order_of_magnitude() {
    let scene = SceneId::Wknd.build(10);
    let mut z = Zatel::new(&scene, GpuConfig::mobile_soc(), 64, 64, trace());
    z.options_mut().downscale = DownscaleMode::NoDownscale;
    let reg = z
        .run_with_regression([0.2, 0.3, 0.4])
        .expect("regression runs");
    z.options_mut().selection.percent_override = Some(0.4);
    let lin = z.run().expect("linear runs");
    let (r, l) = (reg.value(Metric::SimCycles), lin.value(Metric::SimCycles));
    assert!(r > 0.0 && l > 0.0);
    assert!(
        r / l < 10.0 && l / r < 10.0,
        "regression {r} vs linear {l} diverged"
    );
}

#[test]
fn all_scenes_run_through_the_pipeline() {
    for id in SceneId::ALL {
        let scene = id.build(11);
        let z = Zatel::new(&scene, GpuConfig::mobile_soc(), 64, 64, trace());
        let pred = z.run().unwrap_or_else(|e| panic!("{id}: {e}"));
        assert!(
            pred.value(Metric::SimCycles) > 0.0,
            "{id} predicts zero cycles"
        );
        assert!(pred.value(Metric::Ipc) > 0.0, "{id} predicts zero IPC");
    }
}
