//! JSON round-trip tests for the data-structure types (C-SERDE): configs
//! and statistics survive JSON serialization unchanged, which the CLI's
//! custom-config files and the bench harness's result files rely on.
//!
//! Serialization goes through the workspace's `minijson` crate (the build
//! environment is offline, so serde/serde_json are unavailable); every
//! type implements `ToJson`/`FromJson` by hand.

use minijson::{FromJson, ToJson, Value};
use zatel_suite::prelude::*;

/// Serializes to a JSON string and parses back, like the old
/// `serde_json::from_str(&serde_json::to_string(..))` pattern.
fn roundtrip<T: ToJson + FromJson>(value: &T) -> T {
    let text = value.to_json().to_string();
    let parsed = Value::parse(&text).expect("printer emits valid JSON");
    T::from_json(&parsed).expect("deserialize")
}

#[test]
fn gpu_config_roundtrips() {
    for config in [GpuConfig::mobile_soc(), GpuConfig::rtx_2060()] {
        let back = roundtrip(&config);
        assert_eq!(config, back);
        back.validate().expect("still valid");
    }
}

#[test]
fn modified_config_roundtrips() {
    let mut config = GpuConfig::rtx_2060();
    config.name = "Custom".into();
    config.num_sms = 60;
    config.rt_lanes_per_cycle = 16;
    assert_eq!(config, roundtrip(&config));
}

#[test]
fn sim_stats_roundtrip() {
    let scene = SceneId::Sprng.build(1);
    let trace = TraceConfig {
        samples_per_pixel: 1,
        max_bounces: 2,
        seed: 3,
    };
    let stats =
        Simulator::new(GpuConfig::mobile_soc()).run(&RtWorkload::full_frame(&scene, 16, 16, trace));
    let back = roundtrip(&stats);
    assert_eq!(stats, back);
    assert_eq!(stats.ipc(), back.ipc());
}

#[test]
fn trace_config_roundtrip() {
    let t = TraceConfig {
        samples_per_pixel: 4,
        max_bounces: 7,
        seed: 0xDEADBEEF,
    };
    assert_eq!(t, roundtrip(&t));
}

#[test]
fn metric_enum_roundtrip() {
    for m in Metric::ALL {
        assert_eq!(m, roundtrip(&m));
    }
}

#[test]
fn pretty_printed_config_parses_too() {
    let config = GpuConfig::mobile_soc();
    let pretty = config.to_json().pretty();
    let parsed = Value::parse(&pretty).expect("pretty output is valid JSON");
    assert_eq!(GpuConfig::from_json(&parsed).unwrap(), config);
}

#[test]
fn downscale_mode_roundtrips() {
    use zatel::DownscaleMode;
    for mode in [
        DownscaleMode::Natural,
        DownscaleMode::NoDownscale,
        DownscaleMode::Factor(4),
    ] {
        assert_eq!(mode, roundtrip(&mode));
    }
    // Factor(1) normalizes to NoDownscale on the way back in (they are
    // the same pipeline).
    assert_eq!(
        roundtrip(&DownscaleMode::Factor(1)),
        DownscaleMode::NoDownscale
    );
}

#[test]
fn division_and_distribution_roundtrip() {
    use zatel::{Distribution, DivisionMethod};
    for division in [
        DivisionMethod::Coarse,
        DivisionMethod::default_fine(),
        DivisionMethod::Fine {
            chunk_width: 16,
            chunk_height: 4,
        },
    ] {
        assert_eq!(division, roundtrip(&division));
    }
    for dist in [
        Distribution::Uniform,
        Distribution::LinTmp,
        Distribution::ExpTmp,
    ] {
        assert_eq!(dist, roundtrip(&dist));
    }
}

#[test]
fn selection_options_roundtrip() {
    use zatel::{Distribution, SelectionOptions};
    let mut opts = SelectionOptions::default();
    assert_eq!(opts, roundtrip(&opts));
    opts.distribution = Distribution::ExpTmp;
    opts.clamp = (0.15, 0.85);
    opts.percent_override = Some(0.4);
    opts.percent_cap = Some(0.9);
    opts.seed = 0xC0FFEE;
    assert_eq!(opts, roundtrip(&opts));
}

#[test]
fn zatel_options_roundtrip() {
    use zatel::{DivisionMethod, DownscaleMode, ZatelOptions};
    let mut opts = ZatelOptions::default();
    assert_eq!(opts, roundtrip(&opts));
    opts.division = DivisionMethod::Coarse;
    opts.quant_colors = 12;
    opts.downscale = DownscaleMode::Factor(3);
    opts.parallel = false;
    opts.jobs = Some(5);
    opts.sim_threads = Some(4);
    opts.trace_slice_cycles = Some(50_000);
    opts.observe = Some(obs::ObserveOptions {
        timeline: true,
        ..obs::ObserveOptions::default()
    });
    assert_eq!(opts, roundtrip(&opts));
}

#[test]
fn sweep_spec_roundtrip() {
    use zatel::{DownscaleMode, SweepPointSpec, SweepSpec};
    let mut spec = SweepSpec::matrix(&[1, 2, 4], &[0.1, 0.5]);
    spec.points.push(SweepPointSpec {
        downscale: Some(DownscaleMode::Natural),
        clamp: Some((0.2, 0.7)),
        ..SweepPointSpec::named("clamped natural")
    });
    assert_eq!(spec, roundtrip(&spec));

    // A bare array with no labels parses too; labels are derived.
    let parsed =
        SweepSpec::from_json(&Value::parse(r#"[{"percent": 0.3}, {"downscale": 2}]"#).unwrap())
            .expect("bare array spec");
    assert_eq!(parsed.points.len(), 2);
    assert_eq!(parsed.points[0].label, "p=30%");
    assert_eq!(parsed.points[1].label, "K=2");
}

#[test]
fn bvh_roundtrips_and_still_traverses() {
    use rtcore::math::{Ray, Vec3};
    let scene = SceneId::Sprng.build(1);
    let back = roundtrip(scene.bvh());
    assert_eq!(scene.bvh(), &back);
    let ray = Ray::new(Vec3::new(0.0, 0.0, -10.0), Vec3::Z);
    let (a, _) = scene.bvh().intersect(&ray, scene.primitives());
    let (b, _) = back.intersect(&ray, scene.primitives());
    assert_eq!(a.map(|h| h.primitive), b.map(|h| h.primitive));
}
