//! Serde round-trip tests for the data-structure types (C-SERDE): configs
//! and statistics survive JSON serialization unchanged, which the CLI's
//! custom-config files and the bench harness's result files rely on.

use zatel_suite::prelude::*;

#[test]
fn gpu_config_roundtrips() {
    for config in [GpuConfig::mobile_soc(), GpuConfig::rtx_2060()] {
        let json = serde_json::to_string(&config).expect("serialize");
        let back: GpuConfig = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(config, back);
        back.validate().expect("still valid");
    }
}

#[test]
fn modified_config_roundtrips() {
    let mut config = GpuConfig::rtx_2060();
    config.name = "Custom".into();
    config.num_sms = 60;
    config.rt_lanes_per_cycle = 16;
    let back: GpuConfig =
        serde_json::from_str(&serde_json::to_string(&config).unwrap()).unwrap();
    assert_eq!(config, back);
}

#[test]
fn sim_stats_roundtrip() {
    let scene = SceneId::Sprng.build(1);
    let trace = TraceConfig { samples_per_pixel: 1, max_bounces: 2, seed: 3 };
    let stats = Simulator::new(GpuConfig::mobile_soc())
        .run(&RtWorkload::full_frame(&scene, 16, 16, trace));
    let back: SimStats = serde_json::from_str(&serde_json::to_string(&stats).unwrap()).unwrap();
    assert_eq!(stats, back);
    assert_eq!(stats.ipc(), back.ipc());
}

#[test]
fn trace_config_roundtrip() {
    let t = TraceConfig { samples_per_pixel: 4, max_bounces: 7, seed: 0xDEADBEEF };
    let back: TraceConfig = serde_json::from_str(&serde_json::to_string(&t).unwrap()).unwrap();
    assert_eq!(t, back);
}

#[test]
fn metric_enum_roundtrip() {
    for m in Metric::ALL {
        let back: Metric = serde_json::from_str(&serde_json::to_string(&m).unwrap()).unwrap();
        assert_eq!(m, back);
    }
}

#[test]
fn bvh_roundtrips_and_still_traverses() {
    use rtcore::bvh::Bvh;
    use rtcore::math::{Ray, Vec3};
    let scene = SceneId::Sprng.build(1);
    let json = serde_json::to_string(scene.bvh()).expect("serialize BVH");
    let back: Bvh = serde_json::from_str(&json).expect("deserialize BVH");
    let ray = Ray::new(Vec3::new(0.0, 0.0, -10.0), Vec3::Z);
    let (a, _) = scene.bvh().intersect(&ray, scene.primitives());
    let (b, _) = back.intersect(&ray, scene.primitives());
    assert_eq!(a.map(|h| h.primitive), b.map(|h| h.primitive));
}
