//! Property tests of the gpusim cache model against an oracle LRU
//! implementation built on `VecDeque`.

use std::collections::VecDeque;

use gpusim::config::CacheConfig;
use gpusim::mem::{Cache, Probe};
use proptest::prelude::*;

/// Straightforward oracle: a fully-associative LRU set as an ordered list
/// (front = most recent). Only models a single set, so we drive the real
/// cache with a fully-associative geometry.
struct OracleLru {
    capacity: usize,
    lines: VecDeque<u64>,
}

impl OracleLru {
    fn new(capacity: usize) -> Self {
        OracleLru {
            capacity,
            lines: VecDeque::new(),
        }
    }

    /// Returns `true` on hit; updates recency / inserts on miss.
    fn access(&mut self, line: u64) -> bool {
        if let Some(pos) = self.lines.iter().position(|&l| l == line) {
            self.lines.remove(pos);
            self.lines.push_front(line);
            true
        } else {
            if self.lines.len() == self.capacity {
                self.lines.pop_back();
            }
            self.lines.push_front(line);
            false
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Fully-associative cache hit/miss sequence matches the oracle LRU
    /// exactly, for arbitrary access streams and capacities.
    #[test]
    fn fully_associative_matches_oracle(
        capacity_lines in 1u64..32,
        accesses in prop::collection::vec(0u64..64, 1..300),
    ) {
        let cfg = CacheConfig {
            bytes: capacity_lines * 128,
            ways: 0,
            line_bytes: 128,
            latency: 1,
        };
        let mut cache = Cache::new("prop", cfg);
        let mut oracle = OracleLru::new(capacity_lines as usize);
        for (t, &line) in accesses.iter().enumerate() {
            let expected_hit = oracle.access(line);
            let got = cache.probe(line, t as u64);
            match got {
                Probe::Hit { .. } => prop_assert!(expected_hit, "false hit on line {line} at {t}"),
                Probe::Miss => {
                    prop_assert!(!expected_hit, "false miss on line {line} at {t}");
                    cache.fill(line, t as u64);
                }
            }
        }
        // Aggregate counters agree with the replayed stream.
        prop_assert_eq!(cache.accesses(), accesses.len() as u64);
    }

    /// Set-associative mapping isolates sets: accesses to set A never evict
    /// lines of set B.
    #[test]
    fn sets_are_isolated(
        ways in 1u32..4,
        sets_pow in 1u32..4,
        victim_line in 0u64..8,
        noise in prop::collection::vec(0u64..512, 0..200),
    ) {
        let sets = 1u64 << sets_pow;
        let cfg = CacheConfig {
            bytes: sets * ways as u64 * 128,
            ways,
            line_bytes: 128,
            latency: 1,
        };
        let mut cache = Cache::new("prop", cfg);
        // Install the victim.
        prop_assert_eq!(cache.probe(victim_line, 0), Probe::Miss);
        cache.fill(victim_line, 0);
        // Hammer only lines of OTHER sets.
        let victim_set = victim_line % sets;
        let mut t = 1u64;
        for n in noise {
            let line = if n % sets == victim_set { n + 1 } else { n };
            if line % sets == victim_set {
                continue;
            }
            if cache.probe(line, t) == Probe::Miss {
                cache.fill(line, t);
            }
            t += 1;
        }
        // The victim must still be resident.
        prop_assert!(
            matches!(cache.probe(victim_line, t), Probe::Hit { .. }),
            "victim line evicted by other sets"
        );
    }

    /// Miss rate is monotone non-increasing in capacity for a repeated
    /// cyclic scan (a classic sanity property; holds for LRU on cyclic
    /// patterns at these sizes).
    #[test]
    fn bigger_cache_never_hurts_cyclic_scans(span in 1u64..40, rounds in 1usize..6) {
        let miss_rate = |lines: u64| {
            let cfg = CacheConfig { bytes: lines * 128, ways: 0, line_bytes: 128, latency: 1 };
            let mut cache = Cache::new("prop", cfg);
            let mut t = 0u64;
            for _ in 0..rounds {
                for line in 0..span {
                    if cache.probe(line, t) == Probe::Miss {
                        cache.fill(line, t);
                    }
                    t += 1;
                }
            }
            cache.miss_rate()
        };
        prop_assert!(miss_rate(64) <= miss_rate(8) + 1e-12);
    }
}
