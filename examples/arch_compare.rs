//! Architecture comparison: the paper's core use case — an architect wants
//! to know how a *new* GPU design performs on a big scene without waiting
//! for the full simulation. We compare Mobile SoC, RTX 2060 and a
//! hypothetical "RTX-wide" (double the RT throughput) using Zatel, then
//! validate the predicted ranking against full simulations.
//!
//! ```text
//! cargo run --release --example arch_compare [scene] [resolution]
//! ```

use std::env;

use zatel_suite::prelude::*;

fn configs() -> Vec<GpuConfig> {
    let mut wide = GpuConfig::rtx_2060();
    wide.name = "RTX-wide-RT".into();
    wide.rt_max_warps = 8;
    wide.rt_lanes_per_cycle = 8;
    vec![GpuConfig::mobile_soc(), GpuConfig::rtx_2060(), wide]
}

fn main() -> Result<(), zatel::ZatelError> {
    let args: Vec<String> = env::args().collect();
    let scene_id = args
        .get(1)
        .map(|s| rtcore::scenes::by_name(s).expect("unknown scene name"))
        .unwrap_or(SceneId::Chsnt);
    let res: u32 = args
        .get(2)
        .map(|s| s.parse().expect("bad resolution"))
        .unwrap_or(128);

    let scene = scene_id.build(42);
    let trace = TraceConfig {
        samples_per_pixel: 2,
        max_bounces: 4,
        seed: 7,
    };
    println!(
        "Comparing architectures on {} at {res}x{res}\n",
        scene.name()
    );

    let mut rows: Vec<(String, zatel::Prediction, zatel::Reference)> = Vec::new();
    for config in configs() {
        let zatel = Zatel::new(&scene, config.clone(), res, res, trace);
        let pred = zatel.run()?;
        let reference = zatel.run_reference();
        rows.push((config.name.clone(), pred, reference));
    }

    println!(
        "{:<14} {:>14} {:>14} {:>10} {:>10} {:>9}",
        "config", "Zatel cycles", "ref cycles", "Zatel IPC", "ref IPC", "speedup"
    );
    for (name, pred, reference) in &rows {
        println!(
            "{:<14} {:>14.0} {:>14} {:>10.2} {:>10.2} {:>8.1}x",
            name,
            pred.value(Metric::SimCycles),
            reference.stats.cycles,
            pred.value(Metric::Ipc),
            reference.stats.ipc(),
            pred.speedup_concurrent(reference),
        );
    }

    // Did Zatel rank the architectures the same way the full sim did?
    let rank = |keys: Vec<f64>| -> String {
        let mut idx: Vec<usize> = (0..rows.len()).collect();
        idx.sort_by(|&a, &b| keys[a].partial_cmp(&keys[b]).expect("finite"));
        idx.iter()
            .map(|&i| rows[i].0.as_str())
            .collect::<Vec<_>>()
            .join(" < ")
    };
    println!(
        "\npredicted performance order (fewer cycles = faster): {}",
        rank(rows.iter().map(|r| r.1.value(Metric::SimCycles)).collect())
    );
    println!(
        "reference performance order:                          {}",
        rank(rows.iter().map(|r| r.2.stats.cycles as f64).collect())
    );
    println!("\nZatel's job is exactly this: getting the *ranking and rough ratios* right at ~10x less simulation time.");
    Ok(())
}
