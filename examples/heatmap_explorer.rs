//! Heatmap explorer: regenerates the paper's visual artifacts (Figs. 4, 7
//! and 8) as PPM images — the execution-time heatmap, its K-means-quantized
//! version, a fine-grained group's pixel view and a selection mask — plus
//! the rendered frame itself.
//!
//! ```text
//! cargo run --release --example heatmap_explorer [scene] [resolution] [out_dir]
//! ```

use std::env;
use std::path::PathBuf;

use rtcore::image::Image;
use rtcore::math::Vec3;
use rtcore::tracer::render;
use zatel::heatmap::Heatmap;
use zatel::partition::{divide, DivisionMethod};
use zatel::quantize::QuantizedHeatmap;
use zatel::select::{select_pixels, SelectionOptions};
use zatel_suite::prelude::*;

fn main() -> std::io::Result<()> {
    let args: Vec<String> = env::args().collect();
    let scene_id = args
        .get(1)
        .map(|s| rtcore::scenes::by_name(s).expect("unknown scene name"))
        .unwrap_or(SceneId::Wknd);
    let res: u32 = args
        .get(2)
        .map(|s| s.parse().expect("bad resolution"))
        .unwrap_or(256);
    let out_dir = PathBuf::from(
        args.get(3)
            .cloned()
            .unwrap_or_else(|| "target/heatmaps".into()),
    );
    std::fs::create_dir_all(&out_dir)?;

    let scene = scene_id.build(42);
    let trace = TraceConfig {
        samples_per_pixel: 2,
        max_bounces: 4,
        seed: 7,
    };
    println!("Profiling {} at {res}x{res}...", scene.name());

    // Render + profile in one pass (step 1 of Fig. 3).
    let (image, costs) = render(&scene, res, res, &trace);
    image.save_ppm(out_dir.join("render.ppm"))?;
    let heatmap = Heatmap::from_costs(&costs);
    heatmap.to_image().save_ppm(out_dir.join("heatmap.ppm"))?;
    println!("mean temperature: {:.3}", heatmap.mean_temperature());

    // Step 2: colour quantization (Fig. 4).
    let quantized = QuantizedHeatmap::quantize(&heatmap, 8, 7);
    quantized
        .to_image()
        .save_ppm(out_dir.join("heatmap_quantized.ppm"))?;
    println!("quantized into {} colours", quantized.cluster_count());
    for id in 0..quantized.cluster_count() as u16 {
        println!(
            "  cluster {id}: colour {} coolness {:.2}",
            quantized.cluster_color(id),
            quantized.cluster_coolness(id)
        );
    }

    // Step 4: fine-grained division — visualize group 0's pixels (Fig. 7).
    let groups = divide(res, res, 4, DivisionMethod::default_fine());
    let mut group_view = Image::new(res, res);
    for p in &groups[0].pixels {
        let c = heatmap.color(p.x, p.y);
        group_view.set(p.x, p.y, c.hadamard(c));
    }
    group_view.save_ppm(out_dir.join("group0_fine.ppm"))?;

    // Step 5: representative pixels of group 0 (Fig. 8).
    let selection = select_pixels(&groups[0], &quantized, &SelectionOptions::default());
    let mut sel_view = Image::new(res, res);
    for (p, &m) in groups[0].pixels.iter().zip(&selection.mask) {
        let c = if m {
            heatmap.color(p.x, p.y)
        } else {
            Vec3::splat(0.06)
        };
        sel_view.set(p.x, p.y, c.hadamard(c));
    }
    sel_view.save_ppm(out_dir.join("group0_selected.ppm"))?;
    println!(
        "group 0: Eq.(1) target {:.0}%, selected {:.0}% of its pixels",
        100.0 * selection.target_percent,
        100.0 * selection.fraction
    );

    println!("\nwrote render.ppm, heatmap.ppm, heatmap_quantized.ppm, group0_fine.ppm, group0_selected.ppm");
    println!("to {}", out_dir.display());
    Ok(())
}
