//! Downscale & sampling trade-off explorer: sweeps the two Zatel levers —
//! the downscaling factor K and the traced-pixel percentage — and prints
//! the error/speedup frontier, including an ablation of the Eq. (1) clamp
//! bounds against fixed percentages.
//!
//! ```text
//! cargo run --release --example downscale_sweep [scene] [resolution]
//! ```

use std::env;

use zatel_suite::prelude::*;

fn main() -> Result<(), zatel::ZatelError> {
    let args: Vec<String> = env::args().collect();
    let scene_id = args
        .get(1)
        .map(|s| SceneId::from_name(s).expect("unknown scene name"))
        .unwrap_or(SceneId::Spnza);
    let res: u32 = args
        .get(2)
        .map(|s| s.parse().expect("bad resolution"))
        .unwrap_or(128);

    let scene = scene_id.build(42);
    let trace = TraceConfig {
        samples_per_pixel: 2,
        max_bounces: 4,
        seed: 7,
    };
    let config = GpuConfig::mobile_soc();
    println!(
        "Sweeping Zatel's levers on {} at {res}x{res} (Mobile SoC)\n",
        scene.name()
    );

    let base = Zatel::new(&scene, config.clone(), res, res, trace);
    let reference = base.run_reference();
    println!(
        "reference: {} cycles in {:.2}s\n",
        reference.stats.cycles,
        reference.wall.as_secs_f64()
    );

    println!(
        "{:<28} {:>4} {:>12} {:>9} {:>9}",
        "setting", "K", "cycles err", "MAE", "speedup"
    );
    let run = |label: &str, opts: ZatelOptions| -> Result<(), zatel::ZatelError> {
        let z = Zatel::new(&scene, config.clone(), res, res, trace).with_options(opts);
        let pred = z.run()?;
        let cyc_err =
            zatel::metrics::abs_error(pred.value(Metric::SimCycles), reference.stats.cycles as f64);
        println!(
            "{label:<28} {:>4} {:>11.1}% {:>8.1}% {:>8.1}x",
            pred.k,
            100.0 * cyc_err,
            100.0 * pred.mae_vs(&reference.stats),
            pred.speedup_concurrent(&reference)
        );
        Ok(())
    };

    // Lever 1: downscaling factor (groups trace everything).
    for k in [1u32, 2, 4] {
        let mut opts = ZatelOptions {
            downscale: if k == 1 {
                DownscaleMode::NoDownscale
            } else {
                DownscaleMode::Factor(k)
            },
            ..ZatelOptions::default()
        };
        opts.selection.percent_override = Some(1.0);
        run(&format!("downscale only, K={k}"), opts)?;
    }

    // Lever 2: traced percentage (no downscaling).
    for p in [0.1, 0.3, 0.6, 0.9] {
        let mut opts = ZatelOptions {
            downscale: DownscaleMode::NoDownscale,
            ..ZatelOptions::default()
        };
        opts.selection.percent_override = Some(p);
        run(&format!("sampling only, {:.0}%", p * 100.0), opts)?;
    }

    // Both levers with the Eq. (1) budget — the shipped default.
    run("full Zatel, Eq.(1) [0.3,0.6]", ZatelOptions::default())?;

    // Ablation: Eq. (1) clamp bounds.
    for clamp in [(0.1, 0.2), (0.3, 0.6), (0.6, 0.9)] {
        let mut opts = ZatelOptions::default();
        opts.selection.clamp = clamp;
        run(&format!("Eq.(1) clamp [{},{}]", clamp.0, clamp.1), opts)?;
    }

    println!("\nreading: K buys wall-clock via host parallelism at small accuracy cost;");
    println!("the traced percentage trades accuracy for speed smoothly; Eq.(1)'s [0.3,0.6]");
    println!("clamp sits on the knee of that curve, as the paper argues.");
    Ok(())
}
