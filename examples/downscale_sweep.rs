//! Downscale & sampling trade-off explorer: sweeps the two Zatel levers —
//! the downscaling factor K and the traced-pixel percentage — and prints
//! the error/speedup frontier, including an ablation of the Eq. (1) clamp
//! bounds against fixed percentages. All points run through one
//! [`zatel::SweepDriver`], so the scene is profiled and quantized exactly
//! once for the whole frontier.
//!
//! ```text
//! cargo run --release --example downscale_sweep [scene] [resolution]
//! ```

use std::env;

use zatel::sweep::factor_mode;
use zatel::{SweepDriver, SweepParallelism, SweepPointSpec, SweepSpec};
use zatel_suite::prelude::*;

fn main() -> Result<(), zatel::ZatelError> {
    let args: Vec<String> = env::args().collect();
    let scene_id = args
        .get(1)
        .map(|s| rtcore::scenes::by_name(s).expect("unknown scene name"))
        .unwrap_or(SceneId::Spnza);
    let res: u32 = args
        .get(2)
        .map(|s| s.parse().expect("bad resolution"))
        .unwrap_or(128);

    let scene = scene_id.build(42);
    let trace = TraceConfig {
        samples_per_pixel: 2,
        max_bounces: 4,
        seed: 7,
    };
    let config = GpuConfig::mobile_soc();
    println!(
        "Sweeping Zatel's levers on {} at {res}x{res} (Mobile SoC)\n",
        scene.name()
    );

    let base = Zatel::new(&scene, config.clone(), res, res, trace);
    let reference = base.run_reference();
    println!(
        "reference: {} cycles in {:.2}s\n",
        reference.stats.cycles,
        reference.wall.as_secs_f64()
    );

    // One spec covering both levers, the shipped default and the clamp
    // ablation; every point states only what it overrides on the base.
    let mut spec = SweepSpec::default();

    // Lever 1: downscaling factor (groups trace everything).
    for k in [1u32, 2, 4] {
        spec.points.push(SweepPointSpec {
            downscale: Some(factor_mode(k)),
            percent: Some(1.0),
            ..SweepPointSpec::named(format!("downscale only, K={k}"))
        });
    }

    // Lever 2: traced percentage (no downscaling).
    for p in [0.1, 0.3, 0.6, 0.9] {
        spec.points.push(SweepPointSpec {
            downscale: Some(DownscaleMode::NoDownscale),
            percent: Some(p),
            ..SweepPointSpec::named(format!("sampling only, {:.0}%", p * 100.0))
        });
    }

    // Both levers with the Eq. (1) budget — the shipped default.
    spec.points
        .push(SweepPointSpec::named("full Zatel, Eq.(1) [0.3,0.6]"));

    // Ablation: Eq. (1) clamp bounds.
    for clamp in [(0.1, 0.2), (0.3, 0.6), (0.6, 0.9)] {
        spec.points.push(SweepPointSpec {
            clamp: Some(clamp),
            ..SweepPointSpec::named(format!("Eq.(1) clamp [{},{}]", clamp.0, clamp.1))
        });
    }

    // Groups mode: points run serially with groups fanned out inside each
    // point, so `speedup_concurrent` reflects real wall-clock.
    let driver = SweepDriver::new(base).with_parallelism(SweepParallelism::Groups);
    let outcomes = driver.run(&spec)?;

    println!(
        "{:<28} {:>4} {:>12} {:>9} {:>9}",
        "setting", "K", "cycles err", "MAE", "speedup"
    );
    for outcome in &outcomes {
        let pred = &outcome.prediction;
        let cyc_err =
            zatel::metrics::abs_error(pred.value(Metric::SimCycles), reference.stats.cycles as f64);
        println!(
            "{:<28} {:>4} {:>11.1}% {:>8.1}% {:>8.1}x",
            outcome.point.label,
            pred.k,
            100.0 * cyc_err,
            100.0 * pred.mae_vs(&reference.stats),
            pred.speedup_concurrent(&reference)
        );
    }

    let stats = driver.cache().stats();
    println!(
        "\nartifact cache: {} misses, {} memory hits across {} points",
        stats.misses,
        stats.memory_hits,
        outcomes.len()
    );
    println!("\nreading: K buys wall-clock via host parallelism at small accuracy cost;");
    println!("the traced percentage trades accuracy for speed smoothly; Eq.(1)'s [0.3,0.6]");
    println!("clamp sits on the knee of that curve, as the paper argues.");
    Ok(())
}
