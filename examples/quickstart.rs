//! Quickstart: predict GPU performance on the PARK scene with Zatel and
//! compare against the full cycle-level simulation.
//!
//! ```text
//! cargo run --release --example quickstart [scene] [resolution]
//! ```

use std::env;

use zatel_suite::prelude::*;

fn main() -> Result<(), zatel::ZatelError> {
    let args: Vec<String> = env::args().collect();
    let scene_id = args
        .get(1)
        .map(|s| rtcore::scenes::by_name(s).expect("unknown scene name"))
        .unwrap_or(SceneId::Park);
    let res: u32 = args
        .get(2)
        .map(|s| s.parse().expect("resolution must be a number"))
        .unwrap_or(96);

    let scene = scene_id.build(42);
    let trace = TraceConfig {
        samples_per_pixel: 2,
        max_bounces: 4,
        seed: 7,
    };
    println!(
        "Scene {} at {res}x{res}, {} primitives, Mobile SoC target",
        scene.name(),
        scene.primitive_count()
    );

    let zatel = Zatel::new(&scene, GpuConfig::mobile_soc(), res, res, trace);

    println!(
        "\nRunning Zatel (K = {} groups, fine-grained 32x2 division)...",
        zatel.resolve_factor()?
    );
    let prediction = zatel.run()?;
    println!(
        "  preprocess {:.2}s, group sims {:.2}s",
        prediction.preprocess_wall.as_secs_f64(),
        prediction.sim_wall.as_secs_f64()
    );
    for g in &prediction.groups {
        println!(
            "  group {}: {} pixels, traced {:.0}% (target {:.0}%), {} cycles, {:.2}s",
            g.index,
            g.pixels,
            100.0 * g.traced_fraction,
            100.0 * g.target_percent,
            g.stats.cycles,
            g.wall.as_secs_f64()
        );
    }

    println!("\nRunning the full reference simulation (this is the slow part Zatel avoids)...");
    let reference = zatel.run_reference();
    println!("  reference took {:.2}s", reference.wall.as_secs_f64());

    println!(
        "\n{:<22} {:>14} {:>14} {:>8}",
        "Metric", "Zatel", "Reference", "Error"
    );
    for (metric, err) in prediction.errors_vs(&reference.stats) {
        println!(
            "{:<22} {:>14.4} {:>14.4} {:>7.1}%",
            metric.name(),
            prediction.value(metric),
            metric.value(&reference.stats),
            100.0 * err
        );
    }
    println!(
        "\nMAE = {:.1}%   measured speedup = {:.1}x   speedup with 1 core/group (paper setup) = {:.1}x",
        100.0 * prediction.mae_vs(&reference.stats),
        prediction.speedup_vs(&reference),
        prediction.speedup_concurrent(&reference)
    );
    Ok(())
}
