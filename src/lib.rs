//! # zatel-suite — facade over the Zatel reproduction workspace
//!
//! Re-exports the four crates of the suite so examples and integration
//! tests can reach everything through one dependency:
//!
//! * [`rtcore`] — ray-tracing substrate (math, BVH, scenes, path tracer);
//! * [`gpusim`] — cycle-level GPU timing simulator (Vulkan-Sim substitute);
//! * [`rtworkload`] — pixels-as-threads bridge between the two;
//! * [`zatel`] — the prediction methodology itself;
//! * [`obs`] — observability: Perfetto timelines, metrics, spans, reports.
//!
//! See the repository README for the architecture overview and
//! EXPERIMENTS.md for the paper-reproduction results.
//!
//! ```no_run
//! use zatel_suite::prelude::*;
//!
//! # fn main() -> Result<(), zatel::ZatelError> {
//! let scene = SceneId::Park.build(42);
//! let trace = TraceConfig { samples_per_pixel: 2, max_bounces: 4, seed: 7 };
//! let z = Zatel::new(&scene, GpuConfig::mobile_soc(), 128, 128, trace);
//! let prediction = z.run()?;
//! println!("{:.0} predicted cycles", prediction.value(Metric::SimCycles));
//! # Ok(())
//! # }
//! ```

pub use gpusim;
pub use obs;
pub use rtcore;
pub use rtworkload;
pub use zatel;

/// The most commonly used items, importable in one line.
pub mod prelude {
    pub use gpusim::{GpuConfig, Metric, NullHooks, SimHooks, SimStats, Simulator, TraceHooks};
    pub use obs::{MetricsRegistry, ObsHooks, ObserveOptions, SpanSheet};
    pub use rtcore::scenes::SceneId;
    pub use rtcore::tracer::TraceConfig;
    pub use rtworkload::RtWorkload;
    pub use zatel::{
        Distribution, DivisionMethod, DownscaleMode, Prediction, SimExecutor, Zatel, ZatelOptions,
    };
}
