//! # proptest (offline shim)
//!
//! A small, dependency-free property-testing harness exposing the subset
//! of the real `proptest` crate's API that the Zatel suite uses. The build
//! environment has no reachable crate registry, so the real crate cannot
//! be downloaded; this shim keeps the test sources unchanged.
//!
//! Differences from upstream proptest, by design:
//!
//! - **No shrinking.** A failing case reports the generated inputs via the
//!   assertion message only.
//! - **Deterministic.** Case generation is seeded from the test's module
//!   path and name, so every run explores the same inputs.
//! - **Rejection handling.** `prop_assume!` skips the case and draws a new
//!   one; a test aborts if rejections exceed 64× the requested cases.
//!
//! Supported surface: `Strategy` (with `prop_map`/`boxed`), numeric range
//! strategies, tuple strategies up to arity 6, `collection::vec`,
//! `any::<T>()`, `prop_oneof!`, `proptest!` (with `#![proptest_config]`),
//! `prop_assert!`, `prop_assert_eq!`, `prop_assume!`, and
//! `ProptestConfig::with_cases`.

#![warn(missing_docs)]

/// Test-runner plumbing: configuration, RNG, and case errors.
pub mod test_runner {
    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required for the test to pass.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case was rejected by `prop_assume!`; draw another input.
        Reject(String),
        /// An assertion failed; the whole test fails.
        Fail(String),
    }

    /// Deterministic splitmix64 generator driving all strategies.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates a generator from a seed.
        pub fn new(seed: u64) -> Self {
            TestRng {
                state: seed ^ 0x1234_5678_9ABC_DEF0,
            }
        }

        /// Next 64 uniformly random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
        }

        /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// FNV-1a hash used to derive a per-test seed from its name.
    pub fn fnv1a(s: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in s.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(move |rng| self.generate(rng)))
        }
    }

    /// Result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Fn(&mut TestRng) -> T>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    /// Uniform choice between alternative strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over `options`; must be non-empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let idx = rng.below(self.options.len() as u64) as usize;
            self.options[idx].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let width = self.end.wrapping_sub(self.start) as u64;
                    assert!(width > 0, "empty integer range strategy");
                    self.start.wrapping_add(rng.below(width) as $t)
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let r = rng.next_f64() as $t;
                    let v = self.start + r * (self.end - self.start);
                    if v >= self.end { self.start } else { v }
                }
            }
        )*};
    }
    float_range_strategy!(f32, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }

    /// Generates a constant value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// Generates vectors of values from `element` with lengths in `size`.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `Arbitrary` trait and the `any` entry point.
pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
            }
        )*};
    }
    arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The full-domain strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }
}

/// Everything a property test needs: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Declares property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of test functions whose
/// arguments are `pattern in strategy` pairs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!(($config) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($config:expr)) => {};
    (($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let seed = $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
            let mut passed: u32 = 0;
            let mut attempt: u64 = 0;
            while passed < config.cases {
                attempt += 1;
                assert!(
                    attempt <= config.cases as u64 * 64,
                    "proptest shim: too many rejected cases in {}",
                    stringify!($name),
                );
                let mut rng = $crate::test_runner::TestRng::new(
                    seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case failed: {}\n(test {}, case {}, attempt {})",
                            msg,
                            stringify!($name),
                            passed,
                            attempt,
                        );
                    }
                }
            }
        }
        $crate::__proptest_tests!(($config) $($rest)*);
    };
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                ::std::string::String::from(stringify!($cond)),
            ));
        }
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: `{:?}` != `{:?}`", left, right),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let left = &$left;
        let right = &$right;
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    left,
                    right,
                    format!($($fmt)+),
                ),
            ));
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(
            x in 3u32..17,
            y in -2.5f64..4.0,
            n in 1usize..5,
            b in any::<bool>(),
        ) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-2.5..4.0).contains(&y));
            prop_assert!((1..5).contains(&n));
            let _ = b;
        }

        #[test]
        fn vec_lengths_respect_range(v in prop::collection::vec(0u64..10, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            for item in &v {
                prop_assert!(*item < 10);
            }
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop_oneof![
                (0u32..5).prop_map(|x| x as u64),
                (10u32..15).prop_map(|x| x as u64),
            ],
        ) {
            prop_assert!(v < 5 || (10..15).contains(&v), "v={v}");
        }

        #[test]
        fn assume_rejects_and_redraws(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::Strategy;
        use crate::test_runner::TestRng;
        let strat = (0u64..1000, -1.0f32..1.0);
        let a: Vec<_> = (0..20)
            .map(|i| strat.generate(&mut TestRng::new(i)))
            .collect();
        let b: Vec<_> = (0..20)
            .map(|i| strat.generate(&mut TestRng::new(i)))
            .collect();
        assert_eq!(a, b);
    }
}
