//! # criterion (offline shim)
//!
//! A minimal, dependency-free benchmark harness exposing the subset of the
//! real `criterion` crate's API that the Zatel suite's `harness = false`
//! benches use. The build environment has no reachable crate registry, so
//! the real crate cannot be downloaded; this shim keeps the bench sources
//! unchanged and still produces useful wall-clock numbers.
//!
//! Differences from upstream criterion, by design: no statistical
//! analysis, plotting, or baseline storage. Each benchmark is calibrated
//! to a per-sample iteration count, timed over `sample_size` samples, and
//! the min / median / max time per iteration is printed.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Target accumulated measurement time per sample during calibration.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(25);

/// Re-export for bench code that uses `criterion::black_box`.
pub use std::hint::black_box;

/// The benchmark manager; handed to every registered bench function.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 20 }
    }
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }

    /// Runs a single standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(name, self.sample_size, &mut f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and sample size.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.id);
        run_benchmark(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Ends the group (upstream finalizes reports here; a no-op for the shim).
    pub fn finish(self) {}
}

/// Identifies one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id rendered from the benchmark's parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// An id with an explicit function name and parameter.
    pub fn new<P: Display>(function_name: impl Into<String>, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Timer handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Measured time per iteration for each sample.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times `f`, calibrating an iteration count so each sample runs for
    /// roughly `TARGET_SAMPLE_TIME`.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Calibrate: double the batch size until a batch is long enough to
        // time reliably.
        let mut iters: u64 = 1;
        let mut calibrated;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            calibrated = start.elapsed();
            if calibrated >= TARGET_SAMPLE_TIME || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }
        self.samples.clear();
        self.samples.push(calibrated / iters as u32);
        for _ in 1..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(f());
            }
            self.samples.push(start.elapsed() / iters as u32);
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(label: &str, sample_size: usize, f: &mut F) {
    let mut bencher = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{label:<48} (no measurement)");
        return;
    }
    bencher.samples.sort_unstable();
    let min = bencher.samples[0];
    let max = *bencher.samples.last().unwrap();
    let median = bencher.samples[bencher.samples.len() / 2];
    println!(
        "{label:<48} time: [{} {} {}]",
        format_duration(min),
        format_duration(median),
        format_duration(max),
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else if nanos < 1_000_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else {
        format!("{:.3} s", nanos as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a single runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Criterion bench group entry point (generated).
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` for a `harness = false` bench target.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_function_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_smoke");
        group.sample_size(3);
        let mut ran = 0u32;
        group.bench_with_input(BenchmarkId::from_parameter(7u32), &7u32, |b, &x| {
            b.iter(|| {
                ran += 1;
                x * 2
            })
        });
        group.finish();
        assert!(ran > 0);
        c.bench_function("shim_fn", |b| b.iter(|| black_box(1 + 1)));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(12)), "12 ns");
        assert!(format_duration(Duration::from_micros(12)).ends_with("µs"));
        assert!(format_duration(Duration::from_millis(12)).ends_with("ms"));
        assert!(format_duration(Duration::from_secs(2)).ends_with(" s"));
    }
}
